#!/usr/bin/env python3
"""Fleet tracking: moving objects and dispatch queries through one buffer.

The paper's future work item #3 asks about "the management of moving
spatial objects in spatiotemporal database systems".  This example builds
that scenario: a fleet of vehicles moves across the map (each movement is
a delete/insert pair maintaining the R*-tree), while a dispatcher keeps
asking "which vehicles are near this incident?".  Index maintenance and
queries run through the same buffer, so dirty-page write-backs are part of
the bill.

Run:  python examples/fleet_tracking.py
"""

import random

from repro import ASB, LRU, LRUK, BufferManager, Point, Rect, RStarTree, SpatialPolicy
from repro.workloads.queries import WindowQuery
from repro.workloads.updates import Move

N_VEHICLES = 4_000
N_TICKS = 120
MOVES_PER_TICK = 25
QUERIES_PER_TICK = 3
BUFFER_PAGES = 48
SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def build_fleet(rng):
    """Vehicles start clustered around a few depots."""
    depots = [Point(rng.random(), rng.random()) for _ in range(6)]
    fleet = {}
    for vehicle in range(N_VEHICLES):
        depot = depots[vehicle % len(depots)]
        x = min(max(depot.x + rng.gauss(0, 0.05), 0.0), 1.0)
        y = min(max(depot.y + rng.gauss(0, 0.05), 0.0), 1.0)
        fleet[vehicle] = Point(x, y).as_rect()
    return fleet, depots


def simulation_stream(rng, fleet, depots):
    """Interleaved movement bursts and dispatch queries, tick by tick."""
    stream = []
    for _ in range(N_TICKS):
        for _ in range(MOVES_PER_TICK):
            vehicle = rng.randrange(N_VEHICLES)
            old = fleet[vehicle]
            center = old.center
            moved = Point(
                min(max(center.x + rng.gauss(0, 0.01), 0.0), 1.0),
                min(max(center.y + rng.gauss(0, 0.01), 0.0), 1.0),
            ).as_rect()
            stream.append(Move(old_mbr=old, new_mbr=moved, payload=vehicle))
            fleet[vehicle] = moved
        for _ in range(QUERIES_PER_TICK):
            incident = depots[rng.randrange(len(depots))]
            window = Rect.from_center(incident, 0.08, 0.08).clipped(SPACE)
            stream.append(WindowQuery(window))
    return stream


def run(stream, policy):
    """Replay the identical simulation against one policy."""
    rng = random.Random(99)
    fleet, _ = build_fleet(rng)
    tree = RStarTree(max_dir_entries=16, max_data_entries=16)
    tree.bulk_load([(rect, vid) for vid, rect in fleet.items()])
    buffer = BufferManager(tree.pagefile.disk, BUFFER_PAGES, policy)
    with tree.via(buffer):
        for item in stream:
            with buffer.query_scope():
                if isinstance(item, Move):
                    item.apply(tree)
                else:
                    item.run(tree)
    buffer.flush()
    return buffer, tree


def main() -> None:
    rng = random.Random(99)
    fleet, depots = build_fleet(rng)
    stream = simulation_stream(rng, dict(fleet), depots)
    moves = sum(1 for item in stream if isinstance(item, Move))
    print(
        f"fleet of {N_VEHICLES} vehicles; {moves} movements and "
        f"{len(stream) - moves} dispatch queries over {N_TICKS} ticks\n"
    )
    print(f"{'policy':<12} {'reads':>7} {'writebacks':>11} {'total I/O':>10}")
    for name, factory in {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A (spatial)": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }.items():
        buffer, tree = run(stream, factory())
        total = buffer.stats.misses + buffer.stats.writebacks
        print(
            f"{name:<12} {buffer.stats.misses:>7} "
            f"{buffer.stats.writebacks:>11} {total:>10}"
        )
    tree.validate()
    print("\nindex verified consistent after the full simulation")


if __name__ == "__main__":
    main()
