#!/usr/bin/env python3
"""A persistent spatial database: build once, save, reopen, query.

Demonstrates the storage side of the library beyond simulation:

1. build an R*-tree over a synthetic map in memory,
2. save it with the binary page format (fixed-size slots + JSON sidecar),
3. reopen the file as a read-only database,
4. serve buffered queries from the file-backed pages — every miss is now a
   real ``seek`` + ``read`` on the file,
5. reopen mutably (pages materialised) and apply updates.

Run:  python examples/persistent_database.py
"""

import os
import tempfile

from repro import ASB, BufferManager, Rect, RStarTree
from repro.datasets.synthetic import us_mainland_like
from repro.storage.serialization import load_tree, save_tree
from repro.workloads.distributions import uniform_queries

N_OBJECTS = 15_000
BUFFER_PAGES = 48


def main() -> None:
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=41)
    tree = RStarTree()
    tree.bulk_load(dataset.items())
    stats = tree.stats()
    print(
        f"built: {stats.page_count} pages, height {stats.height}, "
        f"{stats.entry_count} objects"
    )

    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "map.db")

        # 2. Save: binary pages + metadata sidecar.
        save_tree(tree, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"saved to {path}: {size_kb:.0f} KiB "
              f"(+ {os.path.getsize(path + '.json')} B sidecar)")

        # 3./4. Reopen read-only and serve buffered queries from the file.
        database = load_tree(path)
        try:
            buffer = BufferManager(database.pagefile.disk, BUFFER_PAGES, ASB())
            queries = uniform_queries(dataset.space, 120, ex=100, seed=42)
            results = 0
            for query in queries:
                with buffer.query_scope():
                    results += len(query.run(database, buffer))
            disk = database.pagefile.disk
            print(
                f"served {len(queries)} queries from the file: "
                f"{results} objects, {buffer.stats.misses} page reads "
                f"({disk.stats.sequential_reads} sequential), "
                f"hit ratio {buffer.stats.hit_ratio:.1%}"
            )

            # Cross-check against the in-memory original.
            sample = Rect(0.45, 0.45, 0.55, 0.55)
            assert sorted(database.window_query(sample)) == sorted(
                tree.window_query(sample)
            )
            print("file-backed results match the in-memory tree")
        finally:
            database.pagefile.disk.close()

        # 5. Mutable reopen: materialise and update.
        mutable = load_tree(path, mutable=True)
        mutable.insert(Rect(0.001, 0.001, 0.002, 0.002), 999_999)
        mutable.validate()
        print(
            f"mutable reopen: inserted one object, now "
            f"{mutable.entry_count} objects, structure verified"
        )


if __name__ == "__main__":
    main()
