#!/usr/bin/env python3
"""One buffer policy, five spatial access methods.

Section 2.3 of the paper defines the spatial replacement criteria for
generic page entries — R-tree rectangles, quadtree cells, or z-values in a
B-tree.  This example runs the same window-query workload over all five
index structures the library ships (R*-tree, Guttman R-tree, bucket
quadtree, z-order B+-tree, grid file), each behind an ASB buffer, and compares
structure sizes and I/O behaviour.

Run:  python examples/sam_comparison.py
"""

from repro import ASB, BufferManager, GridFile, Quadtree, RStarTree, RTree, ZBTree
from repro.datasets.synthetic import us_mainland_like
from repro.workloads.distributions import uniform_queries

N_OBJECTS = 15_000
N_QUERIES = 120
BUFFER_PAGES = 48


def main() -> None:
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=31)
    items = dataset.items()
    queries = uniform_queries(dataset.space, N_QUERIES, ex=100, seed=32)

    print(f"building four indexes over {len(dataset)} objects ...")
    rstar = RStarTree(max_dir_entries=24, max_data_entries=24)
    rstar.bulk_load(items)
    guttman = RTree(max_dir_entries=24, max_data_entries=24, split="quadratic")
    guttman.bulk_load(items)
    quadtree = Quadtree(dataset.space, capacity=24)
    for rect, payload in items:
        quadtree.insert(rect, payload)
    zbtree = ZBTree(dataset.space, max_entries=24)
    zbtree.bulk_load(items)
    gridfile = GridFile(dataset.space, bucket_capacity=24, max_splits=30)
    for rect, payload in items:
        gridfile.insert(rect, payload)

    indexes = {
        "R*-tree": rstar,
        "R-tree": guttman,
        "Quadtree": quadtree,
        "z-B+-tree": zbtree,
        "Grid file": gridfile,
    }

    print(
        f"\n{'index':<10} {'pages':>7} {'dir%':>6} {'height':>7} "
        f"{'page reads':>11} {'hit ratio':>10} {'results':>8}"
    )
    for name, index in indexes.items():
        stats = index.stats()
        buffer = BufferManager(index.pagefile.disk, BUFFER_PAGES, ASB())
        results = 0
        for query in queries:
            with buffer.query_scope():
                # De-duplicate: the quadtree may report an object per
                # quadrant; set() makes counts comparable.
                results += len(set(query.run(index, buffer)))
        print(
            f"{name:<10} {stats.page_count:>7} "
            f"{stats.directory_fraction:>6.1%} {stats.height:>7} "
            f"{buffer.stats.misses:>11} {buffer.stats.hit_ratio:>10.1%} "
            f"{results:>8}"
        )

    print(
        "\nAll five indexes answer the same queries; the z-B+-tree may miss "
        "extended objects\nwhose centre cell lies outside the query window "
        "(single-z-value indexing),\nwhich is the classic precision trade-off "
        "of curve-based spatial indexing."
    )


if __name__ == "__main__":
    main()
