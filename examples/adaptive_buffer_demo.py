#!/usr/bin/env python3
"""Watch ASB's self-tuning knob react to a changing query profile.

Reproduces the experiment behind Figure 14 of the paper and renders the
candidate-set size as an ASCII chart: the query stream switches from an
intensified distribution (hot-spot queries — LRU should dominate, small
candidate set) to a uniform distribution (spatial criterion should
dominate, large candidate set) to a similar distribution (somewhere in
between), with no human intervention in between.

Run:  python examples/adaptive_buffer_demo.py
"""

from repro import ASB, BufferManager, RStarTree
from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import us_mainland_like
from repro.experiments.plots import line_chart
from repro.workloads.sets import QuerySet, make_query_set

N_OBJECTS = 40_000
QUERIES_PER_PHASE = 400
BUFFER_FRACTION = 0.047
CHART_WIDTH = 72
CHART_HEIGHT = 12


def main() -> None:
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=7)
    places = synthetic_places(dataset, count=1_200, seed=42)
    tree = RStarTree()
    tree.bulk_load(dataset.items())
    pages = tree.stats().page_count
    capacity = max(8, round(BUFFER_FRACTION * pages))

    phases = ("INT-W-33", "U-W-33", "S-W-33")
    parts = [
        make_query_set(name, dataset, places, QUERIES_PER_PHASE, seed=7)
        for name in phases
    ]
    mixed = QuerySet.concat(" + ".join(phases), parts)

    policy = ASB(record_trace=True)
    buffer = BufferManager(tree.pagefile.disk, capacity, policy)
    print(
        f"buffer: {capacity} pages "
        f"(main {policy.main_capacity}, overflow {policy.overflow_capacity}); "
        f"initial candidate set: {policy.candidate_size}"
    )

    sizes = []
    for query in mixed:
        with buffer.query_scope():
            query.run(tree, buffer)
        sizes.append(policy.candidate_size)

    print(f"\ncandidate-set size over {len(mixed)} queries "
          f"({' -> '.join(phases)}):\n")
    print(
        line_chart(
            [float(s) for s in sizes],
            width=CHART_WIDTH,
            height=CHART_HEIGHT,
            label="phases switch at 1/3 and 2/3 of the x-axis",
        )
    )

    for index, phase in enumerate(phases):
        segment = sizes[index * QUERIES_PER_PHASE : (index + 1) * QUERIES_PER_PHASE]
        tail = segment[len(segment) // 2 :]
        print(
            f"{phase:>9}: settles at {sum(tail) / len(tail):5.1f} "
            f"of {policy.main_capacity} (min {min(segment)}, max {max(segment)})"
        )
    print(
        "\nLow = the buffer behaves like LRU; high = the spatial criterion "
        "dominates.\nNo parameter was touched between the phases — that is "
        "the paper's self-tuning claim."
    )


if __name__ == "__main__":
    main()
