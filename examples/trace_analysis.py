#!/usr/bin/env python3
"""Trace-driven analysis: miss-ratio curves, OPT, and access profiles.

Records the page-reference trace of one workload, then analyses it with
the classic buffer-study toolkit:

1. a **trace profile** — per page-type/level reference intensity, the
   quantitative basis of type-based replacement (paper Section 2.1);
2. the exact **LRU miss-ratio curve** for every buffer size at once
   (Mattson stack-distance analysis) rendered as an ASCII chart;
3. **Belady's OPT** at selected sizes, showing how much headroom the
   online policies leave on this workload.

Run:  python examples/trace_analysis.py
"""

from repro import ASB, LRU, LRUK, RStarTree, SpatialPolicy
from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import us_mainland_like
from repro.experiments.analysis import (
    lru_miss_curve,
    opt_misses,
    profile_trace,
)
from repro.experiments.plots import line_chart
from repro.experiments.trace import record_trace, replay_trace
from repro.workloads.sets import make_query_set

N_OBJECTS = 25_000
N_QUERIES = 250
SET_NAME = "S-W-100"


def main() -> None:
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=17)
    places = synthetic_places(dataset, count=1_000, seed=18)
    tree = RStarTree()
    tree.bulk_load(dataset.items())
    queries = make_query_set(SET_NAME, dataset, places, N_QUERIES, seed=19)

    print(f"recording the trace of {N_QUERIES} {SET_NAME} queries ...")
    trace = record_trace(tree, queries)
    print(f"{len(trace)} references, {trace.distinct_pages} distinct pages\n")

    # 1. Who gets referenced how often?
    print(profile_trace(trace).to_text())

    # 2. The full LRU miss-ratio curve from one stack simulation.
    max_capacity = min(trace.distinct_pages, 300)
    curve = lru_miss_curve(trace, max_capacity)
    ratios = [misses / len(trace) for misses in curve]
    print(f"\nLRU miss ratio vs buffer size (1..{max_capacity} pages):\n")
    print(line_chart(ratios, width=64, height=10, label="buffer size ->"))

    # 3. The OPT gap at a paper-style buffer size.
    capacity = max(8, round(0.047 * len(tree.all_page_ids())))
    optimum = opt_misses(trace, capacity)
    print(f"\nat {capacity} pages (4.7% of the tree):")
    print(f"{'policy':<8} {'misses':>7} {'above OPT':>10}")
    print(f"{'OPT':<8} {optimum:>7} {'--':>10}")
    for name, factory in {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }.items():
        misses = replay_trace(trace, factory(), capacity).misses
        print(f"{name:<8} {misses:>7} {misses / optimum - 1:>+9.1%}")

    print(
        "\nThe curve's knee shows where extra buffer stops paying; the OPT "
        "column shows how\nmuch of the remaining gap any replacement policy "
        "could still close."
    )


if __name__ == "__main__":
    main()
