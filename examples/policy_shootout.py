#!/usr/bin/env python3
"""The full policy zoo, head to head, across all five query distributions.

Runs every replacement policy the library ships — classic baselines,
structural LRU variants, LRU-K, the five spatial criteria, SLRU and ASB —
over one query set per distribution family, and prints a leaderboard of
disk reads plus each policy's worst-case behaviour relative to LRU (the
paper's robustness lens: a policy that sometimes loses to LRU is not
deployable, however well it does elsewhere).

Run:  python examples/policy_shootout.py
"""

from repro import (
    ARC,
    ASB,
    FIFO,
    LFU,
    LRU,
    LRUK,
    LRUP,
    LRUT,
    MRU,
    SLRU,
    BufferManager,
    Clock,
    DomainSeparation,
    GClock,
    RandomPolicy,
    RStarTree,
    SpatialPolicy,
    TwoQ,
)
from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import us_mainland_like
from repro.workloads.sets import make_query_set

N_OBJECTS = 30_000
N_QUERIES = 250
BUFFER_FRACTION = 0.047

POLICIES = {
    "LRU": LRU,
    "FIFO": FIFO,
    "CLOCK": Clock,
    "LFU": LFU,
    "MRU": MRU,
    "RANDOM": lambda: RandomPolicy(seed=1),
    "LRU-T": LRUT,
    "LRU-P": LRUP,
    "LRU-2": lambda: LRUK(k=2),
    "LRU-3": lambda: LRUK(k=3),
    "A": lambda: SpatialPolicy("A"),
    "EA": lambda: SpatialPolicy("EA"),
    "M": lambda: SpatialPolicy("M"),
    "EM": lambda: SpatialPolicy("EM"),
    "EO": lambda: SpatialPolicy("EO"),
    "SLRU 25%": lambda: SLRU(fraction=0.25),
    "ASB": ASB,
    "2Q": TwoQ,
    "ARC": ARC,
    "GCLOCK": GClock,
    "DOMAIN": DomainSeparation,
}

QUERY_SETS = ("U-W-100", "ID-W", "S-W-100", "INT-W-100", "IND-W-100")


def main() -> None:
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=3)
    places = synthetic_places(dataset, count=1_000, seed=4)
    tree = RStarTree()
    tree.bulk_load(dataset.items())
    capacity = max(8, round(BUFFER_FRACTION * tree.stats().page_count))
    print(
        f"database: {len(dataset)} objects, {tree.stats().page_count} pages; "
        f"buffer {capacity} pages; {N_QUERIES} queries per set\n"
    )

    sets = {
        name: make_query_set(name, dataset, places, N_QUERIES, seed=5)
        for name in QUERY_SETS
    }

    reads: dict[str, dict[str, int]] = {}
    for policy_name, factory in POLICIES.items():
        reads[policy_name] = {}
        for set_name, query_set in sets.items():
            buffer = BufferManager(tree.pagefile.disk, capacity, factory())
            for query in query_set:
                with buffer.query_scope():
                    query.run(tree, buffer)
            reads[policy_name][set_name] = buffer.stats.misses

    header = f"{'policy':<10}" + "".join(f"{name:>12}" for name in QUERY_SETS)
    print(header + f"{'worst vs LRU':>14}")
    print("-" * len(header) + "-" * 14)
    lru_row = reads["LRU"]

    def worst_gain(row):
        return min(lru_row[s] / row[s] - 1.0 for s in QUERY_SETS)

    ranked = sorted(
        reads.items(), key=lambda item: sum(item[1].values())
    )
    for policy_name, row in ranked:
        cells = "".join(f"{row[name]:>12}" for name in QUERY_SETS)
        print(f"{policy_name:<10}{cells}{worst_gain(row):>+13.1%}")

    robust = [
        name for name, row in reads.items() if worst_gain(row) >= -0.02
    ]
    print(
        "\npolicies within 2% of LRU in their worst case "
        f"(robust): {', '.join(sorted(robust))}"
    )
    print(
        "note how the pure spatial criteria win several columns but lose "
        "the intensified one,\nwhile ASB stays near the front everywhere — "
        "the paper's core claim."
    )


if __name__ == "__main__":
    main()
