#!/usr/bin/env python3
"""A GIS map-server session: panning and zooming over an indexed map.

The paper's motivation is interactive spatial applications whose query
streams shift over time.  This example simulates a map-viewer backend:

* a user session starts with a city search (point query),
* then pans across the map (overlapping window queries),
* then zooms in and out (windows of changing size),
* different users focus on different regions.

The buffer manager sits between the R*-tree and the simulated disk; the
example reports how many physical page reads each replacement policy needs
to serve the identical session stream.

Run:  python examples/gis_map_server.py
"""

import random

from repro import ASB, LRU, LRUK, BufferManager, Point, Rect, RStarTree, SpatialPolicy
from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import us_mainland_like
from repro.workloads.queries import PointQuery, WindowQuery

N_OBJECTS = 25_000
N_SESSIONS = 12
BUFFER_PAGES = 64


def user_session(rng, places, space):
    """One user's queries: search, pan, zoom (a correlated burst)."""
    queries = []
    # Weighted city pick: users look at big cities more often.
    place = rng.choices(places, weights=[p.population for p in places], k=1)[0]
    center = place.location
    queries.append(PointQuery(center))
    # Pan: a row of overlapping viewports drifting from the city.
    viewport = 0.04
    x, y = center.x, center.y
    for _ in range(rng.randint(3, 8)):
        x += rng.uniform(-viewport / 2, viewport / 2)
        y += rng.uniform(-viewport / 2, viewport / 2)
        window = Rect.from_center(Point(x, y), viewport, viewport)
        clipped = window.clipped(space)
        if clipped is not None:
            queries.append(WindowQuery(clipped))
    # Zoom out, then back in.
    for factor in (2.0, 4.0, 1.0):
        window = Rect.from_center(center, viewport * factor, viewport * factor)
        clipped = window.clipped(space)
        if clipped is not None:
            queries.append(WindowQuery(clipped))
    return queries


def main() -> None:
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=21)
    places = synthetic_places(dataset, count=400, seed=22)
    tree = RStarTree()
    tree.bulk_load(dataset.items())
    print(
        f"map database: {len(dataset)} features, "
        f"{tree.stats().page_count} pages, height {tree.stats().height}"
    )

    rng = random.Random(23)
    sessions = [user_session(rng, places, dataset.space) for _ in range(N_SESSIONS)]
    total_queries = sum(len(s) for s in sessions)
    print(f"replaying {N_SESSIONS} user sessions ({total_queries} queries)\n")

    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A (spatial)": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    print(f"{'policy':<12} {'page reads':>10} {'hit ratio':>10}")
    for name, factory in policies.items():
        buffer = BufferManager(tree.pagefile.disk, BUFFER_PAGES, factory())
        for session in sessions:
            for query in session:
                # Each query is one correlated access burst.
                with buffer.query_scope():
                    query.run(tree, buffer)
        print(
            f"{name:<12} {buffer.stats.misses:>10} "
            f"{buffer.stats.hit_ratio:>10.1%}"
        )

    # Show the result of the last session's first query in detail.
    first = sessions[-1][0]
    buffer = BufferManager(tree.pagefile.disk, BUFFER_PAGES, ASB())
    with buffer.query_scope():
        found = first.run(tree, buffer)
    print(
        f"\nsample query at {first.region.center.as_rect().as_tuple()[:2]}: "
        f"{len(found)} features, {buffer.stats.misses} page reads cold"
    )


if __name__ == "__main__":
    main()
