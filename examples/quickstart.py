#!/usr/bin/env python3
"""Quickstart: index spatial data, query it through a buffer, compare policies.

This is the five-minute tour of the library:

1. generate a synthetic spatial dataset (a stand-in for the paper's US
   mainland database),
2. index it with an R*-tree,
3. run window queries through buffer managers with different replacement
   policies,
4. print the disk accesses each policy needed — the paper's metric.

Run:  python examples/quickstart.py
"""

from repro import ASB, LRU, LRUK, BufferManager, Rect, RStarTree, SpatialPolicy
from repro.datasets.synthetic import us_mainland_like
from repro.workloads.distributions import uniform_queries

N_OBJECTS = 20_000
N_QUERIES = 150
BUFFER_PAGES = 48


def main() -> None:
    # 1. A deterministic synthetic dataset: clustered points and small
    #    rectangles on a continent-shaped region.
    dataset = us_mainland_like(n_objects=N_OBJECTS, seed=7)
    print(f"dataset: {len(dataset)} objects in {dataset.space.as_tuple()}")

    # 2. Index with an R*-tree (the paper's page capacities: 51/42).
    tree = RStarTree()
    tree.bulk_load(dataset.items())
    stats = tree.stats()
    print(
        f"R*-tree: {stats.page_count} pages "
        f"({stats.directory_pages} directory = {stats.directory_fraction:.1%}), "
        f"height {stats.height}"
    )

    # 3. The same query sequence, replayed against one buffer per policy.
    queries = uniform_queries(dataset.space, N_QUERIES, ex=100, seed=11)
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A (spatial)": lambda: SpatialPolicy("A"),
        "ASB (paper)": ASB,
    }

    print(f"\nreplaying {N_QUERIES} window queries, buffer = {BUFFER_PAGES} pages")
    print(f"{'policy':<12} {'disk reads':>10} {'hit ratio':>10} {'gain vs LRU':>12}")
    lru_misses = None
    for name, factory in policies.items():
        buffer = BufferManager(tree.pagefile.disk, BUFFER_PAGES, factory())
        for query in queries:
            with buffer.query_scope():
                query.run(tree, buffer)
        misses = buffer.stats.misses
        if lru_misses is None:
            lru_misses = misses
        gain = lru_misses / misses - 1.0
        print(
            f"{name:<12} {misses:>10} {buffer.stats.hit_ratio:>10.1%} "
            f"{gain:>+11.1%}"
        )

    # 4. One query in detail.
    window = Rect(0.45, 0.45, 0.55, 0.55)
    buffer = BufferManager(tree.pagefile.disk, BUFFER_PAGES, ASB())
    with buffer.query_scope():
        results = tree.window_query(window, accessor=buffer)
    print(
        f"\nwindow {window.as_tuple()}: {len(results)} objects, "
        f"{buffer.stats.misses} page reads"
    )


if __name__ == "__main__":
    main()
