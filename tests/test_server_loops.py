"""Tests for the opt-in uvloop event-loop selection (``--uvloop``).

uvloop is deliberately NOT a dependency of this repo; the tests cover
both worlds — when it is absent (the supported baseline) the ``auto``
and ``on`` modes must degrade exactly as documented, and when it is
present the policy installation must be undone afterwards so the rest
of the suite runs on the stock loop.
"""

from __future__ import annotations

import asyncio
import importlib.util

import pytest

from repro.server.loops import UVLOOP_MODES, UvloopUnavailable, install_uvloop

HAVE_UVLOOP = importlib.util.find_spec("uvloop") is not None


@pytest.fixture(autouse=True)
def _restore_loop_policy():
    """Never leak an installed uvloop policy into other tests."""
    try:
        yield
    finally:
        asyncio.set_event_loop_policy(None)


class TestInstallUvloop:
    def test_off_is_default_and_touches_nothing(self):
        before = asyncio.get_event_loop_policy()
        assert install_uvloop("off") is False
        assert asyncio.get_event_loop_policy() is before

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown uvloop mode"):
            install_uvloop("fast")

    def test_modes_tuple_is_the_cli_contract(self):
        assert UVLOOP_MODES == ("auto", "on", "off")

    @pytest.mark.skipif(HAVE_UVLOOP, reason="uvloop installed")
    def test_auto_without_uvloop_falls_back_silently(self):
        before = asyncio.get_event_loop_policy()
        assert install_uvloop("auto") is False
        assert asyncio.get_event_loop_policy() is before

    @pytest.mark.skipif(HAVE_UVLOOP, reason="uvloop installed")
    def test_on_without_uvloop_raises(self):
        with pytest.raises(UvloopUnavailable, match="--uvloop auto"):
            install_uvloop("on")

    @pytest.mark.skipif(not HAVE_UVLOOP, reason="uvloop missing")
    def test_on_with_uvloop_installs_the_policy(self):
        assert install_uvloop("on") is True
        policy = asyncio.get_event_loop_policy()
        assert type(policy).__module__.startswith("uvloop")


class TestServeWiring:
    def test_serve_parser_accepts_uvloop_choices(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(["serve", "--uvloop", "auto"])
        assert args.uvloop == "auto"
        args = parser.parse_args(["serve"])
        assert args.uvloop == "off"

    def test_serve_parser_rejects_unknown_loop(self, capsys):
        from repro.cli import _build_parser

        parser = _build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--uvloop", "libuv"])
        assert "--uvloop" in capsys.readouterr().err
