"""Tests for the grid file."""

from __future__ import annotations

import random

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Point, Rect
from repro.sam.gridfile import GridFile
from repro.storage.page import PageType

SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def random_rects(n, seed, extent=0.03):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * extent, rng.random() * extent
        rects.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    return rects


def brute_window(rects, window):
    return sorted(i for i, rect in enumerate(rects) if rect.intersects(window))


class TestGridFile:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GridFile(SPACE, bucket_capacity=1)
        with pytest.raises(ValueError):
            GridFile(SPACE, max_splits=0)

    def test_object_outside_space_rejected(self):
        grid = GridFile(SPACE)
        with pytest.raises(ValueError):
            grid.insert(Rect(2.0, 2.0, 3.0, 3.0), 0)

    def test_window_query_matches_brute_force(self):
        rects = random_rects(400, seed=71)
        grid = GridFile(SPACE, bucket_capacity=16, max_splits=12)
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
        rng = random.Random(72)
        for _ in range(20):
            cx, cy = rng.random(), rng.random()
            window = Rect(
                max(0.0, cx - 0.12), max(0.0, cy - 0.12),
                min(1.0, cx + 0.12), min(1.0, cy + 0.12),
            )
            assert sorted(grid.window_query(window)) == brute_window(rects, window)

    def test_point_query(self):
        rects = random_rects(250, seed=73, extent=0.1)
        grid = GridFile(SPACE, bucket_capacity=16)
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
        point = Point(0.52, 0.48)
        expected = sorted(
            i for i, rect in enumerate(rects) if rect.contains_point(point)
        )
        assert sorted(grid.point_query(point)) == expected

    def test_directory_refines_under_load(self):
        grid = GridFile(SPACE, bucket_capacity=8, max_splits=10)
        for i, rect in enumerate(random_rects(300, seed=74)):
            grid.insert(rect, i)
        columns, rows = grid.grid_shape
        assert columns * rows > 1
        assert grid.stats().directory_pages >= 1
        assert grid.stats().data_pages > 1

    def test_directory_cells_partition_space(self):
        grid = GridFile(SPACE, bucket_capacity=8)
        for i, rect in enumerate(random_rects(200, seed=75)):
            grid.insert(rect, i)
        total_area = 0.0
        for page in grid._directory_pages:
            assert page.page_type is PageType.DIRECTORY
            total_area += sum(entry.mbr.area for entry in page.entries)
        assert total_area == pytest.approx(SPACE.area)

    def test_delete(self):
        rects = random_rects(150, seed=76)
        grid = GridFile(SPACE, bucket_capacity=12)
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
        for i in range(0, 150, 3):
            assert grid.delete(rects[i], i)
        assert not grid.delete(rects[0], 0)  # already gone
        survivors = sorted(set(range(150)) - set(range(0, 150, 3)))
        assert sorted(grid.window_query(Rect(0, 0, 1, 1))) == survivors

    def test_replicated_extended_objects_deduplicated(self):
        grid = GridFile(SPACE, bucket_capacity=4, max_splits=6)
        wide = Rect(0.1, 0.1, 0.9, 0.9)
        grid.insert(wide, "wide")
        for i, rect in enumerate(random_rects(100, seed=77)):
            grid.insert(rect, i)
        results = grid.window_query(Rect(0.0, 0.0, 1.0, 1.0))
        assert results.count("wide") == 1

    def test_queries_through_buffer(self):
        rects = random_rects(300, seed=78)
        grid = GridFile(SPACE, bucket_capacity=16)
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
        buffer = BufferManager(grid.pagefile.disk, 12, LRU())
        window = Rect(0.3, 0.3, 0.6, 0.6)
        with buffer.query_scope():
            buffered = sorted(grid.window_query(window, buffer))
        assert buffered == brute_window(rects, window)
        assert buffer.stats.misses > 0

    def test_point_query_is_two_accesses_when_refined(self):
        """The grid file's signature property: directory + bucket."""
        grid = GridFile(SPACE, bucket_capacity=8)
        for i, rect in enumerate(random_rects(100, seed=79)):
            grid.insert(rect, i)
        buffer = BufferManager(grid.pagefile.disk, 64, LRU())
        # An interior point (not on a split line: midpoint splits produce
        # dyadic boundaries) lies in exactly one cell.
        with buffer.query_scope():
            grid.point_query(Point(0.51, 0.49), buffer)
        assert buffer.stats.requests == 2

    def test_split_budget_respected(self):
        grid = GridFile(SPACE, bucket_capacity=4, max_splits=3)
        for i in range(200):  # identical location: cannot be separated
            grid.insert(Rect(0.5, 0.5, 0.5, 0.5), i)
        columns, rows = grid.grid_shape
        assert len(grid._x_scale) + len(grid._y_scale) <= 6
        assert sorted(grid.window_query(Rect(0.4, 0.4, 0.6, 0.6))) == list(range(200))


class TestGridFileProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.95),
                st.floats(min_value=0.0, max_value=0.95),
                st.floats(min_value=0.0, max_value=0.05),
                st.floats(min_value=0.0, max_value=0.05),
            ),
            min_size=1,
            max_size=120,
        ),
        st.tuples(
            st.floats(min_value=0.0, max_value=0.8),
            st.floats(min_value=0.0, max_value=0.8),
            st.floats(min_value=0.0, max_value=0.3),
            st.floats(min_value=0.0, max_value=0.3),
        ),
    )
    def test_window_query_equals_linear_scan(self, raw_rects, raw_window):
        rects = [Rect(x, y, x + w, y + h) for x, y, w, h in raw_rects]
        wx, wy, ww, wh = raw_window
        window = Rect(wx, wy, wx + ww, wy + wh)
        grid = GridFile(SPACE, bucket_capacity=6, max_splits=8)
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
        assert sorted(grid.window_query(window)) == brute_window(rects, window)


class TestGridFileViaBuffer:
    def test_buffered_inserts_match_plain(self):
        """Directory rebuilds free and reallocate pages; through a buffer
        this exercises the discard/install path (stale-frame regression)."""
        rects = random_rects(250, seed=81)
        plain = GridFile(SPACE, bucket_capacity=8, max_splits=10)
        for i, rect in enumerate(rects):
            plain.insert(rect, i)

        buffered = GridFile(SPACE, bucket_capacity=8, max_splits=10)
        buffer = BufferManager(buffered.pagefile.disk, 6, LRU())
        with buffered.via(buffer):
            for i, rect in enumerate(rects):
                buffered.insert(rect, i)
        window = Rect(0.2, 0.2, 0.7, 0.7)
        assert sorted(buffered.window_query(window)) == sorted(
            plain.window_query(window)
        )
        assert buffer.stats.requests > 0

    def test_buffered_updates_charge_writes(self):
        grid = GridFile(SPACE, bucket_capacity=8)
        buffer = BufferManager(grid.pagefile.disk, 6, LRU())
        with grid.via(buffer):
            for i, rect in enumerate(random_rects(120, seed=82)):
                grid.insert(rect, i)
        buffer.flush()
        assert buffer.stats.writebacks > 0
