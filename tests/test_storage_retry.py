"""Tests for transient-failure injection and bounded retry."""

from __future__ import annotations

import pytest

from repro.geometry.rect import Rect
from repro.storage.disk import (
    DiskError,
    SimulatedDisk,
    TransientDiskError,
)
from repro.storage.page import Page, PageEntry, PageType
from repro.storage.retry import RetryPolicy, RetryingDisk, call_with_retry
from repro.storage.serialization import FileDisk


def make_page(page_id: int) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
    return page


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03
        )
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.03)  # capped
        assert policy.delay(4) == pytest.approx(0.03)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestCallWithRetry:
    def test_succeeds_after_transient_burst(self):
        failures = [TransientDiskError("busy"), TransientDiskError("busy")]

        def flaky():
            if failures:
                raise failures.pop()
            return "ok"

        sleeps: list[float] = []
        assert call_with_retry(flaky, RetryPolicy(), sleeps.append) == "ok"
        assert len(sleeps) == 2
        assert sleeps[0] < sleeps[1]  # backoff grows

    def test_budget_exhaustion_reraises_last_error(self):
        def always():
            raise TransientDiskError("still busy")

        with pytest.raises(TransientDiskError):
            call_with_retry(
                always, RetryPolicy(attempts=3), lambda _: None
            )

    def test_permanent_error_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise DiskError("media gone")

        with pytest.raises(DiskError):
            call_with_retry(broken, RetryPolicy(attempts=5), lambda _: None)
        assert len(calls) == 1  # no retry for permanent failures


class TestTransientInjection:
    def test_simulated_disk_transient_countdown(self):
        disk = SimulatedDisk()
        disk.store(make_page(0))
        disk.fail_transiently(0, op="read", times=2)
        for _ in range(2):
            with pytest.raises(TransientDiskError):
                disk.read(0)
        assert disk.read(0).page_id == 0

    def test_file_disk_transient_countdown(self, tmp_path):
        with FileDisk(tmp_path / "pages.bin", page_size=256) as disk:
            disk.store(make_page(1))
            disk.fail_transiently(1, op="write", times=1)
            with pytest.raises(TransientDiskError):
                disk.write(make_page(1))
            disk.write(make_page(1))

    def test_transient_write_does_not_reach_the_medium(self):
        disk = SimulatedDisk()
        disk.store(make_page(0))
        disk.fail_transiently(0, op="write", times=1)
        writes_before = disk.stats.writes
        with pytest.raises(TransientDiskError):
            disk.write(make_page(0))
        assert disk.stats.writes == writes_before


class TestRetryingDisk:
    def test_read_and_write_retry(self):
        disk = SimulatedDisk()
        disk.store(make_page(0))
        disk.fail_transiently(0, op="read", times=1)
        disk.fail_transiently(0, op="write", times=1)
        sleeps: list[float] = []
        wrapped = RetryingDisk(disk, RetryPolicy(), sleeps.append)
        assert wrapped.read(0).page_id == 0
        wrapped.write(make_page(0))
        assert len(sleeps) == 2

    def test_forwards_other_attributes(self):
        disk = SimulatedDisk()
        disk.store(make_page(3))
        wrapped = RetryingDisk(disk, RetryPolicy(), lambda _: None)
        assert wrapped.stats.reads == 0
        assert wrapped.peek(3).page_id == 3
