"""Tests for the ASCII plots and the temporal workload patterns."""

from __future__ import annotations

import pytest

from repro.experiments.plots import bar_chart, histogram, line_chart
from repro.geometry.rect import Point, Rect
from repro.workloads.patterns import (
    drifting_hotspot,
    session_workload,
    zoom_sequence,
)
from repro.workloads.queries import WindowQuery

SPACE = Rect(0.0, 0.0, 1.0, 1.0)


class TestLineChart:
    def test_renders_rows_and_axis(self):
        chart = line_chart([1, 5, 3, 8, 2], width=10, height=4, label="t")
        lines = chart.splitlines()
        assert len(lines) == 6  # 4 rows + axis + label
        assert lines[-2].strip().startswith("+")
        assert lines[-1].strip() == "t"

    def test_peak_visible_after_downsampling(self):
        values = [0.0] * 500
        values[250] = 10.0
        chart = line_chart(values, width=50, height=5)
        assert "#" in chart

    def test_empty_series(self):
        assert line_chart([]) == "(no data)"

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            line_chart([1.0], width=1)

    def test_constant_series_renders(self):
        chart = line_chart([4.0, 4.0, 4.0], width=10, height=3)
        assert "#" in chart


class TestBarChart:
    def test_positive_and_negative_bars(self):
        chart = bar_chart({"good": 0.25, "bad": -0.15}, width=20, unit="%")
        lines = chart.splitlines()
        assert len(lines) == 2
        good, bad = lines
        assert good.index("#") > bad.index("#")  # negatives grow left
        assert "+0.25%" in good
        assert "-0.15%" in bad

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_all_zero_does_not_crash(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart


class TestHistogram:
    def test_counts_sum_to_sample_size(self):
        values = [0.1, 0.2, 0.2, 0.9, 0.5, 0.5, 0.5]
        chart = histogram(values, bins=4)
        counts = [int(line.rsplit(" ", 1)[1]) for line in chart.splitlines()]
        assert sum(counts) == len(values)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_empty(self):
        assert histogram([]) == "(no data)"


class TestDriftingHotspot:
    def test_count_and_containment(self):
        queries = drifting_hotspot(SPACE, 40, seed=1)
        assert len(queries) == 40
        for query in queries:
            assert isinstance(query, WindowQuery)
            assert SPACE.contains(query.window)

    def test_hotspot_actually_moves(self):
        queries = drifting_hotspot(SPACE, 60, seed=2)
        centers = [q.window.center for q in queries]
        assert centers[0].distance_to(centers[30]) > 0.2

    def test_deterministic(self):
        assert drifting_hotspot(SPACE, 10, seed=3) == drifting_hotspot(
            SPACE, 10, seed=3
        )


class TestZoomSequence:
    def test_windows_nest(self):
        queries = zoom_sequence(SPACE, Point(0.5, 0.5), steps=6)
        for outer, inner in zip(queries, queries[1:]):
            assert outer.window.contains(inner.window)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            zoom_sequence(SPACE, Point(0.5, 0.5), steps=0)
        with pytest.raises(ValueError):
            zoom_sequence(SPACE, Point(0.5, 0.5), shrink=1.5)

    def test_target_near_border_is_clipped(self):
        queries = zoom_sequence(SPACE, Point(0.01, 0.01), steps=4)
        for query in queries:
            assert SPACE.contains(query.window)


class TestSessionWorkload:
    def test_shape(self):
        queries = session_workload(SPACE, n_sessions=5, queries_per_session=7, seed=4)
        assert len(queries) == 35

    def test_intra_session_locality(self):
        """Consecutive windows of one session overlap far more often than
        windows across session boundaries."""
        per_session = 10
        queries = session_workload(
            SPACE, n_sessions=12, queries_per_session=per_session, seed=5
        )
        intra = 0
        intra_total = 0
        inter = 0
        inter_total = 0
        for index in range(len(queries) - 1):
            a = queries[index].window
            b = queries[index + 1].window
            if (index + 1) % per_session == 0:
                inter_total += 1
                inter += a.intersects(b)
            else:
                intra_total += 1
                intra += a.intersects(b)
        assert intra / intra_total > 0.9
        assert inter / inter_total < 0.5
