"""Tests for the structural LRU variants: LRU-T and LRU-P (Section 2.1)."""

from __future__ import annotations

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru_p import LRUP, level_priority
from repro.buffer.policies.lru_t import LRUT
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def typed_disk():
    """Pages 0-2 object, 3-5 data, 6-8 directory (levels 1, 2, 3)."""
    disk = SimulatedDisk()
    specs = [
        (0, PageType.OBJECT, -1),
        (1, PageType.OBJECT, -1),
        (2, PageType.OBJECT, -1),
        (3, PageType.DATA, 0),
        (4, PageType.DATA, 0),
        (5, PageType.DATA, 0),
        (6, PageType.DIRECTORY, 1),
        (7, PageType.DIRECTORY, 2),
        (8, PageType.DIRECTORY, 3),
    ]
    for page_id, page_type, level in specs:
        page = Page(page_id=page_id, page_type=page_type, level=level)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


class TestLRUT:
    def test_object_pages_dropped_first(self):
        buffer = BufferManager(typed_disk(), 3, LRUT())
        buffer.fetch(8)  # directory
        buffer.fetch(0)  # object
        buffer.fetch(3)  # data
        buffer.fetch(4)  # miss: the object page must go first
        assert not buffer.contains(0)
        assert buffer.contains(8)
        assert buffer.contains(3)

    def test_data_pages_dropped_before_directory(self):
        buffer = BufferManager(typed_disk(), 2, LRUT())
        buffer.fetch(3)  # data
        buffer.fetch(8)  # directory
        buffer.fetch(6)  # miss: the data page must go, not the directory
        assert not buffer.contains(3)
        assert buffer.contains(8)

    def test_same_type_falls_to_lru(self):
        buffer = BufferManager(typed_disk(), 2, LRUT())
        buffer.fetch(3)
        buffer.fetch(4)
        buffer.fetch(3)  # renew 3
        buffer.fetch(5)  # evicts 4, the older data page
        assert not buffer.contains(4)
        assert buffer.contains(3)


class TestLRUP:
    def test_default_priority_is_level(self):
        object_page = Page(page_id=0, page_type=PageType.OBJECT, level=-1)
        data_page = Page(page_id=1, page_type=PageType.DATA, level=0)
        directory = Page(page_id=2, page_type=PageType.DIRECTORY, level=3)
        assert level_priority(object_page) == -1
        assert level_priority(data_page) == 0
        assert level_priority(directory) == 3

    def test_lower_levels_evicted_first(self):
        buffer = BufferManager(typed_disk(), 3, LRUP())
        buffer.fetch(8)  # level 3
        buffer.fetch(7)  # level 2
        buffer.fetch(3)  # level 0
        buffer.fetch(4)  # miss: evict the level-0 page
        assert not buffer.contains(3)
        assert buffer.contains(7)
        assert buffer.contains(8)

    def test_higher_directory_outranks_lower_directory(self):
        buffer = BufferManager(typed_disk(), 2, LRUP())
        buffer.fetch(8)  # level 3 (root-like)
        buffer.fetch(6)  # level 1
        buffer.fetch(7)  # miss: evict level 1, keep level 3
        assert not buffer.contains(6)
        assert buffer.contains(8)

    def test_same_priority_falls_to_lru(self):
        buffer = BufferManager(typed_disk(), 2, LRUP())
        buffer.fetch(3)
        buffer.fetch(4)
        buffer.fetch(3)
        buffer.fetch(5)
        assert not buffer.contains(4)

    def test_custom_priority_function(self):
        # Invert the scheme: high levels evicted first.
        buffer = BufferManager(
            typed_disk(), 2, LRUP(priority=lambda page: -page.level)
        )
        buffer.fetch(8)  # level 3 -> priority -3 (lowest)
        buffer.fetch(3)  # level 0 -> priority 0
        buffer.fetch(4)
        assert not buffer.contains(8)

    def test_generalises_lru_t_on_tree_pages(self):
        """On directory/data pages LRU-P with level priority acts like LRU-T."""
        for policy_factory in (LRUT, LRUP):
            buffer = BufferManager(typed_disk(), 2, policy_factory())
            buffer.fetch(3)
            buffer.fetch(8)
            buffer.fetch(5)
            assert not buffer.contains(3)
            assert buffer.contains(8)
