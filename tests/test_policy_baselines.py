"""Tests for the baseline policies: LRU, FIFO, CLOCK, LFU, MRU, RANDOM."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.clock import Clock
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.lfu import LFU
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.mru import MRU
from repro.buffer.policies.random_policy import RandomPolicy
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def make_disk(n_pages=12):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


def make_buffer(policy, capacity=3):
    return BufferManager(make_disk(), capacity, policy)


class TestLRU:
    def test_evicts_least_recently_used(self):
        buffer = make_buffer(LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(0)  # renew page 0; page 1 is now LRU
        buffer.fetch(3)
        assert not buffer.contains(1)
        assert buffer.contains(0)

    def test_sequential_scan_evicts_in_order(self):
        buffer = make_buffer(LRU())
        for page_id in range(6):
            buffer.fetch(page_id)
        assert buffer.resident_ids() == [3, 4, 5]

    def test_repeated_hits_never_evict(self):
        buffer = make_buffer(LRU(), capacity=1)
        for _ in range(5):
            buffer.fetch(0)
        assert buffer.stats.misses == 1
        assert buffer.stats.hits == 4


class TestFIFO:
    def test_evicts_oldest_load_despite_hits(self):
        buffer = make_buffer(FIFO())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(0)  # hit must NOT save page 0 under FIFO
        buffer.fetch(3)
        assert not buffer.contains(0)
        assert buffer.contains(1)


class TestClock:
    def test_second_chance_saves_referenced_page(self):
        buffer = make_buffer(Clock())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(0)  # sets the reference bit of page 0
        buffer.fetch(3)
        # The hand clears 0's bit (second chance) and evicts page 1.
        assert buffer.contains(0)
        assert not buffer.contains(1)

    def test_sweep_degenerates_to_fifo_without_hits(self):
        buffer = make_buffer(Clock())
        for page_id in range(5):
            buffer.fetch(page_id)
        assert buffer.resident_ids() == [2, 3, 4]

    def test_survives_many_evictions(self):
        buffer = make_buffer(Clock(), capacity=4)
        for page_id in [0, 1, 2, 3, 0, 4, 5, 1, 6, 7, 8, 0, 9]:
            buffer.fetch(page_id)
        assert len(buffer) == 4

    def test_reset_clears_ring(self):
        policy = Clock()
        buffer = make_buffer(policy)
        buffer.fetch(0)
        buffer.clear()
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(3)
        buffer.fetch(4)
        assert len(buffer) == 3


class TestLFU:
    def test_evicts_least_frequent(self):
        buffer = make_buffer(LFU())
        buffer.fetch(0)
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(1)
        buffer.fetch(2)  # page 2 has count 1
        buffer.fetch(3)
        assert not buffer.contains(2)

    def test_frequency_ties_fall_to_lru(self):
        buffer = make_buffer(LFU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(3)  # all counts 1; LRU victim is page 0
        assert not buffer.contains(0)


class TestMRU:
    def test_evicts_most_recent(self):
        buffer = make_buffer(MRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(3)
        # Page 2 was the most recently touched when 3 missed.
        assert not buffer.contains(2)
        assert buffer.contains(0)


class TestRandom:
    def test_deterministic_under_seed(self):
        def run(seed):
            buffer = make_buffer(RandomPolicy(seed=seed))
            for page_id in [0, 1, 2, 3, 4, 5, 1, 6, 7]:
                buffer.fetch(page_id)
            return buffer.resident_ids()

        assert run(7) == run(7)

    def test_reset_restores_sequence(self):
        policy = RandomPolicy(seed=3)
        buffer = make_buffer(policy)
        for page_id in range(6):
            buffer.fetch(page_id)
        first = buffer.resident_ids()
        buffer.clear()
        for page_id in range(6):
            buffer.fetch(page_id)
        assert buffer.resident_ids() == first

    def test_respects_pins(self):
        buffer = make_buffer(RandomPolicy(seed=1), capacity=2)
        buffer.fetch(0)
        buffer.pin(0)
        for page_id in range(1, 9):
            buffer.fetch(page_id)
        assert buffer.contains(0)


class TestVictimUniverse:
    @pytest.mark.parametrize(
        "policy_factory",
        [LRU, FIFO, Clock, LFU, MRU, lambda: RandomPolicy(seed=5)],
        ids=["LRU", "FIFO", "CLOCK", "LFU", "MRU", "RANDOM"],
    )
    def test_capacity_respected_under_churn(self, policy_factory):
        buffer = make_buffer(policy_factory(), capacity=4)
        pattern = [0, 1, 2, 3, 4, 1, 5, 2, 6, 0, 7, 8, 3, 9, 10, 11, 4, 5]
        for page_id in pattern:
            buffer.fetch(page_id)
            assert len(buffer) <= 4
        assert buffer.stats.requests == len(pattern)
