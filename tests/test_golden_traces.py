"""Golden-trace regression tests.

A canonical 500-request workload is recorded once per registered policy
into ``tests/golden/*.jsonl`` (checked in).  Each test re-records the
workload and compares against the stored fixture event by event and
counter by counter — any change to a policy's decision sequence, the
manager's emission contract, or the trace format shows up as a diff
against a human-readable JSON-lines file.

Because all buffer timestamps are logical, the fixtures are exact, not
statistical.  To regenerate after an *intentional* behaviour change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py
"""

from __future__ import annotations

import os
import random
from pathlib import Path

import pytest

from repro.buffer.policies import (
    ASB,
    AWRP,
    LRUK,
    SLRU,
    EEvA,
    EnsemblePolicy,
    LRU,
    SpatialPolicy,
)
from repro.geometry.rect import Rect
from repro.obs import RecordedTrace, record_run, replay_recorded
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType

GOLDEN_DIR = Path(__file__).parent / "golden"

CAPACITY = 16
N_PAGES = 48
N_REQUESTS = 500

#: The registered policies and their fixture names.
GOLDEN_POLICIES = {
    "lru": LRU,
    "lru_2": lambda: LRUK(k=2),
    "slru": lambda: SLRU(candidate_fraction=0.25),
    "spatial_a": lambda: SpatialPolicy("A"),
    "spatial_ea": lambda: SpatialPolicy("EA"),
    "spatial_m": lambda: SpatialPolicy("M"),
    "spatial_em": lambda: SpatialPolicy("EM"),
    "spatial_eo": lambda: SpatialPolicy("EO"),
    "asb": lambda: ASB(overflow_fraction=0.25),
    "awrp": AWRP,
    "eeva": EEvA,
    "ensemble": lambda: EnsemblePolicy(experts=("LRU", "ASB", "AWRP")),
}


def canonical_disk() -> SimulatedDisk:
    """A deterministic page population with varied spatial footprints."""
    rng = random.Random(2002)
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        directory = page_id % 4 == 0
        page = Page(
            page_id=page_id,
            page_type=PageType.DIRECTORY if directory else PageType.DATA,
            level=1 if directory else 0,
        )
        for index in range(5):
            x, y = rng.random(), rng.random()
            w = rng.random() * (0.25 if directory else 0.08)
            h = rng.random() * (0.25 if directory else 0.08)
            page.entries.append(
                PageEntry(mbr=Rect(x, y, x + w, y + h), payload=index)
            )
        disk.store(page)
    return disk


def canonical_workload() -> list[tuple[int, int]]:
    """500 requests: a hot set, a drifting phase, and query correlation."""
    rng = random.Random(533)
    requests: list[tuple[int, int]] = []
    query = 0
    for position in range(N_REQUESTS):
        if position % 6 == 0:
            query += 1
        phase = position * 3 // N_REQUESTS  # three workload phases
        if phase == 0:  # hot set
            page_id = rng.randrange(N_PAGES // 4)
        elif phase == 1:  # uniform
            page_id = rng.randrange(N_PAGES)
        else:  # shifted hot set with uniform background
            if rng.random() < 0.7:
                page_id = N_PAGES // 2 + rng.randrange(N_PAGES // 4)
            else:
                page_id = rng.randrange(N_PAGES)
        requests.append((page_id, query))
    return requests


def record_canonical(name: str) -> RecordedTrace:
    return record_run(
        canonical_workload(), canonical_disk(), GOLDEN_POLICIES[name](), CAPACITY
    )


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.jsonl"


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name in GOLDEN_POLICIES:
            record_canonical(name).save(golden_path(name))


@pytest.mark.parametrize("name", sorted(GOLDEN_POLICIES))
class TestGoldenTraces:
    def test_fixture_exists(self, name):
        assert golden_path(name).exists(), (
            f"missing fixture {golden_path(name)}; regenerate with "
            "REGEN_GOLDEN=1"
        )

    def test_recording_matches_fixture(self, name):
        """A fresh recording must reproduce the pinned decision sequence."""
        golden = RecordedTrace.load(golden_path(name))
        fresh = record_canonical(name)
        assert fresh.policy == golden.policy
        assert fresh.capacity == golden.capacity
        assert fresh.stats == golden.stats
        assert len(fresh.events) == len(golden.events)
        for position, (ours, theirs) in enumerate(
            zip(fresh.events, golden.events)
        ):
            assert ours == theirs, (
                f"{name}: event {position} diverged: {ours} != {theirs}"
            )

    def test_replay_reproduces_fixture(self, name):
        """Replaying the stored trace yields the identical event stream
        and statistics snapshot — the determinism contract."""
        golden = RecordedTrace.load(golden_path(name))
        replayed = replay_recorded(golden, GOLDEN_POLICIES[name]())
        assert replayed.events == golden.events
        assert replayed.stats == golden.stats


class TestGoldenCoverage:
    def test_workload_is_canonical(self):
        requests = canonical_workload()
        assert len(requests) == N_REQUESTS
        assert requests == canonical_workload()  # deterministic

    def test_asb_fixture_exercises_adaptation(self):
        golden = RecordedTrace.load(golden_path("asb"))
        assert golden.events_of("promote")
        assert golden.events_of("adapt")

    def test_all_fixtures_exercise_eviction(self):
        for name in GOLDEN_POLICIES:
            golden = RecordedTrace.load(golden_path(name))
            assert golden.events_of("evict"), name
            assert int(golden.stats["requests"]) == N_REQUESTS, name
