"""Tests of the ablation harness (``bench ablation``).

The matrix is only trustworthy if three properties hold: every
configuration actually builds and runs (the flags compose), the
accounting identity ``hits + misses == requests`` survives every
one-off, and the counter metrics are bit-deterministic at ``workers=1``
for a fixed seed — the property the importance scores and the
regression gate stand on.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.ablation import (
    AblationParams,
    ablation_workloads,
    baseline_build_kwargs,
    build_schedule,
    component_specs,
    run_ablation,
)

#: Small but non-trivial: 2 workloads x 240 refs over 12 frames, serial.
PARAMS = AblationParams(
    capacity=12,
    shards=2,
    workers=1,
    length=240,
    seed=7,
    write_every=4,
    commit_every=16,
    epoch_length=50,
    read_delay_us=0.0,
)


@pytest.fixture(scope="module")
def report():
    return run_ablation(PARAMS)


def counter_view(report) -> dict:
    """The deterministic slice of a report (no wall-clock anywhere)."""
    view = {}
    for run in report.all_runs():
        overall = run.overall.to_dict()
        overall.pop("seconds")
        overall.pop("throughput")
        view[run.key] = {"run_id": run.run_id, "overall": overall}
    return view


class TestMatrix:
    def test_every_component_config_builds_and_runs(self, report):
        specs = component_specs(PARAMS)
        assert len(specs) >= 6
        assert set(report.variants) == {spec.key for spec in specs}
        for run in report.all_runs():
            assert run.overall.requests > 0
            assert [stage.name for stage in run.stages][0] == "build"
            assert [stage.name for stage in run.stages][-1] == "drain"

    def test_accounting_identity_every_config(self, report):
        for run in report.all_runs():
            overall = run.overall
            assert overall.hits + overall.misses == overall.requests, run.key
            for name, metrics in run.workloads.items():
                assert metrics.hits + metrics.misses == metrics.requests, (
                    f"{run.key}/{name}"
                )

    def test_acceptance_block(self, report):
        verdict = report.acceptance()
        assert verdict["at_least_6_components"]
        assert verdict["accounting_identity_holds"]
        assert verdict["includes_hostile_workload"]

    def test_run_ids_are_distinct_and_stable(self, report):
        run_ids = [run.run_id for run in report.all_runs()]
        assert len(set(run_ids)) == len(run_ids)
        for run in report.all_runs():
            assert run.run_id.startswith(f"{run.key}-")

    def test_hostile_cycle_is_sized_against_capacity(self, report):
        """The hostile string is the canonical one: a walk over exactly
        ``capacity + 1`` pages (zero LRU hits — pinned by the workload
        tests; the matrix's MRU-start baseline survives it, which is the
        robustness the ablation is after)."""
        cycle = report.workloads["cycle"]
        assert cycle.distinct_pages() == PARAMS.capacity + 1
        assert cycle.respects_graph()
        assert report.baseline.workloads["cycle"].requests >= PARAMS.length

    def test_tuning_component_shows_up(self, report):
        """Started naive (MRU), the tuner must visibly help: switching it
        off drops the overall hit rate."""
        without = report.variants["tuning"].overall
        assert report.baseline.overall.hit_rate > without.hit_rate
        score = next(s for s in report.scores if s.key == "tuning")
        assert score.hit_rate_delta > 0

    def test_group_commit_component_saves_fsyncs(self, report):
        """Window 1 must fsync strictly more often than window 8."""
        without = report.variants["group_commit"].overall
        assert without.fsyncs > report.baseline.overall.fsyncs

    def test_importance_ranking_is_sorted(self, report):
        ranked = report.ranked()
        assert len(ranked) == len(report.scores)
        scores = [score.importance for score in ranked]
        assert scores == sorted(scores, reverse=True)


class TestDeterminism:
    def test_counters_identical_across_reruns(self, report):
        """workers=1 + fixed seed => every counter metric bit-identical."""
        again = run_ablation(PARAMS)
        assert counter_view(report) == counter_view(again)

    def test_workload_digests_stable(self, report):
        fresh = ablation_workloads(PARAMS)
        for name, reference in report.workloads.items():
            assert reference.digest() == fresh[name].digest()


class TestSchedules:
    def test_build_schedule_mixes_ops(self):
        reference = ablation_workloads(PARAMS)["cycle"]
        schedule = build_schedule(reference, write_every=4, commit_every=16)
        reads = [op for op in schedule if op[0] == "read"]
        writes = [op for op in schedule if op[0] == "write"]
        commits = [op for op in schedule if op[0] == "commit"]
        assert len(reads) + len(writes) == len(reference)
        assert len(writes) == len(reference) // 4
        assert len(commits) == len(reference) // 16
        # Page ops preserve the reference order exactly.
        assert [op[1] for op in schedule if op[0] != "commit"] == list(reference)

    def test_zero_intervals_mean_read_only(self):
        reference = ablation_workloads(PARAMS)["cycle"]
        schedule = build_schedule(reference, write_every=0, commit_every=0)
        assert all(op[0] == "read" for op in schedule)


class TestThreadedSmoke:
    def test_threaded_run_keeps_identity(self):
        params = AblationParams(
            capacity=12,
            shards=2,
            workers=3,
            length=120,
            seed=3,
            epoch_length=40,
            read_delay_us=0.0,
        )
        report = run_ablation(params)
        assert report.acceptance()["accounting_identity_holds"]
        # Admission was live: the gate admitted every op (no overload here).
        assert report.baseline.overall.rejected == 0


class TestReportOutput:
    def test_save_and_meta(self, report, tmp_path):
        path = tmp_path / "BENCH_ablation.json"
        report.save(str(path))
        data = json.loads(path.read_text())
        assert data["benchmark"] == "ablation"
        assert data["meta"]["seed"] == PARAMS.seed
        assert data["meta"]["run_id"] == report.baseline.run_id
        assert len(data["components"]) >= 6
        assert data["acceptance"]["accounting_identity_holds"]
        assert {w["name"] for w in data["workloads"]} == {"cycle", "clustered"}
        for workload in data["workloads"]:
            assert len(workload["digest"]) == 64

    def test_to_text_mentions_every_component(self, report):
        text = report.to_text()
        for spec in component_specs(PARAMS):
            assert spec.key in text
        assert "baseline" in text


class TestCli:
    def test_bench_ablation_cli(self, tmp_path):
        out = tmp_path / "BENCH_ablation.json"
        code = main(
            [
                "bench", "ablation",
                "--capacity", "12",
                "--workers", "1",
                "--length", "120",
                "--epoch", "40",
                "--latency-us", "0",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["acceptance"]["at_least_6_components"]
