"""Tests for the spatial replacement criteria and the pure spatial policy."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.spatial import (
    SPATIAL_CRITERIA,
    SpatialPolicy,
    crit_area,
    crit_entry_area,
    crit_entry_margin,
    crit_entry_overlap,
    crit_margin,
    spatial_criterion,
)
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def page_with(rects, page_id=0):
    page = Page(page_id=page_id, page_type=PageType.DATA)
    for index, rect in enumerate(rects):
        page.entries.append(PageEntry(mbr=rect, payload=index))
    return page


class TestCriteria:
    def test_area_is_page_mbr_area(self):
        page = page_with([Rect(0, 0, 1, 1), Rect(2, 0, 3, 2)])
        assert crit_area(page) == 6.0  # MBR = (0,0,3,2)

    def test_entry_area_sums_entries(self):
        page = page_with([Rect(0, 0, 1, 1), Rect(2, 0, 3, 2)])
        assert crit_entry_area(page) == 3.0  # 1 + 2

    def test_margin_is_page_mbr_margin(self):
        page = page_with([Rect(0, 0, 1, 1), Rect(2, 0, 3, 2)])
        assert crit_margin(page) == 10.0  # 2*(3+2)

    def test_entry_margin_sums_entries(self):
        page = page_with([Rect(0, 0, 1, 1), Rect(2, 0, 3, 2)])
        assert crit_entry_margin(page) == 4.0 + 6.0

    def test_entry_overlap_counts_pairs(self):
        page = page_with(
            [Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), Rect(10, 10, 11, 11)]
        )
        assert crit_entry_overlap(page) == 1.0

    def test_empty_page_criteria_are_zero(self):
        page = page_with([])
        for criterion in SPATIAL_CRITERIA.values():
            assert criterion(page) == 0.0

    def test_a_equals_ea_on_non_overlapping_full_partition(self):
        """Paper: A and EA coincide on pages of a complete, overlap-free
        partition (e.g. quadtree directory pages)."""
        page = page_with(
            [
                Rect(0.0, 0.0, 0.5, 0.5),
                Rect(0.5, 0.0, 1.0, 0.5),
                Rect(0.0, 0.5, 0.5, 1.0),
                Rect(0.5, 0.5, 1.0, 1.0),
            ]
        )
        assert crit_area(page) == pytest.approx(crit_entry_area(page))


class TestCriterionCache:
    def test_cached_on_frame(self):
        disk = SimulatedDisk()
        disk.store(page_with([Rect(0, 0, 2, 2)], page_id=0))
        buffer = BufferManager(disk, 2, SpatialPolicy("A"))
        buffer.fetch(0)
        frame = buffer.frames[0]
        assert spatial_criterion(frame, "A") == 4.0
        assert frame.crit_cache["A"] == 4.0
        # Poison the cache to prove subsequent reads come from it.
        frame.crit_cache["A"] = 99.0
        assert spatial_criterion(frame, "A") == 99.0

    def test_mark_dirty_invalidates_all_five_criteria(self):
        """mark_dirty must drop every cached criterion — a stale value for
        any of the five would rank the page by its pre-modification
        footprint."""
        disk = SimulatedDisk()
        disk.store(page_with([Rect(0, 0, 2, 2)], page_id=0))
        buffer = BufferManager(disk, 2, SpatialPolicy("A"))
        page = buffer.fetch(0)
        frame = buffer.frames[0]
        for criterion in SPATIAL_CRITERIA:
            spatial_criterion(frame, criterion)
        assert set(frame.crit_cache) == set(SPATIAL_CRITERIA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 10, 10), payload=1))
        buffer.mark_dirty(0)
        assert frame.crit_cache == {}

    @pytest.mark.parametrize("criterion", sorted(SPATIAL_CRITERIA))
    def test_next_lookup_recomputes_after_mark_dirty(self, criterion):
        """After invalidation the next spatial_criterion call must see the
        modified page content, not the cached pre-modification value."""
        disk = SimulatedDisk()
        disk.store(page_with([Rect(0, 0, 2, 2), Rect(1, 1, 2, 2)], page_id=0))
        buffer = BufferManager(disk, 2, SpatialPolicy(criterion))
        page = buffer.fetch(0)
        frame = buffer.frames[0]
        before = spatial_criterion(frame, criterion)
        # Growing the page's footprint strictly increases all five
        # criteria (EO gains a fully-overlapped third rectangle).
        page.entries.append(PageEntry(mbr=Rect(0, 0, 20, 20), payload=2))
        buffer.mark_dirty(0)
        after = spatial_criterion(frame, criterion)
        assert after > before
        assert frame.crit_cache[criterion] == after

    def test_invalidation_changes_the_eviction_decision(self):
        """End to end: an update that shrinks a page's criterion must make
        it the next victim — impossible with a stale cache."""
        disk = SimulatedDisk()
        disk.store(page_with([Rect(0, 0, 5, 5)], page_id=0))
        disk.store(page_with([Rect(0, 0, 3, 3)], page_id=1))
        disk.store(page_with([Rect(0, 0, 4, 4)], page_id=2))
        buffer = BufferManager(disk, 2, SpatialPolicy("A"))
        page = buffer.fetch(0)
        buffer.fetch(1)
        # Warm the cache, then shrink page 0 below page 1's criterion.
        assert spatial_criterion(buffer.frames[0], "A") == 25.0
        page.entries[:] = [PageEntry(mbr=Rect(0, 0, 1, 1), payload=0)]
        buffer.mark_dirty(0)
        buffer.fetch(2)  # must evict the now-smallest page 0, not page 1
        assert not buffer.contains(0)
        assert buffer.contains(1)


class TestSpatialPolicy:
    def test_unknown_criterion_raises(self):
        with pytest.raises(ValueError):
            SpatialPolicy("XYZ")

    @pytest.mark.parametrize("criterion", sorted(SPATIAL_CRITERIA))
    def test_policy_name_is_criterion(self, criterion):
        assert SpatialPolicy(criterion).name == criterion

    def test_smallest_area_page_evicted(self):
        disk = SimulatedDisk()
        sizes = {0: 4.0, 1: 1.0, 2: 9.0, 3: 16.0}
        for page_id, size in sizes.items():
            side = size**0.5
            disk.store(page_with([Rect(0, 0, side, side)], page_id=page_id))
        buffer = BufferManager(disk, 3, SpatialPolicy("A"))
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(3)  # evicts page 1 (smallest area)
        assert not buffer.contains(1)
        assert buffer.contains(0)
        assert buffer.contains(2)

    def test_recency_is_ignored(self):
        """Unlike LRU, hitting a small page does not protect it."""
        disk = SimulatedDisk()
        disk.store(page_with([Rect(0, 0, 1, 1)], page_id=0))  # small
        disk.store(page_with([Rect(0, 0, 5, 5)], page_id=1))  # large
        disk.store(page_with([Rect(0, 0, 4, 4)], page_id=2))
        buffer = BufferManager(disk, 2, SpatialPolicy("A"))
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(0)  # hit on the small page
        buffer.fetch(2)  # still evicts the small page 0
        assert not buffer.contains(0)

    def test_ties_break_by_lru(self):
        disk = SimulatedDisk()
        for page_id in range(3):
            disk.store(page_with([Rect(0, 0, 2, 2)], page_id=page_id))
        buffer = BufferManager(disk, 2, SpatialPolicy("A"))
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(0)  # renew 0; tie on criterion -> evict 1
        buffer.fetch(2)
        assert not buffer.contains(1)
        assert buffer.contains(0)

    @pytest.mark.parametrize("criterion", sorted(SPATIAL_CRITERIA))
    def test_all_criteria_run_under_churn(self, criterion):
        disk = SimulatedDisk()
        for page_id in range(10):
            w = 0.5 + page_id * 0.3
            disk.store(
                page_with(
                    [Rect(0, 0, w, w), Rect(w / 2, 0, w, w)], page_id=page_id
                )
            )
        buffer = BufferManager(disk, 4, SpatialPolicy(criterion))
        for page_id in [0, 1, 2, 3, 4, 5, 2, 6, 7, 1, 8, 9]:
            buffer.fetch(page_id)
            assert len(buffer) <= 4

    def test_pinned_pages_skipped(self):
        disk = SimulatedDisk()
        disk.store(page_with([Rect(0, 0, 1, 1)], page_id=0))  # smallest
        disk.store(page_with([Rect(0, 0, 3, 3)], page_id=1))
        disk.store(page_with([Rect(0, 0, 5, 5)], page_id=2))
        buffer = BufferManager(disk, 2, SpatialPolicy("A"))
        buffer.fetch(0)
        buffer.pin(0)
        buffer.fetch(1)
        buffer.fetch(2)  # must evict 1, not the pinned smallest page 0
        assert buffer.contains(0)
        assert not buffer.contains(1)
