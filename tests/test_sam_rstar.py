"""Tests for the R*-tree: construction, queries, deletion, invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Point, Rect
from repro.sam.base import DirectAccessor
from repro.sam.rstar import RStarTree
from repro.storage.page import PageType


def random_rects(n, seed, extent=0.05):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x = rng.random()
        y = rng.random()
        w = rng.random() * extent
        h = rng.random() * extent
        rects.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    return rects


def brute_window(rects, window):
    return sorted(i for i, rect in enumerate(rects) if rect.intersects(window))


def brute_point(rects, point):
    return sorted(i for i, rect in enumerate(rects) if rect.contains_point(point))


def build_tree(rects, bulk=False, **kwargs):
    tree = RStarTree(max_dir_entries=8, max_data_entries=8, **kwargs)
    if bulk:
        tree.bulk_load([(rect, i) for i, rect in enumerate(rects)])
    else:
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
    return tree


class TestInsertAndQuery:
    def test_empty_tree(self):
        tree = RStarTree()
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.point_query(Point(0.5, 0.5)) == []
        assert tree.knn(Point(0.5, 0.5), 3) == []

    def test_single_insert(self):
        tree = RStarTree()
        tree.insert(Rect(0.2, 0.2, 0.4, 0.4), "obj")
        assert tree.window_query(Rect(0.0, 0.0, 1.0, 1.0)) == ["obj"]
        assert tree.window_query(Rect(0.5, 0.5, 1.0, 1.0)) == []
        assert tree.height == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RStarTree(max_dir_entries=2)
        with pytest.raises(ValueError):
            RStarTree(min_fill=0.9)

    def test_window_query_matches_brute_force(self):
        rects = random_rects(400, seed=3)
        tree = build_tree(rects)
        rng = random.Random(5)
        for _ in range(25):
            cx, cy = rng.random(), rng.random()
            window = Rect(
                max(0.0, cx - 0.1),
                max(0.0, cy - 0.1),
                min(1.0, cx + 0.1),
                min(1.0, cy + 0.1),
            )
            assert sorted(tree.window_query(window)) == brute_window(rects, window)

    def test_point_query_matches_brute_force(self):
        rects = random_rects(400, seed=4, extent=0.2)
        tree = build_tree(rects)
        rng = random.Random(6)
        for _ in range(25):
            point = Point(rng.random(), rng.random())
            assert sorted(tree.point_query(point)) == brute_point(rects, point)

    def test_validate_after_incremental_build(self):
        tree = build_tree(random_rects(500, seed=7))
        tree.validate()
        assert tree.entry_count == 500

    def test_tree_grows_in_height(self):
        tree = build_tree(random_rects(500, seed=8))
        assert tree.height >= 3

    def test_duplicate_rects_supported(self):
        tree = RStarTree(max_dir_entries=4, max_data_entries=4)
        rect = Rect(0.5, 0.5, 0.6, 0.6)
        for i in range(30):
            tree.insert(rect, i)
        assert sorted(tree.window_query(rect)) == list(range(30))
        tree.validate()

    def test_forced_reinsert_can_be_disabled(self):
        rects = random_rects(200, seed=9)
        tree = build_tree(rects, reinsert_fraction=0.0)
        tree.validate()
        window = Rect(0.2, 0.2, 0.6, 0.6)
        assert sorted(tree.window_query(window)) == brute_window(rects, window)


class TestBulkLoad:
    def test_bulk_load_matches_brute_force(self):
        rects = random_rects(500, seed=10)
        tree = build_tree(rects, bulk=True)
        tree.validate()
        window = Rect(0.3, 0.3, 0.5, 0.5)
        assert sorted(tree.window_query(window)) == brute_window(rects, window)

    def test_bulk_load_on_nonempty_raises(self):
        tree = RStarTree()
        tree.insert(Rect(0, 0, 1, 1), 0)
        with pytest.raises(RuntimeError):
            tree.bulk_load([(Rect(0, 0, 1, 1), 1)])

    def test_bulk_load_empty_is_noop(self):
        tree = RStarTree()
        tree.bulk_load([])
        assert tree.root_id is None
        assert tree.height == 0

    def test_fill_factor_controls_page_count(self):
        rects = random_rects(400, seed=11)
        full = RStarTree(max_dir_entries=8, max_data_entries=8)
        full.bulk_load([(r, i) for i, r in enumerate(rects)], fill=1.0)
        loose = RStarTree(max_dir_entries=8, max_data_entries=8)
        loose.bulk_load([(r, i) for i, r in enumerate(rects)], fill=0.5)
        assert loose.stats().data_pages > full.stats().data_pages

    def test_invalid_fill_raises(self):
        tree = RStarTree()
        with pytest.raises(ValueError):
            tree.bulk_load([(Rect(0, 0, 1, 1), 0)], fill=0.0)

    def test_directory_fraction_is_paper_like(self):
        """With 51/42 capacities the tree should be ~3 % directory pages."""
        rects = random_rects(30_000, seed=12)
        tree = RStarTree()  # paper capacities 51/42
        tree.bulk_load([(r, i) for i, r in enumerate(rects)])
        stats = tree.stats()
        assert 0.01 < stats.directory_fraction < 0.08


class TestDeletion:
    def test_delete_removes_object(self):
        rects = random_rects(150, seed=13)
        tree = build_tree(rects)
        assert tree.delete(rects[7], 7)
        assert 7 not in tree.window_query(Rect(0, 0, 1, 1))
        assert tree.entry_count == 149
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree = build_tree(random_rects(50, seed=14))
        assert not tree.delete(Rect(0.9, 0.9, 0.95, 0.95), 999)

    def test_delete_from_empty_tree(self):
        assert not RStarTree().delete(Rect(0, 0, 1, 1), 0)

    def test_delete_everything(self):
        rects = random_rects(120, seed=15)
        tree = build_tree(rects)
        for i, rect in enumerate(rects):
            assert tree.delete(rect, i), f"object {i} not found"
        assert tree.entry_count == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_delete_half_keeps_rest_queryable(self):
        rects = random_rects(200, seed=16)
        tree = build_tree(rects)
        for i in range(0, 200, 2):
            assert tree.delete(rects[i], i)
        tree.validate()
        survivors = brute_window(
            [rects[i] for i in range(1, 200, 2)], Rect(0, 0, 1, 1)
        )
        found = sorted(tree.window_query(Rect(0, 0, 1, 1)))
        assert found == list(range(1, 200, 2))

    def test_interleaved_insert_delete(self):
        rng = random.Random(17)
        tree = RStarTree(max_dir_entries=6, max_data_entries=6)
        live = {}
        counter = 0
        for step in range(600):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live))
                assert tree.delete(live.pop(key), key)
            else:
                rect = random_rects(1, seed=1000 + step)[0]
                tree.insert(rect, counter)
                live[counter] = rect
                counter += 1
        tree.validate()
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == sorted(live)


class TestKnn:
    def test_knn_matches_brute_force(self):
        rects = random_rects(300, seed=18)
        tree = build_tree(rects)
        rng = random.Random(19)
        for _ in range(10):
            point = Point(rng.random(), rng.random())
            found = tree.knn(point, 5)
            distances = sorted(
                (rect.min_distance_to_point(point), i)
                for i, rect in enumerate(rects)
            )
            expected_distance = distances[4][0]
            found_max = max(
                rects[i].min_distance_to_point(point) for i in found
            )
            assert len(found) == 5
            assert found_max <= expected_distance + 1e-12

    def test_knn_k_larger_than_tree(self):
        rects = random_rects(10, seed=20)
        tree = build_tree(rects)
        assert len(tree.knn(Point(0.5, 0.5), 50)) == 10

    def test_knn_zero_k(self):
        tree = build_tree(random_rects(10, seed=21))
        assert tree.knn(Point(0.5, 0.5), 0) == []


class TestAccessors:
    def test_direct_accessor_counts_reads(self, small_tree):
        accessor = DirectAccessor(small_tree.pagefile)
        before = small_tree.pagefile.disk.stats.reads
        small_tree.window_query(Rect(0.4, 0.4, 0.6, 0.6), accessor)
        assert small_tree.pagefile.disk.stats.reads > before

    def test_build_accessor_is_unaccounted(self, small_tree):
        before = small_tree.pagefile.disk.stats.reads
        small_tree.window_query(Rect(0.4, 0.4, 0.6, 0.6))
        assert small_tree.pagefile.disk.stats.reads == before

    def test_root_is_fetched_every_query(self, small_tree):
        accessor = DirectAccessor(small_tree.pagefile)
        before = small_tree.pagefile.disk.stats.reads
        small_tree.point_query(Point(-5.0, -5.0), accessor)  # outside space
        assert small_tree.pagefile.disk.stats.reads == before + 1


class TestStats:
    def test_stats_counts_pages_by_type(self):
        tree = build_tree(random_rects(300, seed=22))
        stats = tree.stats()
        assert stats.page_count == stats.directory_pages + stats.data_pages
        assert stats.entry_count == 300
        assert stats.height == tree.height
        assert stats.directory_pages >= 1

    def test_page_types_match_levels(self):
        tree = build_tree(random_rects(300, seed=23))
        for page_id in tree.all_page_ids():
            page = tree.pagefile.disk.peek(page_id)
            if page.level == 0:
                assert page.page_type is PageType.DATA
            else:
                assert page.page_type is PageType.DIRECTORY


class TestPropertyBased:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.95),
                st.floats(min_value=0.0, max_value=0.95),
                st.floats(min_value=0.0, max_value=0.05),
                st.floats(min_value=0.0, max_value=0.05),
            ),
            min_size=1,
            max_size=120,
        ),
        st.tuples(
            st.floats(min_value=0.0, max_value=0.8),
            st.floats(min_value=0.0, max_value=0.8),
            st.floats(min_value=0.0, max_value=0.3),
            st.floats(min_value=0.0, max_value=0.3),
        ),
    )
    def test_window_query_equals_linear_scan(self, raw_rects, raw_window):
        rects = [Rect(x, y, x + w, y + h) for x, y, w, h in raw_rects]
        wx, wy, ww, wh = raw_window
        window = Rect(wx, wy, wx + ww, wy + wh)
        tree = RStarTree(max_dir_entries=5, max_data_entries=5)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.validate()
        assert sorted(tree.window_query(window)) == brute_window(rects, window)


class TestVectorisedChooseSubtree:
    def test_numpy_path_matches_scalar_key(self):
        """The vectorised leaf-level ChooseSubtree must pick an entry whose
        key equals the scalar minimum (ties may resolve either way)."""
        import random

        from repro.sam import rstar as rstar_module
        from repro.storage.page import PageEntry

        if rstar_module._np is None:
            pytest.skip("numpy not available")
        rng = random.Random(91)
        for _ in range(25):
            entries = []
            for _ in range(rng.randint(8, 40)):
                x, y = rng.random(), rng.random()
                w, h = rng.random() * 0.2, rng.random() * 0.2
                entries.append(
                    PageEntry(mbr=Rect(x, y, x + w, y + h), child=1)
                )
            new_x, new_y = rng.random(), rng.random()
            new = Rect(new_x, new_y, new_x + 0.05, new_y + 0.05)

            def scalar_key(i):
                candidate = entries[i].mbr
                enlarged = candidate.union(new)
                before = sum(
                    candidate.intersection_area(entries[j].mbr)
                    for j in range(len(entries))
                    if j != i
                )
                after = sum(
                    enlarged.intersection_area(entries[j].mbr)
                    for j in range(len(entries))
                    if j != i
                )
                return (after - before, enlarged.area - candidate.area,
                        candidate.area)

            chosen = rstar_module._choose_subtree_leaf_numpy(entries, new)
            best = min(scalar_key(i) for i in range(len(entries)))
            got = scalar_key(chosen)
            assert all(
                abs(a - b) < 1e-9 for a, b in zip(got, best)
            ), (got, best)

    def test_insertion_build_still_validates(self):
        rects = random_rects(600, seed=92)
        tree = RStarTree()  # paper fanout exercises the numpy path
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.validate()
        window = Rect(0.25, 0.25, 0.6, 0.6)
        assert sorted(tree.window_query(window)) == brute_window(rects, window)
