"""Shared fixtures.

Expensive structures (datasets, bulk-loaded trees) are session-scoped; the
tests only read them.  Tests that mutate trees build their own.
"""

from __future__ import annotations

import pytest

from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import us_mainland_like, world_atlas_like
from repro.experiments.harness import build_database
from repro.geometry.rect import Rect
from repro.sam.rstar import RStarTree


@pytest.fixture(scope="session")
def small_dataset():
    """A small database-1-like dataset (deterministic)."""
    return us_mainland_like(n_objects=3_000, seed=11)


@pytest.fixture(scope="session")
def small_dataset_db2():
    """A small database-2-like dataset (deterministic)."""
    return world_atlas_like(n_objects=2_500, seed=12)


@pytest.fixture(scope="session")
def small_places(small_dataset):
    return synthetic_places(small_dataset, count=200, seed=13)


@pytest.fixture(scope="session")
def small_tree(small_dataset):
    """A bulk-loaded R*-tree over the small dataset (read-only!)."""
    tree = RStarTree(max_dir_entries=16, max_data_entries=12)
    tree.bulk_load(small_dataset.items())
    return tree


@pytest.fixture(scope="session")
def small_database(small_dataset):
    """A full Database (tree + places) over the small dataset (read-only!)."""
    return build_database(small_dataset, n_places=200)


@pytest.fixture()
def unit_space():
    return Rect(0.0, 0.0, 1.0, 1.0)
