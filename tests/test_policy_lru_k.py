"""Tests for the LRU-K policy (Section 2.2)."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru_k import LRUK
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def make_disk(n_pages=12):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


class TestConstruction:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUK(k=0)

    def test_name_reflects_k(self):
        assert LRUK(k=2).name == "LRU-2"
        assert LRUK(k=5).name == "LRU-5"


class TestHistory:
    def test_uncorrelated_hits_extend_history(self):
        policy = LRUK(k=3)
        buffer = BufferManager(make_disk(), 4, policy)
        buffer.fetch(0)  # each unscoped access is its own query
        buffer.fetch(0)
        buffer.fetch(0)
        assert len(policy.history_of(0)) == 3

    def test_correlated_hits_collapse(self):
        policy = LRUK(k=3)
        buffer = BufferManager(make_disk(), 4, policy)
        with buffer.query_scope():
            buffer.fetch(0)
            buffer.fetch(0)
            buffer.fetch(0)
        # One query: HIST holds a single (renewed) reference.
        assert len(policy.history_of(0)) == 1

    def test_history_truncated_to_k(self):
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 4, policy)
        for _ in range(5):
            buffer.fetch(0)
        assert len(policy.history_of(0)) == 2

    def test_history_retained_after_eviction(self):
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 1, policy)
        buffer.fetch(0)
        buffer.fetch(1)  # evicts page 0
        assert policy.history_of(0)  # still known
        assert policy.history_size == 2

    def test_history_dropped_when_retention_disabled(self):
        policy = LRUK(k=2, retain_history=False)
        buffer = BufferManager(make_disk(), 1, policy)
        buffer.fetch(0)
        buffer.fetch(1)
        assert policy.history_of(0) == ()
        assert policy.history_size == 1

    def test_history_grows_with_distinct_pages(self):
        """The paper's memory criticism: HIST covers all pages ever seen."""
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(12), 2, policy)
        for page_id in range(12):
            buffer.fetch(page_id)
        assert policy.history_size == 12

    def test_reset_clears_history(self):
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 2, policy)
        buffer.fetch(0)
        buffer.clear()
        assert policy.history_size == 0


class TestVictimSelection:
    def test_page_with_old_kth_reference_evicted(self):
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 3, policy)
        # Page 0: two references long ago. Pages 1, 2: two recent references.
        buffer.fetch(0)
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(2)
        buffer.fetch(3)
        assert not buffer.contains(0)

    def test_pages_with_short_history_evicted_first(self):
        """A page referenced once ranks behind pages with K references."""
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 3, policy)
        buffer.fetch(0)
        buffer.fetch(0)  # page 0 has 2 refs
        buffer.fetch(1)
        buffer.fetch(1)  # page 1 has 2 refs
        buffer.fetch(2)  # page 2 has 1 ref -> infinite backward K-distance
        buffer.fetch(3)
        assert not buffer.contains(2)
        assert buffer.contains(0)
        assert buffer.contains(1)

    def test_burst_within_one_query_does_not_protect(self):
        """LRU-K's point: a one-query burst is one reference, not many."""
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 3, policy)
        with buffer.query_scope():  # page 0: burst of correlated accesses
            for _ in range(10):
                buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(1)  # page 1: two distinct queries
        buffer.fetch(2)
        buffer.fetch(2)
        buffer.fetch(3)  # evicts page 0: its burst was a single reference
        assert not buffer.contains(0)
        assert buffer.contains(1)

    def test_current_query_pages_protected(self):
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 2, policy)
        with buffer.query_scope():
            buffer.fetch(0)
            buffer.fetch(1)
            # Both residents belong to this query; eviction must still work
            # (fallback) without crashing.
            buffer.fetch(2)
        assert len(buffer) == 2

    def test_victims_prefer_uncorrelated_pages(self):
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 2, policy)
        buffer.fetch(0)
        buffer.fetch(0)
        with buffer.query_scope():
            buffer.fetch(1)  # belongs to the running query
            buffer.fetch(2)  # must evict page 0 (uncorrelated), not page 1
        assert buffer.contains(1)
        assert not buffer.contains(0)

    def test_reload_resumes_history(self):
        """A page returning to the buffer continues its old HIST."""
        policy = LRUK(k=2)
        buffer = BufferManager(make_disk(), 2, policy)
        buffer.fetch(0)
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.fetch(2)  # page 0 or 1 evicted; history kept
        evicted = 0 if not buffer.contains(0) else 1
        buffer.fetch(evicted)  # reload
        assert len(policy.history_of(evicted)) >= 2
