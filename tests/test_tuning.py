"""Tests of the self-tuning subsystem (:mod:`repro.tuning`).

The load-bearing properties, pinned with hypothesis where they are
stream-shaped:

* a ghost cache fed the live reference stream is **bit-identical** to a
  real buffer running the same policy and capacity on the same stream
  (per-access hit/miss decisions, final statistics, resident set);
* the live policy hand-off (``BufferManager.switch_policy``) loses zero
  resident pages and keeps ``hits + misses == requests`` across the
  switch, wherever in the stream it happens;
* the epoch controller actually adapts: a live policy that is
  pathologically wrong for the stream (LRU under a cyclic scan) is
  switched to the candidate that wins (MRU), the adaptation propagates
  to every shard of a concurrent buffer, and the ``tune_*`` events tell
  the story.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import BufferSystem
from repro.buffer.manager import BufferManager
from repro.buffer.policies import make_policy, policy_param_space
from repro.geometry.rect import Rect
from repro.obs.events import TraceRecorder
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.tuning import (
    Candidate,
    GhostCache,
    PageMeta,
    TuningConfig,
    TuningController,
    candidate_variants,
    default_candidates,
)

N_PAGES = 18

#: A trace is a sequence of (page_id, starts_new_query) pairs.
traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_PAGES - 1), st.booleans()
    ),
    min_size=1,
    max_size=150,
)

capacities = st.integers(min_value=1, max_value=7)

#: Policies the ghost-equivalence property quantifies over: the recency
#: baseline, the history expert, the paper's spatial self-tuner, and the
#: two ensemble experts added for the expert-mixture controller.
GHOST_POLICIES = ("LRU", "LRU-2", "ASB", "FIFO", "AWRP", "EEVA")


def build_disk() -> SimulatedDisk:
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        side = float(page_id % 5 + 1)
        page.entries.append(
            PageEntry(mbr=Rect(0, 0, side, side), payload=page_id)
        )
        disk.store(page)
    return disk


def page_metas(disk: SimulatedDisk, criteria: tuple[str, ...]) -> dict:
    return {
        page_id: PageMeta.from_page(disk.read(page_id), criteria)
        for page_id in range(N_PAGES)
    }


def grouped(trace):
    """Split a trace into query groups at the ``starts_new_query`` marks."""
    groups: list[list[int]] = []
    for page_id, new_query in trace:
        if new_query or not groups:
            groups.append([])
        groups[-1].append(page_id)
    return groups


class TestGhostEquivalence:
    """Ghost hit/miss decisions == a real buffer's, bit for bit."""

    @settings(max_examples=40, deadline=None)
    @given(traces, capacities, st.sampled_from(GHOST_POLICIES))
    def test_ghost_matches_real_buffer(self, trace, capacity, policy_name):
        disk = build_disk()
        buffer = BufferManager(disk, capacity, make_policy(policy_name))
        ghost_policy = make_policy(policy_name)
        criterion = getattr(ghost_policy, "criterion", None)
        criteria = (criterion,) if criterion else ()
        ghost = GhostCache(ghost_policy, capacity)
        metas = page_metas(disk, criteria)

        real_decisions: list[bool] = []
        ghost_decisions: list[bool] = []
        for group in grouped(trace):
            with buffer.query_scope() as query:
                for page_id in group:
                    real_decisions.append(buffer.contains(page_id))
                    buffer.fetch(page_id)
                    ghost_decisions.append(
                        ghost.access(page_id, query, metas[page_id])
                    )
        assert ghost_decisions == real_decisions
        assert ghost.stats.requests == buffer.stats.requests
        assert ghost.stats.hits == buffer.stats.hits
        assert ghost.stats.misses == buffer.stats.misses
        assert ghost.stats.evictions == buffer.stats.evictions
        assert set(ghost.frames) == set(buffer.frames)

    def test_ghost_frames_are_metadata_only(self):
        disk = build_disk()
        ghost = GhostCache(make_policy("ASB"), 4)
        metas = page_metas(disk, ("A",))
        for step in range(30):
            ghost.access(step % N_PAGES, step, metas[step % N_PAGES])
        for frame in ghost.frames.values():
            assert frame.page.entries == []      # stub pages, no content
            assert not frame.dirty and not frame.pinned

    def test_ghost_never_touches_the_disk(self):
        disk = build_disk()
        metas = page_metas(disk, ())
        reads_before = disk.stats.reads
        ghost = GhostCache(make_policy("LRU"), 3)
        for step in range(50):
            ghost.access(step % N_PAGES, step, metas[step % N_PAGES])
        assert disk.stats.reads == reads_before

    def test_meta_factory_called_only_on_miss(self):
        disk = build_disk()
        metas = page_metas(disk, ())
        ghost = GhostCache(make_policy("LRU"), 4)
        calls = 0

        def factory():
            nonlocal calls
            calls += 1
            return metas[0]

        assert ghost.access(0, 1, factory) is False
        assert calls == 1
        assert ghost.access(0, 2, factory) is True
        assert calls == 1                        # hit path never builds

    def test_reset_forgets_everything(self):
        disk = build_disk()
        metas = page_metas(disk, ())
        ghost = GhostCache(make_policy("LRU"), 4)
        for step in range(10):
            ghost.access(step % 6, step, metas[step % 6])
        ghost.reset()
        assert len(ghost) == 0
        assert ghost.stats.requests == 0


class TestPolicyHandoff:
    """switch_policy: a live hand-off that loses nothing."""

    @settings(max_examples=40, deadline=None)
    @given(
        traces,
        capacities,
        st.integers(min_value=0, max_value=149),
        st.sampled_from(("LRU", "LRU-2", "ASB", "MRU", "FIFO")),
    )
    def test_handoff_preserves_residency_and_accounting(
        self, trace, capacity, switch_at, target
    ):
        disk = build_disk()
        buffer = BufferManager(disk, capacity, make_policy("LRU"))
        for step, (page_id, _) in enumerate(trace):
            if step == switch_at:
                resident_before = set(buffer.frames)
                evictions_before = buffer.stats.evictions
                old = buffer.switch_policy(make_policy(target))
                assert old.name == "LRU"
                # Zero resident pages lost, none evicted, none copied.
                assert set(buffer.frames) == resident_before
                assert buffer.stats.evictions == evictions_before
            buffer.fetch(page_id)
        stats = buffer.stats
        assert stats.hits + stats.misses == stats.requests
        assert len(buffer.frames) <= capacity

    def test_switch_seeds_the_new_policy_with_residents(self):
        disk = build_disk()
        buffer = BufferManager(disk, 4, make_policy("LRU"))
        for page_id in range(4):
            buffer.fetch(page_id)
        buffer.switch_policy(make_policy("FIFO"))
        # The incoming policy must be able to pick victims for every
        # subsequent miss: residents were seeded, not dropped.
        for page_id in range(4, 12):
            buffer.fetch(page_id)
        assert len(buffer.frames) == 4
        assert buffer.stats.hits + buffer.stats.misses == buffer.stats.requests


def cyclic_controller(
    capacity: int = 4,
    epoch_length: int = 12,
    observer=None,
    **config_kwargs,
) -> tuple[BufferManager, TuningController]:
    """A live LRU buffer under a cyclic scan, with MRU as the candidate.

    The classic adversarial stream: cycling over ``capacity + 2`` pages
    gives LRU a 0 % hit-rate while MRU retains most of the loop — the
    controller has an unambiguous, deterministic reason to switch.
    """
    disk = build_disk()
    buffer = BufferManager(disk, capacity, make_policy("LRU"))
    config = TuningConfig(
        candidates=(Candidate(name="MRU", policy="MRU"),),
        epoch_length=epoch_length,
        hysteresis=0.01,
        patience=1,
        cooldown=0,
        **config_kwargs,
    )
    controller = TuningController(config, observer=observer)
    controller.attach_buffer(buffer, "LRU")
    return buffer, controller


class TestController:
    def test_switches_away_from_pathological_policy(self):
        recorder = TraceRecorder(kinds=("tune_epoch", "tune_switch"))
        buffer, controller = cyclic_controller(observer=recorder)
        for step in range(120):
            buffer.fetch(step % 6)
        assert controller.switches >= 1
        assert buffer.policy.name == "MRU"
        assert controller.live_name == "MRU"
        kinds = {event.kind for event in recorder.events}
        assert "tune_epoch" in kinds and "tune_switch" in kinds
        switch = next(e for e in recorder.events if e.kind == "tune_switch")
        assert switch.label == "MRU"
        assert switch.size == len(buffer.frames)   # resident at hand-off
        # Accounting survives the live switch.
        stats = buffer.stats
        assert stats.hits + stats.misses == stats.requests

    def test_allow_switch_false_observes_without_acting(self):
        buffer, controller = cyclic_controller(allow_switch=False)
        for step in range(120):
            buffer.fetch(step % 6)
        assert controller.switches == 0
        assert buffer.policy.name == "LRU"
        assert controller.epochs >= 1              # it did watch

    def test_control_ghost_is_prepended(self):
        _, controller = cyclic_controller()
        names = [ghost.name for ghost in controller.ghosts]
        assert names[0] == "LRU"                   # the live config shadows too
        assert "MRU" in names

    def test_snapshot_shape(self):
        buffer, controller = cyclic_controller()
        for step in range(30):
            buffer.fetch(step % 6)
        snapshot = controller.snapshot()
        for key in ("live", "policy", "accesses", "epochs", "retunes",
                    "switches", "ghosts", "last_epoch", "sample"):
            assert key in snapshot
        assert snapshot["accesses"] == 30
        for ghost_state in snapshot["ghosts"].values():
            assert set(ghost_state) == {"requests", "hit_ratio", "resident"}

    def test_sampling_feeds_ghosts_a_subset(self):
        buffer, controller = cyclic_controller(sample=0.5, epoch_length=1000)
        for step in range(200):
            buffer.fetch(step % 12)
        snapshot = controller.snapshot()
        ghost_requests = max(
            state["requests"] for state in snapshot["ghosts"].values()
        )
        assert 0 < ghost_requests < 200
        assert snapshot["ghost_capacity"] == 2     # round(4 * 0.5)

    def test_sharded_buffer_converges_after_a_switch(self):
        system = BufferSystem.build(
            policy="LRU",
            capacity=8,
            shards=2,
            tuning=TuningConfig(
                candidates=(Candidate(name="MRU", policy="MRU"),),
                epoch_length=16,
                hysteresis=0.01,
                patience=1,
                cooldown=0,
            ),
        )
        seed_disk = build_disk()
        for page_id in range(N_PAGES):
            system.disk.store(seed_disk.read(page_id))
        for step in range(400):
            system.buffer.fetch(step % 12)
        assert system.tuner.switches >= 1
        # Every shard manager converged on the adopted policy (the
        # deciding shard immediately, the rest on their next tapped access).
        for manager in system.buffer.shard_managers():
            assert manager.policy.name == "MRU"
        stats = system.stats_snapshot()
        assert stats["hits"] + stats["misses"] == stats["requests"]
        assert stats["tuning"]["live"] == "MRU"


class TestConfigAndCandidates:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TuningConfig(epoch_length=0)
        with pytest.raises(ValueError):
            TuningConfig(hysteresis=-0.1)
        with pytest.raises(ValueError):
            TuningConfig(patience=0)
        with pytest.raises(ValueError):
            TuningConfig(cooldown=-1)
        with pytest.raises(ValueError):
            TuningConfig(sample=0.0)
        with pytest.raises(ValueError):
            TuningConfig(sample=1.5)

    def test_default_candidates_for_parameter_free_policy(self):
        panel = default_candidates("LRU")
        names = [candidate.name for candidate in panel]
        assert "LRU" not in names                  # the live policy is excluded
        assert "LRU-2" in names and "ASB" in names
        for candidate in panel:
            candidate.build_policy()               # all buildable

    def test_default_candidates_prefers_param_variants(self):
        panel = default_candidates("ASB")
        assert any(candidate.retune for candidate in panel)
        for candidate in panel:
            if candidate.retune:
                assert candidate.policy == "ASB"
                key = next(iter(candidate.retune))
                assert policy_param_space("ASB")[key].retunable

    def test_candidate_variants_validates(self):
        panel = candidate_variants("ASB", {"step_fraction": [0.1, 0.5]})
        assert len(panel) == 2
        assert all(candidate.retune for candidate in panel)
        with pytest.raises(ValueError):
            candidate_variants("ASB", {"no_such_knob": [1]})
        with pytest.raises(ValueError):
            candidate_variants("LRU", {"k": [2]})

    def test_build_rejects_bad_tuning_argument(self):
        with pytest.raises(TypeError):
            BufferSystem.build(policy="LRU", capacity=8, tuning="yes please")

    def test_build_with_tuning_true_wires_a_controller(self):
        # ``tuning=True`` is the deprecated spelling of TuningSpec().
        with pytest.warns(DeprecationWarning, match="TuningSpec"):
            system = BufferSystem.build(policy="LRU", capacity=8, tuning=True)
        assert system.tuner is not None
        assert system.buffer.tuner is system.tuner
        assert "tuning" in system.stats_snapshot()

    def test_build_without_tuning_has_no_tap(self):
        system = BufferSystem.build(policy="LRU", capacity=8)
        assert system.tuner is None
        assert system.buffer.tuner is None
        assert "tuning" not in system.stats_snapshot()
