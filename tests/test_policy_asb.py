"""Tests for ASB, the adaptable spatial buffer (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.slru import SLRU
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def square_disk(areas):
    """Page i holds one square entry with the i-th area."""
    disk = SimulatedDisk()
    for page_id, area in enumerate(areas):
        side = area**0.5
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, side, side), payload=page_id))
        disk.store(page)
    return disk


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ASB(criterion="nope")
        with pytest.raises(ValueError):
            ASB(overflow_fraction=1.0)
        with pytest.raises(ValueError):
            ASB(overflow_fraction=-0.1)
        with pytest.raises(ValueError):
            ASB(candidate_fraction=0.0)
        with pytest.raises(ValueError):
            ASB(step_fraction=0.0)

    def test_capacity_split(self):
        policy = ASB(overflow_fraction=0.2)
        BufferManager(square_disk([1.0] * 20), 10, policy)
        assert policy.overflow_capacity == 2
        assert policy.main_capacity == 8

    def test_default_initial_candidate_is_quarter_of_main(self):
        policy = ASB(overflow_fraction=0.2, candidate_fraction=0.25)
        BufferManager(square_disk([1.0] * 30), 20, policy)
        assert policy.main_capacity == 16
        assert policy.candidate_size == 4

    def test_tiny_buffer_keeps_main_nonempty(self):
        policy = ASB(overflow_fraction=0.2)
        BufferManager(square_disk([1.0] * 5), 2, policy)
        assert policy.main_capacity >= 1


class TestTwoPartMechanics:
    def test_demotion_fills_overflow(self):
        # capacity 4, overflow 2, main 2 — and candidate set of 1 (pure LRU
        # demotion) to make the demotion order predictable.
        policy = ASB(overflow_fraction=0.5, candidate_fraction=0.01)
        buffer = BufferManager(square_disk([100.0, 1.0, 50.0, 2.0]), 4, policy)
        buffer.fetch(0)
        buffer.fetch(1)
        assert policy.main_size == 2
        assert policy.overflow_size == 0
        buffer.fetch(2)  # main full: LRU-oldest (0) demoted to overflow
        assert policy.overflow_ids() == [0]
        assert policy.main_size == 2
        buffer.fetch(3)
        assert policy.overflow_ids() == [0, 1]

    def test_true_eviction_is_overflow_fifo_head(self):
        policy = ASB(overflow_fraction=0.5, candidate_fraction=0.01)
        buffer = BufferManager(
            square_disk([100.0, 1.0, 50.0, 2.0, 7.0, 3.0]), 4, policy
        )
        for page_id in range(4):
            buffer.fetch(page_id)
        assert policy.overflow_ids() == [0, 1]
        buffer.fetch(4)  # buffer full: the FIFO head (page 0) leaves memory
        assert not buffer.contains(0)
        assert buffer.contains(1)
        buffer.fetch(5)
        assert not buffer.contains(1)

    def test_overflow_hit_counts_as_buffer_hit(self):
        """The overflow buffer is buffer memory: finding a page there must
        not cost a disk access."""
        policy = ASB(overflow_fraction=0.5, candidate_fraction=0.01)
        disk = square_disk([100.0, 1.0, 50.0, 2.0])
        buffer = BufferManager(disk, 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        reads_before = disk.stats.reads
        buffer.fetch(0)  # page 0 sits in the overflow buffer
        assert disk.stats.reads == reads_before
        assert buffer.stats.hits == 1

    def test_promotion_moves_page_to_main(self):
        policy = ASB(overflow_fraction=0.5, candidate_fraction=0.01)
        buffer = BufferManager(square_disk([100.0, 1.0, 50.0, 2.0]), 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        assert 0 in policy.overflow_ids()
        buffer.fetch(0)
        assert 0 not in policy.overflow_ids()
        assert policy.main_size == 2  # someone else was demoted to make room
        assert policy.overflow_size == 2

    def test_membership_partition_invariant(self):
        policy = ASB(overflow_fraction=0.4)
        buffer = BufferManager(square_disk([float(i + 1) for i in range(12)]), 5, policy)
        pattern = [0, 1, 2, 3, 4, 5, 2, 6, 0, 7, 8, 1, 9, 10, 3, 11, 4]
        for page_id in pattern:
            buffer.fetch(page_id)
            resident = set(buffer.frames)
            assert set(policy.overflow_ids()).issubset(resident)
            assert policy.main_size + policy.overflow_size == len(resident)
            assert len(buffer) <= 5


class TestAdaptation:
    def _buffer(self):
        """Build an ASB whose overflow holds [0 (area 50, old), 2 (area 1, new)].

        capacity 6 -> overflow 3, main 3; initial candidate set = 2 of 3;
        step = 1.  Demotions: with main = {0, 1, 2} full, loading 3 demotes
        the smaller of the two LRU-oldest {0, 1} -> page 0 (area 50);
        loading 4 demotes the smaller of {1, 2} -> page 2 (area 1).
        """
        policy = ASB(
            overflow_fraction=0.5,
            candidate_fraction=0.67,
            step_fraction=0.34,
        )
        disk = square_disk([50.0, 100.0, 1.0, 60.0, 70.0])
        buffer = BufferManager(disk, 6, policy)
        for page_id in range(5):
            buffer.fetch(page_id)
        assert policy.candidate_size == 2
        assert policy.overflow_ids() == [0, 2]
        return policy, buffer

    def test_spatial_mispredicted_shrinks_candidate_set(self):
        policy, buffer = self._buffer()
        # Hit page 2: the other overflow page (0) has a better (larger)
        # spatial criterion but a worse (older) LRU criterion -> case 1:
        # LRU looks more suitable, the candidate set shrinks.
        buffer.fetch(2)
        assert policy.candidate_size == 1

    def test_lru_mispredicted_grows_candidate_set(self):
        policy, buffer = self._buffer()
        # Hit page 0: the other overflow page (2) is more recent (better
        # LRU) but spatially smaller (worse criterion) -> case 2: the
        # spatial strategy looks more suitable, the candidate set grows.
        buffer.fetch(0)
        assert policy.candidate_size == 3

    def test_tie_keeps_candidate_set(self):
        # Make the other overflow page better on BOTH criteria: counts tie.
        policy = ASB(
            overflow_fraction=0.5, candidate_fraction=0.5, step_fraction=0.5
        )
        disk = square_disk([1.0, 100.0, 50.0, 2.0])
        buffer = BufferManager(disk, 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        assert policy.overflow_ids() == [0, 1]
        before = policy.candidate_size
        # Hit page 0: page 1 is newer (better LRU) AND larger (better
        # spatial) -> 1 == 1, no change.
        buffer.fetch(0)
        assert policy.candidate_size == before

    def test_candidate_size_clamped_to_bounds(self):
        policy, buffer = self._buffer()
        # Two shrinks in a row: the second one is clamped at 1.
        buffer.fetch(2)
        assert policy.candidate_size == 1
        overflow = policy.overflow_ids()
        # Promote whatever sits in overflow repeatedly; the knob must stay
        # within [1, main_capacity] regardless of direction.
        for _ in range(6):
            overflow = policy.overflow_ids()
            if not overflow:
                break
            buffer.fetch(overflow[-1])
            assert 1 <= policy.candidate_size <= policy.main_capacity

    def test_trace_records_adaptations(self):
        policy = ASB(
            overflow_fraction=0.5,
            candidate_fraction=1.0,
            step_fraction=0.5,
            record_trace=True,
        )
        buffer = BufferManager(square_disk([100.0, 1.0, 50.0, 2.0]), 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        buffer.fetch(1)
        assert policy.trace
        clock, size = policy.trace[-1]
        assert size == policy.candidate_size


class TestDegenerationAndReset:
    def test_zero_overflow_behaves_like_slru(self):
        areas = [9.0, 4.0, 25.0, 1.0, 16.0, 36.0, 2.0, 49.0]
        pattern = [0, 1, 2, 0, 3, 4, 1, 5, 2, 0, 6, 4, 3, 7, 5, 1]

        def run(policy):
            buffer = BufferManager(square_disk(areas), 4, policy)
            for page_id in pattern:
                buffer.fetch(page_id)
            return buffer.resident_ids(), buffer.stats.misses

        asb = ASB(overflow_fraction=0.0, candidate_fraction=0.25)
        slru = SLRU(candidate_fraction=0.25)
        assert run(asb) == run(slru)

    def test_no_state_for_evicted_pages(self):
        """Unlike LRU-K, ASB keeps nothing about pages that left memory."""
        policy = ASB(overflow_fraction=0.4)
        buffer = BufferManager(square_disk([float(i + 1) for i in range(30)]), 5, policy)
        for page_id in range(30):
            buffer.fetch(page_id)
        assert policy.main_size + policy.overflow_size == len(buffer)
        assert policy.main_size + policy.overflow_size <= 5

    def test_reset_restores_initial_knob(self):
        policy = ASB(
            overflow_fraction=0.5, candidate_fraction=0.67, step_fraction=0.34
        )
        buffer = BufferManager(
            square_disk([50.0, 100.0, 1.0, 60.0, 70.0]), 6, policy
        )
        for page_id in range(5):
            buffer.fetch(page_id)
        buffer.fetch(2)  # shrink (see TestAdaptation for the construction)
        assert policy.candidate_size == 1
        buffer.clear()
        assert policy.candidate_size == 2
        assert policy.main_size == 0
        assert policy.overflow_size == 0

    def test_pinned_pages_never_evicted(self):
        policy = ASB(overflow_fraction=0.4)
        buffer = BufferManager(square_disk([float(i + 1) for i in range(20)]), 5, policy)
        buffer.fetch(0)
        buffer.pin(0)
        for page_id in range(1, 20):
            buffer.fetch(page_id)
        assert buffer.contains(0)


class TestInstallDiscardIntegration:
    def test_installed_pages_join_the_main_part(self):
        policy = ASB(overflow_fraction=0.4)
        disk = square_disk([float(i + 1) for i in range(10)])
        buffer = BufferManager(disk, 5, policy)
        from repro.storage.page import Page, PageEntry, PageType
        from repro.geometry.rect import Rect

        fresh = Page(page_id=99, page_type=PageType.DATA)
        fresh.entries.append(PageEntry(mbr=Rect(0, 0, 2, 2), payload=99))
        disk.store(fresh)
        buffer.install(fresh)
        assert 99 not in policy.overflow_ids()
        assert policy.main_size + policy.overflow_size == len(buffer)

    def test_discard_cleans_policy_state(self):
        policy = ASB(overflow_fraction=0.5, candidate_fraction=0.01)
        disk = square_disk([100.0, 1.0, 50.0, 2.0])
        buffer = BufferManager(disk, 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        overflow_head = policy.overflow_ids()[0]
        buffer.discard(overflow_head)
        assert overflow_head not in policy.overflow_ids()
        assert policy.main_size + policy.overflow_size == len(buffer)
        # Buffer keeps operating normally afterwards.
        buffer.fetch(overflow_head)
        assert buffer.contains(overflow_head)
