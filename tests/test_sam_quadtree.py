"""Tests for the bucket quadtree."""

from __future__ import annotations

import random

import pytest

from repro.geometry.rect import Point, Rect
from repro.sam.quadtree import Quadtree
from repro.storage.page import PageType

SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def random_rects(n, seed, extent=0.04):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * extent, rng.random() * extent
        rects.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    return rects


def brute_window(rects, window):
    return sorted(i for i, rect in enumerate(rects) if rect.intersects(window))


class TestQuadtree:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Quadtree(SPACE, capacity=1)
        with pytest.raises(ValueError):
            Quadtree(SPACE, max_depth=0)

    def test_object_outside_space_rejected(self):
        tree = Quadtree(SPACE)
        with pytest.raises(ValueError):
            tree.insert(Rect(2.0, 2.0, 3.0, 3.0), 0)

    def test_window_query_matches_brute_force(self):
        rects = random_rects(400, seed=41)
        tree = Quadtree(SPACE, capacity=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        rng = random.Random(42)
        for _ in range(20):
            cx, cy = rng.random(), rng.random()
            window = Rect(
                max(0.0, cx - 0.1), max(0.0, cy - 0.1),
                min(1.0, cx + 0.1), min(1.0, cy + 0.1),
            )
            assert sorted(tree.window_query(window)) == brute_window(rects, window)

    def test_results_deduplicated(self):
        """An object replicated into several quadrants is reported once."""
        tree = Quadtree(SPACE, capacity=4)
        # A rectangle straddling the first subdivision boundary.
        straddler = Rect(0.45, 0.45, 0.55, 0.55)
        tree.insert(straddler, "straddler")
        for i in range(10):  # force subdivision
            tree.insert(Rect(0.1 + i * 0.01, 0.1, 0.1 + i * 0.01, 0.1), i)
        results = tree.window_query(Rect(0.0, 0.0, 1.0, 1.0))
        assert results.count("straddler") == 1

    def test_point_query(self):
        rects = random_rects(200, seed=43, extent=0.15)
        tree = Quadtree(SPACE, capacity=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        point = Point(0.4, 0.6)
        expected = sorted(
            i for i, rect in enumerate(rects) if rect.contains_point(point)
        )
        assert sorted(tree.point_query(point)) == expected

    def test_subdivision_creates_directory_pages(self):
        tree = Quadtree(SPACE, capacity=4)
        for i, rect in enumerate(random_rects(100, seed=44)):
            tree.insert(rect, i)
        stats = tree.stats()
        assert stats.directory_pages >= 1
        assert stats.data_pages >= 4
        assert stats.entry_count == 100

    def test_max_depth_caps_subdivision(self):
        tree = Quadtree(SPACE, capacity=4, max_depth=2)
        point_rect = Rect(0.1, 0.1, 0.1, 0.1)
        for i in range(50):  # identical points cannot be separated
            tree.insert(point_rect, i)
        # Depth never exceeds max_depth; the deepest leaf simply overflows.
        assert all(depth <= 2 for depth in tree._depths.values())
        assert sorted(tree.window_query(Rect(0.0, 0.0, 0.2, 0.2))) == list(range(50))

    def test_levels_encode_priority(self):
        """Deeper pages have lower levels (LRU-P priority) than the root."""
        tree = Quadtree(SPACE, capacity=4, max_depth=6)
        for i, rect in enumerate(random_rects(200, seed=45)):
            tree.insert(rect, i)
        root = tree.pagefile.disk.peek(tree.root_id)
        assert root.level == 6  # max_depth - 0
        for page_id in tree.all_page_ids():
            page = tree.pagefile.disk.peek(page_id)
            assert page.level <= root.level

    def test_directory_pages_partition_without_overlap(self):
        """The property the paper cites: quadtree directories partition the
        space completely and without overlap (so A == EA there)."""
        tree = Quadtree(SPACE, capacity=4)
        for i, rect in enumerate(random_rects(150, seed=46)):
            tree.insert(rect, i)
        for page_id in tree.all_page_ids():
            page = tree.pagefile.disk.peek(page_id)
            if page.page_type is not PageType.DIRECTORY:
                continue
            quadrants = page.entry_mbrs()
            assert len(quadrants) == 4
            total_area = sum(q.area for q in quadrants)
            region = tree._regions[page.page_id]
            assert total_area == pytest.approx(region.area)


class TestQuadtreeDeletion:
    def test_delete_removes_all_replicas(self):
        tree = Quadtree(SPACE, capacity=4)
        straddler = Rect(0.45, 0.45, 0.55, 0.55)
        tree.insert(straddler, "straddler")
        for i in range(20):  # force subdivisions so replicas exist
            tree.insert(Rect(0.1 + i * 0.01, 0.1, 0.1 + i * 0.01, 0.1), i)
        assert tree.delete(straddler, "straddler")
        assert "straddler" not in tree.window_query(Rect(0, 0, 1, 1))
        assert tree.entry_count == 20

    def test_delete_missing_returns_false(self):
        tree = Quadtree(SPACE, capacity=4)
        tree.insert(Rect(0.2, 0.2, 0.2, 0.2), 1)
        assert not tree.delete(Rect(0.9, 0.9, 0.9, 0.9), 99)
        assert tree.entry_count == 1

    def test_delete_then_query_matches_brute_force(self):
        rects = random_rects(200, seed=47)
        tree = Quadtree(SPACE, capacity=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for i in range(0, 200, 3):
            assert tree.delete(rects[i], i)
        survivors = sorted(set(range(200)) - set(range(0, 200, 3)))
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == survivors

    def test_reinsert_after_delete(self):
        tree = Quadtree(SPACE, capacity=4)
        rect = Rect(0.3, 0.3, 0.32, 0.32)
        tree.insert(rect, 7)
        assert tree.delete(rect, 7)
        tree.insert(rect, 7)
        assert tree.window_query(rect) == [7]


class TestQuadtreeViaBuffer:
    def test_buffered_inserts_match_plain(self):
        from repro.buffer.manager import BufferManager
        from repro.buffer.policies.lru import LRU

        rects = random_rects(200, seed=84)
        plain = Quadtree(SPACE, capacity=6)
        for i, rect in enumerate(rects):
            plain.insert(rect, i)

        buffered = Quadtree(SPACE, capacity=6)
        buffer = BufferManager(buffered.pagefile.disk, 5, LRU())
        with buffered.via(buffer):
            for i, rect in enumerate(rects):
                buffered.insert(rect, i)
        window = Rect(0.15, 0.15, 0.75, 0.75)
        assert sorted(buffered.window_query(window)) == sorted(
            plain.window_query(window)
        )

    def test_buffered_delete_matches_plain(self):
        from repro.buffer.manager import BufferManager
        from repro.buffer.policies.lru import LRU

        rects = random_rects(150, seed=85)
        trees = []
        for use_buffer in (False, True):
            tree = Quadtree(SPACE, capacity=6)
            for i, rect in enumerate(rects):
                tree.insert(rect, i)
            if use_buffer:
                buffer = BufferManager(tree.pagefile.disk, 5, LRU())
                with tree.via(buffer):
                    for i in range(0, 150, 4):
                        assert tree.delete(rects[i], i)
            else:
                for i in range(0, 150, 4):
                    assert tree.delete(rects[i], i)
            trees.append(tree)
        whole = Rect(0, 0, 1, 1)
        assert sorted(trees[0].window_query(whole)) == sorted(
            trees[1].window_query(whole)
        )
