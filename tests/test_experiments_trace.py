"""Tests for trace recording and trace-driven replay."""

from __future__ import annotations

import pytest

from repro.buffer.policies.asb import ASB
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.spatial import SpatialPolicy
from repro.experiments.harness import replay
from repro.experiments.trace import (
    AccessTrace,
    record_trace,
    replay_trace,
    trace_disk,
)


@pytest.fixture(scope="module")
def recorded(small_database_module):
    database = small_database_module
    query_set = database.query_set("S-W-100", 40)
    return database, query_set, record_trace(database.tree, query_set)


@pytest.fixture(scope="module")
def small_database_module(request):
    # Reuse the session fixture through the request to keep one build.
    return request.getfixturevalue("small_database")


class TestRecording:
    def test_trace_structure(self, recorded):
        database, query_set, trace = recorded
        assert len(trace) > 0
        assert trace.query_count == len(query_set)
        assert trace.distinct_pages <= database.page_count

    def test_every_reference_catalogued(self, recorded):
        _, _, trace = recorded
        for page_id, _ in trace.references:
            assert page_id in trace.catalogue

    def test_recording_does_not_touch_disk_stats(self, small_database):
        reads_before = small_database.tree.pagefile.disk.stats.reads
        record_trace(
            small_database.tree, small_database.query_set("U-P", 10)
        )
        assert small_database.tree.pagefile.disk.stats.reads == reads_before


class TestReplayFidelity:
    @pytest.mark.parametrize(
        "policy_factory",
        [LRU, lambda: LRUK(k=2), lambda: SpatialPolicy("A"), ASB],
        ids=["LRU", "LRU-2", "A", "ASB"],
    )
    def test_trace_replay_matches_live_run(self, recorded, policy_factory):
        """Trace-driven and live simulation must agree on every counter —
        the property that makes traces a valid experimental shortcut."""
        database, query_set, trace = recorded
        live = replay(database.tree, query_set, policy_factory(), 24).stats
        traced = replay_trace(trace, policy_factory(), 24)
        assert traced.misses == live.misses
        assert traced.hits == live.hits
        assert traced.requests == live.requests

    def test_replay_capacity_matters(self, recorded):
        _, _, trace = recorded
        small = replay_trace(trace, LRU(), 8)
        large = replay_trace(trace, LRU(), 64)
        assert large.misses <= small.misses


class TestPersistence:
    def test_roundtrip_dict(self, recorded):
        _, _, trace = recorded
        clone = AccessTrace.from_dict(trace.to_dict())
        assert clone.references == trace.references
        assert clone.catalogue == trace.catalogue

    def test_roundtrip_file(self, recorded, tmp_path):
        _, _, trace = recorded
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = AccessTrace.load(path)
        assert loaded.references == trace.references
        before = replay_trace(trace, LRU(), 16).misses
        after = replay_trace(loaded, LRU(), 16).misses
        assert before == after

    def test_trace_disk_rebuilds_pages(self, recorded):
        _, _, trace = recorded
        disk = trace_disk(trace)
        assert len(disk) == trace.distinct_pages
        sample_id = next(iter(trace.catalogue))
        page = disk.peek(sample_id)
        type_value, level, mbrs = trace.catalogue[sample_id]
        assert page.page_type.value == type_value
        assert page.level == level
        assert len(page.entries) == len(mbrs)

    def test_empty_trace(self):
        trace = AccessTrace()
        assert trace.query_count == 0
        stats = replay_trace(trace, LRU(), 4)
        assert stats.requests == 0
