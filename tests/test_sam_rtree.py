"""Tests for the Guttman R-tree (linear and quadratic splits)."""

from __future__ import annotations

import random

import pytest

from repro.geometry.rect import Point, Rect
from repro.sam.rtree import RTree


def random_rects(n, seed, extent=0.05):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * extent, rng.random() * extent
        rects.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    return rects


def brute_window(rects, window):
    return sorted(i for i, rect in enumerate(rects) if rect.intersects(window))


@pytest.fixture(params=["quadratic", "linear"])
def split_algorithm(request):
    return request.param


class TestRTree:
    def test_invalid_split_name_raises(self):
        with pytest.raises(ValueError):
            RTree(split="cubic")

    def test_never_reinserts(self):
        tree = RTree()
        assert tree.reinsert_fraction == 0.0

    def test_window_query_matches_brute_force(self, split_algorithm):
        rects = random_rects(400, seed=31)
        tree = RTree(max_dir_entries=8, max_data_entries=8, split=split_algorithm)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.validate()
        rng = random.Random(32)
        for _ in range(15):
            cx, cy = rng.random(), rng.random()
            window = Rect(
                max(0.0, cx - 0.1), max(0.0, cy - 0.1),
                min(1.0, cx + 0.1), min(1.0, cy + 0.1),
            )
            assert sorted(tree.window_query(window)) == brute_window(rects, window)

    def test_point_query(self, split_algorithm):
        rects = random_rects(200, seed=33, extent=0.2)
        tree = RTree(max_dir_entries=6, max_data_entries=6, split=split_algorithm)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        point = Point(0.5, 0.5)
        expected = sorted(
            i for i, rect in enumerate(rects) if rect.contains_point(point)
        )
        assert sorted(tree.point_query(point)) == expected

    def test_identical_rects_split_safely(self, split_algorithm):
        tree = RTree(max_dir_entries=4, max_data_entries=4, split=split_algorithm)
        rect = Rect(0.5, 0.5, 0.6, 0.6)
        for i in range(25):
            tree.insert(rect, i)
        tree.validate()
        assert sorted(tree.window_query(rect)) == list(range(25))

    def test_deletion_inherited(self, split_algorithm):
        rects = random_rects(150, seed=34)
        tree = RTree(max_dir_entries=6, max_data_entries=6, split=split_algorithm)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for i in range(0, 150, 3):
            assert tree.delete(rects[i], i)
        tree.validate()
        survivors = sorted(set(range(150)) - set(range(0, 150, 3)))
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == survivors

    def test_bulk_load_inherited(self):
        rects = random_rects(300, seed=35)
        tree = RTree(max_dir_entries=8, max_data_entries=8)
        tree.bulk_load([(r, i) for i, r in enumerate(rects)])
        tree.validate()
        window = Rect(0.2, 0.2, 0.7, 0.7)
        assert sorted(tree.window_query(window)) == brute_window(rects, window)

    def test_rstar_produces_no_worse_directory_overlap(self):
        """Sanity: R* split/reinsert should not produce *more* leaf-level
        overlap than Guttman on clustered data (their design goal)."""
        from repro.sam.rstar import RStarTree

        rng = random.Random(36)
        rects = []
        for _ in range(500):
            cx = rng.choice([0.2, 0.5, 0.8]) + rng.gauss(0, 0.03)
            cy = rng.choice([0.3, 0.7]) + rng.gauss(0, 0.03)
            rects.append(Rect(cx, cy, cx + 0.01, cy + 0.01))

        def leaf_overlap(tree):
            leaves = [
                tree.pagefile.disk.peek(pid).mbr()
                for pid in tree.all_page_ids()
                if tree.pagefile.disk.peek(pid).is_leaf
            ]
            total = 0.0
            for i in range(len(leaves)):
                for j in range(i + 1, len(leaves)):
                    total += leaves[i].intersection_area(leaves[j])
            return total

        guttman = RTree(max_dir_entries=8, max_data_entries=8, split="linear")
        rstar = RStarTree(max_dir_entries=8, max_data_entries=8)
        for i, rect in enumerate(rects):
            guttman.insert(rect, i)
            rstar.insert(rect, i)
        assert leaf_overlap(rstar) <= leaf_overlap(guttman) * 1.5
