"""Tests for the Hilbert curve and Hilbert-packed bulk loading."""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.hilbert import hilbert_to_xy, xy_to_hilbert
from repro.geometry.rect import Rect
from repro.sam.rstar import RStarTree

SPACE = Rect(0.0, 0.0, 1.0, 1.0)


class TestHilbertCurve:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_roundtrip(self, x, y):
        distance = xy_to_hilbert(x, y, bits=8)
        assert hilbert_to_xy(distance, bits=8) == (x, y)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_bijective_on_distances(self, distance):
        x, y = hilbert_to_xy(distance, bits=8)
        assert xy_to_hilbert(x, y, bits=8) == distance

    def test_curve_is_continuous(self):
        """Consecutive distances map to 4-adjacent grid cells — the locality
        property z-order lacks."""
        for distance in range(0, (1 << 8) - 1):
            x1, y1 = hilbert_to_xy(distance, bits=4)
            x2, y2 = hilbert_to_xy(distance + 1, bits=4)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_origin(self):
        assert xy_to_hilbert(0, 0, bits=8) == 0

    def test_better_locality_than_zorder(self):
        """Walking the curve, Hilbert never jumps spatially; the z-curve
        does (its quadrant-to-quadrant hops).  This is why Hilbert packing
        clusters pages better."""
        from repro.geometry.zorder import _deinterleave

        bits = 4
        hilbert_max_step = 0
        z_max_step = 0
        for distance in range((1 << (2 * bits)) - 1):
            hx1, hy1 = hilbert_to_xy(distance, bits)
            hx2, hy2 = hilbert_to_xy(distance + 1, bits)
            hilbert_max_step = max(
                hilbert_max_step, abs(hx1 - hx2) + abs(hy1 - hy2)
            )
            zx1, zy1 = _deinterleave(distance, bits), _deinterleave(distance >> 1, bits)
            zx2 = _deinterleave(distance + 1, bits)
            zy2 = _deinterleave((distance + 1) >> 1, bits)
            z_max_step = max(z_max_step, abs(zx1 - zx2) + abs(zy1 - zy2))
        assert hilbert_max_step == 1
        assert z_max_step > 1


class TestHilbertPacking:
    def _rects(self, n=400, seed=9):
        rng = random.Random(seed)
        rects = []
        for _ in range(n):
            x, y = rng.random(), rng.random()
            rects.append(Rect(x, y, min(x + 0.01, 1.0), min(y + 0.01, 1.0)))
        return rects

    def test_hilbert_bulk_load_correct(self):
        rects = self._rects()
        tree = RStarTree(max_dir_entries=8, max_data_entries=8)
        tree.bulk_load([(r, i) for i, r in enumerate(rects)], method="hilbert")
        tree.validate()
        window = Rect(0.2, 0.2, 0.6, 0.6)
        expected = sorted(
            i for i, rect in enumerate(rects) if rect.intersects(window)
        )
        assert sorted(tree.window_query(window)) == expected

    def test_invalid_method_raises(self):
        import pytest

        tree = RStarTree()
        with pytest.raises(ValueError):
            tree.bulk_load([(Rect(0, 0, 1, 1), 0)], method="peano")

    def test_identical_points_pack_safely(self):
        tree = RStarTree(max_dir_entries=6, max_data_entries=6)
        rect = Rect(0.5, 0.5, 0.5, 0.5)
        tree.bulk_load([(rect, i) for i in range(40)], method="hilbert")
        tree.validate()
        assert len(tree.window_query(rect)) == 40

    def test_packing_methods_similar_page_counts(self):
        rects = self._rects()
        items = [(r, i) for i, r in enumerate(rects)]
        str_tree = RStarTree(max_dir_entries=8, max_data_entries=8)
        str_tree.bulk_load(items, method="str")
        hilbert_tree = RStarTree(max_dir_entries=8, max_data_entries=8)
        hilbert_tree.bulk_load(items, method="hilbert")
        assert (
            abs(str_tree.stats().page_count - hilbert_tree.stats().page_count)
            <= 3
        )
