"""Tests of the shared benchmark metadata block and the tuning bench.

Every ``BENCH_*.json`` writer stamps the same ``meta`` block
(:func:`repro.experiments.benchmeta.run_metadata`), so results files are
attributable to a revision, a seed and a point in time.  The tuning
bench is smoke-run at miniature scale: the structural identities are
asserted, the wall-clock acceptance flags are not (they belong to the
full-size run).
"""

from __future__ import annotations

from repro.experiments.benchmeta import SCHEMA_VERSION, git_revision, run_metadata


class TestRunMetadata:
    def test_shape(self):
        meta = run_metadata(seed=42)
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["seed"] == 42
        assert isinstance(meta["git_rev"], str) and meta["git_rev"]
        assert meta["created_utc"].endswith("+00:00")
        assert "python" in meta and "platform" in meta

    def test_seed_omitted_when_none(self):
        assert "seed" not in run_metadata()

    def test_git_revision_is_stable(self):
        assert git_revision() == git_revision()

    def test_every_bench_report_carries_meta(self):
        from repro.experiments.concurrency import ContentionSweep
        from repro.experiments.walbench import WalBenchReport

        wal = WalBenchReport(
            steps=1, pages=1, capacity=1, page_size=512, seed=3
        )
        assert wal.to_dict()["meta"]["seed"] == 3
        sweep = ContentionSweep(
            capacity=8, queries_per_client=1, policy="LRU", seed=4
        )
        assert sweep.to_dict()["meta"]["seed"] == 4


class TestTuningBenchSmoke:
    def test_miniature_run_structure(self):
        from repro.experiments.tuningbench import run_tuning_bench

        report = run_tuning_bench(
            objects=1200,
            queries_per_phase=25,
            buffer_fraction=0.05,
            seed=3,
            epoch_length=40,
            read_latency_us=0.0,
            sample=1.0,
            overhead_reps=1,
        )
        data = report.to_dict()
        assert data["benchmark"] == "tuning"
        assert data["meta"]["seed"] == 3
        assert [run["label"] for run in data["static"]] == [
            "LRU", "LRU-2", "ASB"
        ]
        # Identity per run: phases partition the stream exactly.
        for run in (
            *report.static, report.shadow, report.adaptive, report.ensemble
        ):
            assert run is not None
            assert [score.phase for score in run.phases] == [
                "scan", "hotspot", "drift", "mixed"
            ]
            for score in run.phases:
                assert score.hits + score.misses == score.requests
        # The shadow run's live work is identical to the static start
        # policy's: same decisions, only the ghosts ride along.
        static_lru = report.static[0]
        assert report.shadow.overall_hit_ratio == static_lru.overall_hit_ratio
        verdict = data["acceptance"]
        assert set(verdict["per_phase"]) == {
            "scan", "hotspot", "drift", "mixed"
        }
        assert report.base_seconds > 0.0 and report.shadow_seconds > 0.0
        assert report.tuner["epochs"] >= 1
        # The ensemble rode along: its tuner ran in ensemble mode, its
        # overhead pair was timed, and the verdict carries its keys.
        assert report.ensemble_tuner["mode"] == "ensemble"
        assert report.ensemble_base_seconds > 0.0
        assert report.ensemble_shadow_seconds > 0.0
        for key in ("beats_every_static_overall", "ensemble_overall",
                    "ensemble_overhead_leq_10pct"):
            assert key in verdict
