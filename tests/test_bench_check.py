"""Tests of the bench regression gate (``bench check``).

The gate must hold three promises: a real regression (>10% on a counter
metric) fails loudly, *naming* the file and metric; benign wobble within
the tolerance passes; and schema drift (missing or renamed metrics)
produces a nameable error — never a bare ``KeyError``.  It must also
pass on the repository's own committed ``BENCH_*.json`` reports, because
that is exactly what CI runs.
"""

from __future__ import annotations

import json
import math
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.benchcheck import (
    BenchCheckError,
    Metric,
    _signed_relative,
    check_directory,
    compare_metrics,
    extract_report,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def wal_report(
    fsyncs=40,
    commits_per_fsync=4.0,
    seconds=0.5,
    records_redone=100,
    property_holds=True,
):
    """A minimal but schema-complete ``BENCH_wal.json`` payload."""
    return {
        "benchmark": "wal",
        "meta": {"schema_version": 1, "seed": 7},
        "group_commit": [
            {
                "group_window": 8,
                "commits": 160,
                "fsyncs": fsyncs,
                "seconds": seconds,
                "commits_per_fsync": commits_per_fsync,
            }
        ],
        "recovery": [
            {
                "checkpoint_interval": 0,
                "records_redone": records_redone,
                "seconds": 0.1,
                "property_holds": property_holds,
            }
        ],
    }


def write_report(directory: Path, payload, name="BENCH_wal.json") -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def dirs(tmp_path):
    return tmp_path / "committed", tmp_path / "candidate"


class TestRegressionDetection:
    def test_15pct_regression_fails_naming_the_metric(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report(fsyncs=40))
        write_report(candidate, wal_report(fsyncs=46))  # +15%, lower is better
        result = check_directory(str(committed), str(candidate))
        assert not result.ok
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert "BENCH_wal.json" in failure
        assert "group_commit[group_window=8].fsyncs" in failure
        assert "40" in failure and "46" in failure
        assert "lower is better" in failure

    def test_5pct_wobble_passes(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report(fsyncs=40, records_redone=100))
        write_report(candidate, wal_report(fsyncs=42, records_redone=95))
        result = check_directory(str(committed), str(candidate))
        assert result.ok, result.failures

    def test_higher_is_better_direction(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report(commits_per_fsync=4.0))
        # A 25% *increase* of a higher-is-better metric is an improvement.
        write_report(candidate, wal_report(commits_per_fsync=5.0))
        assert check_directory(str(committed), str(candidate)).ok
        # ... and a 25% drop is a regression.
        write_report(candidate, wal_report(commits_per_fsync=3.0))
        result = check_directory(str(committed), str(candidate))
        assert not result.ok
        assert "commits_per_fsync" in result.failures[0]
        assert "higher is better" in result.failures[0]

    def test_timing_metrics_skipped_by_default(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report(seconds=0.5))
        write_report(candidate, wal_report(seconds=5.0))  # 10x slower
        result = check_directory(str(committed), str(candidate))
        assert result.ok
        assert result.skipped_timing == 1
        gated = check_directory(
            str(committed), str(candidate), include_timing=True
        )
        assert not gated.ok
        assert "seconds" in gated.failures[0]

    def test_candidate_guard_violation_fails(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report())
        write_report(candidate, wal_report(property_holds=False))
        result = check_directory(str(committed), str(candidate))
        assert not result.ok
        assert "property_holds" in result.failures[0]

    def test_missing_candidate_file_fails(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report())
        candidate.mkdir()
        result = check_directory(str(committed), str(candidate))
        assert not result.ok
        assert "no such" in result.failures[0]


class TestSchemaDrift:
    def test_renamed_metric_is_a_named_error_not_keyerror(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report())
        broken = wal_report()
        broken["group_commit"][0]["fsync_count"] = broken["group_commit"][0].pop(
            "fsyncs"
        )
        write_report(candidate, broken)
        with pytest.raises(BenchCheckError) as excinfo:
            check_directory(str(committed), str(candidate))
        message = str(excinfo.value)
        assert "fsyncs" in message
        assert "BENCH_wal.json" in message

    def test_missing_section_in_committed_report(self, dirs):
        committed, _ = dirs
        broken = wal_report()
        del broken["recovery"]
        write_report(committed, broken)
        with pytest.raises(BenchCheckError, match="recovery"):
            check_directory(str(committed))

    def test_non_numeric_metric_is_a_named_error(self, dirs):
        committed, _ = dirs
        broken = wal_report()
        broken["group_commit"][0]["fsyncs"] = "forty"
        write_report(committed, broken)
        with pytest.raises(BenchCheckError, match="should be a number"):
            check_directory(str(committed))

    def test_invalid_json_is_a_named_error(self, tmp_path):
        committed = tmp_path / "committed"
        committed.mkdir()
        (committed / "BENCH_wal.json").write_text("{not json")
        with pytest.raises(BenchCheckError, match="invalid JSON"):
            check_directory(str(committed))

    def test_empty_directory_is_a_named_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(BenchCheckError, match="no BENCH_"):
            check_directory(str(empty))

    def test_unknown_report_is_noted_not_failed(self, tmp_path):
        committed = tmp_path / "committed"
        write_report(
            committed, {"benchmark": "mystery"}, name="BENCH_mystery.json"
        )
        result = check_directory(str(committed))
        assert result.ok
        assert any("no metric schema" in note for note in result.notes)


class TestRelativeChange:
    def test_zero_baseline_edge_cases(self):
        lower = Metric("m", 0.0, "lower")
        higher = Metric("m", 0.0, "higher")
        assert _signed_relative(lower, 0.0) == 0.0
        assert _signed_relative(lower, 5.0) == -math.inf  # worse
        assert _signed_relative(higher, 5.0) == math.inf  # better

    def test_compare_requires_matching_keys(self):
        baseline = [Metric("a.b", 1.0)]
        with pytest.raises(BenchCheckError, match="lacks metric 'a.b'"):
            compare_metrics("f.json", baseline, [Metric("a.c", 1.0)])


class TestCommittedReports:
    """The gate's day job: the repository's own BENCH_*.json files."""

    def test_validate_mode_passes_on_committed_files(self):
        result = check_directory(str(REPO_ROOT))
        assert result.ok, result.to_text()
        assert len(result.files) >= 4
        assert result.metrics_checked > 0
        assert result.guards_checked > 0

    def test_compare_mode_passes_against_identical_copies(self, tmp_path):
        candidate = tmp_path / "candidate"
        candidate.mkdir()
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            shutil.copy(path, candidate / path.name)
        result = check_directory(str(REPO_ROOT), str(candidate))
        assert result.ok, result.to_text()
        assert result.deltas  # counters actually compared
        assert all(delta.rel == 0.0 for delta in result.deltas)

    def test_every_committed_report_has_a_schema(self):
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            data = json.loads(path.read_text())
            assert extract_report(path.name, data) is not None, path.name


class TestCli:
    def test_cli_validate_passes_on_repo(self):
        assert main(["bench", "check", "--dir", str(REPO_ROOT)]) == 0

    def test_cli_exit_1_on_regression(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report(fsyncs=40))
        write_report(candidate, wal_report(fsyncs=50))
        code = main(
            [
                "bench", "check",
                "--dir", str(committed),
                "--candidate", str(candidate),
            ]
        )
        assert code == 1

    def test_cli_exit_2_on_unusable_input(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["bench", "check", "--dir", str(empty)]) == 2

    def test_cli_threshold_flag(self, dirs):
        committed, candidate = dirs
        write_report(committed, wal_report(fsyncs=40))
        write_report(candidate, wal_report(fsyncs=46))  # +15%
        args = [
            "bench", "check",
            "--dir", str(committed),
            "--candidate", str(candidate),
        ]
        assert main(args + ["--threshold", "0.2"]) == 0
        assert main(args + ["--threshold", "0.1"]) == 1
