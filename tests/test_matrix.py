"""Contract tests for the policy × index × workload matrix harness."""

from __future__ import annotations

import json

import pytest

from repro.experiments.benchcheck import extract_report
from repro.experiments.matrix import (
    MatrixParams,
    MatrixReport,
    _project_walk,
    run_matrix,
)
from repro.workloads.access_graph import clustered_graph, graph_walk

#: Small enough for the tier-1 suite, big enough to evict.
SMOKE = dict(
    n_objects=1_200,
    n_queries=48,
    graph_length=600,
    policies=("LRU", "ASB"),
    indexes=("rstar", "mqr"),
)


@pytest.fixture(scope="module")
def report() -> MatrixReport:
    return run_matrix(MatrixParams(**SMOKE))


class TestParams:
    def test_rejects_unknown_index(self):
        with pytest.raises(ValueError, match="index"):
            MatrixParams(indexes=("rstar", "btree"))

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="workload"):
            MatrixParams(workloads=("phased", "nope"))

    def test_rejects_empty_policies(self):
        with pytest.raises(ValueError):
            MatrixParams(policies=())

    def test_run_id_tracks_config(self):
        from repro.experiments.matrix import _run_id

        a = _run_id(MatrixParams())
        assert a == _run_id(MatrixParams())  # deterministic
        assert a != _run_id(MatrixParams(seed=8))


class TestProjectWalk:
    def test_covers_page_space_and_preserves_structure(self):
        walk = graph_walk(clustered_graph(3, 8), 200, seed=1)
        small = _project_walk(walk, list(range(100, 124)))
        assert len(small) == 200
        assert all(100 <= page_id < 124 for page_id in small)
        # Same node ⇒ same page: the projection is a function.
        mapping: dict[int, int] = {}
        for node, page_id in zip(walk.pages, small):
            assert mapping.setdefault(node, page_id) == page_id


class TestMatrixRun:
    def test_covers_every_cell(self, report):
        cells = {(run.index, run.policy) for run in report.runs}
        assert cells == {
            (index, policy)
            for index in SMOKE["indexes"]
            for policy in SMOKE["policies"]
        }
        for run in report.runs:
            assert set(run.workloads) == {"phased", "graph", "mainland"}

    def test_counters_are_live_and_consistent(self, report):
        for run in report.runs:
            assert run.overall.requests > 0
            assert run.accounting_ok
            assert run.overall.evictions > 0, (
                f"{run.index}/{run.policy}: buffer never filled — the "
                "matrix is not exercising replacement"
            )

    def test_indexes_answer_identically(self, report):
        assert report.agreement == {"rstar": True, "mqr": True}

    def test_counters_are_deterministic(self, report):
        """Same params ⇒ identical counters (wall-clock aside)."""
        again = run_matrix(MatrixParams(**SMOKE))
        ours = {
            (run.index, run.policy): (
                run.overall.requests,
                run.overall.hits,
                run.overall.disk_reads,
            )
            for run in report.runs
        }
        theirs = {
            (run.index, run.policy): (
                run.overall.requests,
                run.overall.hits,
                run.overall.disk_reads,
            )
            for run in again.runs
        }
        assert ours == theirs

    def test_acceptance_reflects_coverage(self, report):
        verdict = report.acceptance()
        assert verdict["at_least_2_indexes"]
        assert verdict["at_least_3_workloads"]
        assert not verdict["at_least_4_policies"]  # smoke runs only 2
        assert verdict["accounting_identity_holds"]
        assert verdict["indexes_agree_with_rstar"]


class TestReportSchema:
    def test_round_trips_through_json(self, report, tmp_path):
        path = tmp_path / "BENCH_matrix.json"
        report.save(path)
        data = json.loads(path.read_text())
        assert data["benchmark"] == "matrix"
        assert data["meta"]["run_id"] == report.run_id
        assert len(data["runs"]) == len(report.runs)
        assert {w["name"] for w in data["workloads"]} == set(report.workloads)

    def test_bench_check_extracts_it(self, report, tmp_path):
        """The committed-report gate must understand the schema."""
        path = tmp_path / "BENCH_matrix.json"
        report.save(path)
        data = json.loads(path.read_text())
        extracted = extract_report("BENCH_matrix.json", data)
        assert extracted is not None
        metrics, guards = extracted
        assert any(metric.key.endswith("hit_rate") for metric in metrics)
        # The smoke config intentionally fails the 4-policy coverage
        # guard; everything else holds.
        failing = {guard.key for guard in guards if not guard.ok}
        assert failing == {"acceptance.at_least_4_policies"}

    def test_to_text_mentions_every_cell(self, report):
        text = report.to_text()
        for run in report.runs:
            assert run.policy in text
            assert run.index in text
