"""Recovery and the crash property.

The centrepiece is the hypothesis property: for random durable update
streams and *every* crash point, recovery on the crashed media yields a
disk image bit-identical to replaying the committed (durable) log prefix
onto the base image.  A fixed-seed matrix over all crash points also runs
as a plain test so the full surface is exercised even under ``-k`` or
minimal hypothesis profiles.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.retry import RetryPolicy
from repro.wal.bytestore import MemoryByteStore
from repro.wal.crash import CRASH_POINTS
from repro.wal.durable import DurableDisk
from repro.wal.harness import (
    check_crash_property,
    crash_matrix,
    make_base_image,
    random_steps,
    run_stream,
)
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import recover, replay_durable_prefix

PAGE_SIZE = 512


class TestRecoveryBasics:
    def test_clean_shutdown_recovery_is_a_no_op_on_content(self):
        base = make_base_image(pages=8, seed=3, page_size=PAGE_SIZE)
        outcome = run_stream(base, random_steps(3, 40, 8), seed=3)
        assert not outcome.crashed
        result = check_crash_property(base, outcome)
        assert result.holds

    def test_recovery_is_idempotent(self):
        base = make_base_image(pages=8, seed=4, page_size=PAGE_SIZE)
        outcome = run_stream(
            base, random_steps(4, 60, 8), seed=4,
            crash_point="wal.fsync.torn", crash_after=1,
        )
        wal = WriteAheadLog(store=MemoryByteStore(outcome.wal_image))
        disk = DurableDisk.from_image(outcome.disk_image, page_size=PAGE_SIZE)
        recover(wal, disk)
        once = disk.image()
        recover(wal, disk)
        assert disk.image() == once

    def test_redo_starts_after_last_checkpoint(self):
        base = make_base_image(pages=8, seed=5, page_size=PAGE_SIZE)
        outcome = run_stream(
            base, random_steps(5, 120, 8), seed=5, checkpoint_interval=20,
        )
        wal = WriteAheadLog(store=MemoryByteStore(outcome.wal_image))
        disk = DurableDisk.from_image(outcome.disk_image, page_size=PAGE_SIZE)
        report = recover(wal, disk)
        assert report.checkpoints_seen >= 1
        assert report.redo_from_lsn > 0
        assert report.records_redone < report.records_scanned

    def test_recovery_retries_transient_failures(self):
        base = make_base_image(pages=4, seed=6, page_size=PAGE_SIZE)
        outcome = run_stream(
            base, random_steps(6, 30, 4), seed=6,
            crash_point="disk.write.torn",
        )
        wal = WriteAheadLog(store=MemoryByteStore(outcome.wal_image))
        disk = DurableDisk.from_image(outcome.disk_image, page_size=PAGE_SIZE)
        victim = next(r.page_id for r in wal.records() if r.page_id >= 0)
        disk.fail_transiently(victim, op="write", times=2)
        sleeps: list[float] = []
        recover(wal, disk, retry=RetryPolicy(), sleeper=sleeps.append)
        assert disk.image() == replay_durable_prefix(
            wal, base, page_size=PAGE_SIZE
        )
        assert len(sleeps) == 2


class TestCrashMatrix:
    def test_property_holds_at_every_crash_point(self):
        matrix = crash_matrix(seed=11, steps_count=150, base_pages=24)
        crashed = [
            point
            for point, result in matrix.results.items()
            if result.outcome.crashed
        ]
        assert matrix.all_hold, matrix.failing_points()
        # The matrix is only meaningful if the crashes actually fire.
        assert set(crashed) == set(CRASH_POINTS)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_property_across_seeds(self, seed):
        matrix = crash_matrix(seed=seed, steps_count=90, base_pages=16)
        assert matrix.all_hold, matrix.failing_points()


class TestCrashPropertyHypothesis:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        point=st.sampled_from(CRASH_POINTS),
        crash_after=st.integers(min_value=0, max_value=6),
        group_window=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovery_equals_durable_prefix_replay(
        self, seed, point, crash_after, group_window
    ):
        base = make_base_image(pages=12, seed=seed, page_size=PAGE_SIZE)
        steps = random_steps(seed, 70, 12)
        outcome = run_stream(
            base,
            steps,
            seed=seed,
            crash_point=point,
            crash_after=0 if point.startswith("checkpoint") else crash_after,
            group_window=group_window,
            checkpoint_interval=25,
        )
        result = check_crash_property(base, outcome)
        assert result.holds
