"""Cluster smoke test: concurrent clients against a live 3-node fleet.

The quick (~2 s) pass keeps tier-1 fast; the CI cluster-smoke job sets
``REPRO_CLUSTER_SMOKE_SECONDS`` to soak longer.  Whatever the length,
the assertions match the single-node smoke test, lifted to the fleet:
every routed operation succeeds, the summed accounting identity
``hits + misses == requests`` holds across all nodes (routing,
replication and the far tier only move *where* a page is served from),
no invalidation fails, and shutdown drains every node cleanly.
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro.api import ClusterSystem
from repro.experiments.servebench import make_seed_page

PAGE_SIZE = 512
PAGES = 96
CLIENTS = 4


def smoke_seconds() -> float:
    return float(os.environ.get("REPRO_CLUSTER_SMOKE_SECONDS", "2"))


def client_loop(
    fleet: ClusterSystem,
    seed: int,
    deadline: float,
    results: dict,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    operations = 0
    failures: list[str] = []
    try:
        with fleet.client(spread_reads=True) as client:
            while time.time() < deadline:
                roll = rng.random()
                try:
                    if roll < 0.70:
                        page_id = rng.randrange(PAGES)
                        page = client.fetch(page_id)
                        assert page.page_id == page_id
                    elif roll < 0.85:
                        page_ids = [
                            rng.randrange(PAGES) for _ in range(rng.randrange(2, 9))
                        ]
                        pages = client.fetch_many(page_ids)
                        assert [page.page_id for page in pages] == page_ids
                    elif roll < 0.97:
                        client.update(
                            make_seed_page(
                                rng.randrange(PAGES),
                                rng.randrange(1 << 20),
                                PAGE_SIZE,
                            )
                        )
                    else:
                        client.update_many(
                            [
                                make_seed_page(
                                    pid, rng.randrange(1 << 20), PAGE_SIZE
                                )
                                for pid in rng.sample(range(PAGES), 4)
                            ]
                        )
                    operations += 1
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append(f"{type(exc).__name__}: {exc}")
                    break
    except Exception as exc:  # noqa: BLE001 - collected below
        failures.append(f"client setup failed: {exc}")
    with lock:
        results["operations"] += operations
        results["failures"].extend(failures)


def test_cluster_smoke():
    fleet = ClusterSystem.build(
        nodes=3,
        replicas=1,
        far_buffer=128,
        capacity=24,
        page_size=PAGE_SIZE,
        replicate_after=2,
    )
    results = {"operations": 0, "failures": []}
    lock = threading.Lock()
    try:
        for page_id in range(PAGES):
            fleet.disk.store(make_seed_page(page_id, 0, PAGE_SIZE))
        deadline = time.time() + smoke_seconds()
        threads = [
            threading.Thread(
                target=client_loop,
                args=(fleet, 100 + index, deadline, results, lock),
            )
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        accounting = fleet.accounting()
        stats = fleet.node_stats()
    finally:
        fleet.close()

    assert results["failures"] == []
    assert results["operations"] > 0
    # The per-node identity survives summation across the fleet.
    assert accounting["hits"] + accounting["misses"] == accounting["requests"]
    node_blocks = [st["node"] for st in stats.values()]
    assert sum(block["invalidate_failures"] for block in node_blocks) == 0
    assert sum(block["forward_failures"] for block in node_blocks) == 0
    # Shutdown drained every node: nothing left in flight.
    for st in stats.values():
        assert st["admission"]["inflight"] == 0
