"""Tests for the dataset renderer and the buffer advisor."""

from __future__ import annotations

import pytest

from repro.buffer.policies.lru import LRU
from repro.datasets.render import density_map, query_map
from repro.experiments.advisor import (
    Advice,
    advise,
    advise_from_trace,
    knee_capacity,
)
from repro.experiments.trace import AccessTrace, record_trace


class TestDensityMap:
    def test_dimensions(self, small_dataset):
        rendered = density_map(small_dataset, columns=40, rows=12)
        lines = rendered.splitlines()
        assert len(lines) == 14  # 12 rows + 2 borders
        assert all(len(line) == 42 for line in lines)

    def test_water_is_blank_land_is_not(self, small_dataset_db2):
        rendered = density_map(small_dataset_db2, columns=60, rows=20)
        body = rendered.splitlines()[1:-1]
        # Eastern third of the map is water in the world-atlas stand-in.
        east = [line[41:61] for line in body]
        west = [line[1:41] for line in body]
        east_ink = sum(ch != " " for row in east for ch in row)
        west_ink = sum(ch != " " for row in west for ch in row)
        assert west_ink > 5 * max(east_ink, 1)

    def test_invalid_dimensions(self, small_dataset):
        with pytest.raises(ValueError):
            density_map(small_dataset, columns=1)

    def test_query_map_concentration(self, small_database):
        queries = small_database.query_set("INT-P", 200).queries
        rendered = query_map(queries, small_database.dataset.space, 40, 12)
        assert "@" in rendered  # a dense hotspot exists


class TestKneeCapacity:
    def test_finds_first_coverage_point(self):
        # 10 references; curve: misses at capacities 1..4.
        curve = [8, 5, 4, 4]
        # achievable hits = 6; 90% -> 5.4; capacity 2 gives 5 hits, 3 gives 6.
        assert knee_capacity(curve, 10, coverage=0.9) == 3
        assert knee_capacity(curve, 10, coverage=0.8) == 2

    def test_no_hits_returns_one(self):
        assert knee_capacity([5, 5, 5], 5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            knee_capacity([], 5)
        with pytest.raises(ValueError):
            knee_capacity([1], 5, coverage=0.0)


class TestAdvisor:
    def test_advise_on_real_workload(self, small_database):
        sample = small_database.query_set("S-W-100", 60)
        advice = advise(small_database.tree, sample)
        assert isinstance(advice, Advice)
        assert advice.recommended_capacity >= 1
        assert advice.recommended_policy in advice.policy_misses
        assert advice.opt_misses <= min(advice.policy_misses.values())
        assert advice.headroom >= 0.0

    def test_recommended_policy_is_the_miss_minimiser(self, small_database):
        sample = small_database.query_set("U-W-100", 60)
        advice = advise(small_database.tree, sample)
        best = min(advice.policy_misses.values())
        assert advice.policy_misses[advice.recommended_policy] == best

    def test_report_renders(self, small_database):
        sample = small_database.query_set("ID-P", 40)
        advice = advise(small_database.tree, sample)
        text = advice.to_text()
        assert "recommended policy" in text
        assert "OPT" in text

    def test_lru_always_among_candidates(self, small_database):
        sample = small_database.query_set("U-P", 30)
        advice = advise(small_database.tree, sample, candidates={"LRU": LRU})
        assert set(advice.policy_misses) == {"LRU"}

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            advise_from_trace(AccessTrace())

    def test_max_capacity_caps_curve(self, small_database):
        sample = small_database.query_set("U-W-100", 40)
        trace = record_trace(small_database.tree, sample)
        advice = advise_from_trace(trace, max_capacity=12)
        assert advice.recommended_capacity <= 12
        assert len(advice.miss_curve) == 12
