"""Tests for the cluster clients and the transport failure contract.

Two layers are pinned down here.  The transport layer
(:class:`AsyncPageClient` / :class:`PageClient`): when a pipelined
connection dies, *every* in-flight future must fail with the same typed
:class:`ConnectionLost` — no request may hang — and the synchronous
client must transparently reconnect through its
:class:`~repro.storage.retry.RetryPolicy` and replay.  The routing
layer (:class:`RoutingClient` / :class:`ClusterClient`): singles go to
the page's owner, batches fan out one request per owner touched, and
``spread_reads`` turns hot-page replicas into served reads.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.api import BufferSystem, ClusterSystem
from repro.client import (
    AsyncPageClient,
    ConnectionLost,
    PageClient,
)
from repro.experiments.servebench import _SlowDisk, make_seed_page
from repro.server import ServerThread
from repro.storage.retry import RetryPolicy

PAGE_SIZE = 512


def seeded_system(pages: int = 32, capacity: int = 8) -> BufferSystem:
    system = BufferSystem.build(
        policy="LRU", capacity=capacity, page_size=PAGE_SIZE
    )
    for page_id in range(pages):
        system.disk.store(make_seed_page(page_id, page_id, PAGE_SIZE))
    return system


class TestFailAllPending:
    def test_server_hangup_fails_every_pipelined_request(self):
        system = seeded_system()
        # Slow reads keep several requests in flight on one connection.
        system.buffer.disk = _SlowDisk(system.disk, 0.2)

        async def scenario(host: str, port: int) -> None:
            client = await AsyncPageClient.connect(
                host, port, page_size=PAGE_SIZE
            )
            try:
                fetches = [
                    asyncio.ensure_future(client.fetch(pid))
                    for pid in range(4)
                ]
                await asyncio.sleep(0.05)
                # An oversized length prefix makes the server hang up on
                # this connection with four responses still owed.
                client._writer.write(struct.pack("<I", 1 << 31))
                results = await asyncio.gather(
                    *fetches, return_exceptions=True
                )
                assert len(results) == 4
                assert all(
                    isinstance(result, ConnectionLost) for result in results
                )
                # The client is latched dead: later requests fail fast
                # instead of writing into a broken pipe.
                with pytest.raises(ConnectionLost):
                    await client.fetch(9)
            finally:
                await client.close()

        with ServerThread(system, page_size=PAGE_SIZE) as server:
            asyncio.run(scenario(server.host, server.port))
            # The server survives the malformed frame and the next
            # connection works.
            with PageClient(
                server.host, server.port, page_size=PAGE_SIZE
            ) as ok:
                assert ok.fetch(5).page_id == 5


class TestPageClientReconnect:
    def test_reconnects_and_replays_after_a_dead_transport(self):
        system = seeded_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            with PageClient(
                server.host,
                server.port,
                page_size=PAGE_SIZE,
                retry=RetryPolicy(attempts=3, base_delay_s=0.001),
            ) as client:
                assert client.fetch(1).page_id == 1
                first = client._client
                # Kill the transport under the client: the next call sees
                # ConnectionLost inside, reconnects, and replays.
                client._loop.call_soon_threadsafe(
                    first._writer.transport.abort
                )
                assert client.fetch(2).page_id == 2
                assert client._client is not first

    def test_exhausted_retries_surface_connection_lost(self):
        system = seeded_system()
        server = ServerThread(system, page_size=PAGE_SIZE)
        server.start()
        client = PageClient(
            server.host,
            server.port,
            page_size=PAGE_SIZE,
            retry=RetryPolicy(attempts=2, base_delay_s=0.001),
        )
        try:
            assert client.fetch(1).page_id == 1
            server.stop()
            with pytest.raises(ConnectionLost):
                client.fetch(2)
        finally:
            client.close()


def seeded_fleet(**kwargs) -> ClusterSystem:
    fleet = ClusterSystem.build(
        page_size=PAGE_SIZE, capacity=16, **kwargs
    )
    for page_id in range(64):
        fleet.disk.store(make_seed_page(page_id, page_id, PAGE_SIZE))
    return fleet


class TestRoutingClient:
    def test_bootstrap_adopts_the_fleet_map(self):
        with seeded_fleet(nodes=3) as fleet:
            with fleet.client() as client:
                cmap = client.cluster_map
                assert cmap.epoch == 0
                assert cmap.data_nodes == ("node-0", "node-1", "node-2")
                assert client.refresh_map() is False  # same epoch: no-op

    def test_singles_route_to_the_owner_without_forwarding(self):
        with seeded_fleet(nodes=3) as fleet:
            with fleet.client() as client:
                for page_id in range(48):
                    assert client.fetch(page_id).page_id == page_id
            stats = fleet.node_stats()
            assert all(
                node["node"]["forwards"] == 0 for node in stats.values()
            )
            # Every node served some of the keyspace directly.
            served = [
                node["server"]["op_counts"].get("FETCH", 0)
                for node in stats.values()
            ]
            assert all(count > 0 for count in served)
            assert sum(served) == 48

    def test_batches_fan_out_one_request_per_owner(self):
        with seeded_fleet(nodes=3) as fleet:
            page_ids = list(range(32))
            with fleet.client() as client:
                pages = client.fetch_many(page_ids)
                assert [page.page_id for page in pages] == page_ids
            stats = fleet.node_stats()
            batches = [
                node["server"]["op_counts"].get("FETCH_MANY", 0)
                for node in stats.values()
            ]
            # One FETCH_MANY per owner, never one per page.
            assert all(count == 1 for count in batches)
            assert all(
                node["server"]["op_counts"].get("FETCH", 0) == 0
                for node in stats.values()
            )

    def test_update_many_installs_at_the_owners(self):
        with seeded_fleet(nodes=3) as fleet:
            with fleet.client() as client:
                client.update_many(
                    [make_seed_page(pid, 1000 + pid, PAGE_SIZE) for pid in range(16)]
                )
                pages = client.fetch_many(list(range(16)))
                for pid, page in zip(range(16), pages):
                    expected = make_seed_page(pid, 1000 + pid, PAGE_SIZE)
                    assert (
                        page.entries[0].payload
                        == expected.entries[0].payload
                    )

    def test_spread_reads_serve_from_replicas(self):
        with seeded_fleet(nodes=3, replicas=1, replicate_after=2) as fleet:
            with fleet.client(spread_reads=True) as client:
                # Hammer a few pages hot enough to replicate, then keep
                # reading: the rotation must land some reads on replicas.
                for _ in range(12):
                    for page_id in range(4):
                        assert client.fetch(page_id).page_id == page_id
            stats = fleet.node_stats()
            pushes = sum(
                node["node"]["replica_pushes"] for node in stats.values()
            )
            hits = sum(
                node["node"]["replica_hits"] for node in stats.values()
            )
            assert pushes > 0
            assert hits > 0

    def test_stats_all_covers_every_node_including_far(self):
        with seeded_fleet(nodes=2, far_buffer=32) as fleet:
            with fleet.client() as client:
                stats = client.stats_all()
            assert sorted(stats) == ["far", "node-0", "node-1"]
            assert stats["far"]["node"]["is_far_node"] is True
            assert stats["far"]["node"]["far_capacity"] == 32
