"""Property tests for consistent-hash ownership (repro.cluster.ring).

The ring is the contract the whole cluster tier hangs off: every client
and server must compute the *same* owner for every page, the load must
stay balanced, and membership changes must move as few slots as
possible.  These are exactly the three properties pinned down here —
balance within budget, minimal remap on node add, and cross-process
determinism (the slot table is a pure function of the membership, never
of ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import (
    ClusterMap,
    HashRing,
    page_slot,
    stable_hash,
)

# A smaller slot space keeps ring construction cheap under hypothesis;
# the balance bounds hold by construction at any slot count >= nodes.
SLOTS = 1024

node_counts = st.integers(min_value=2, max_value=8)
vnode_counts = st.sampled_from([128, 192, 256])


def make_nodes(count: int) -> list[str]:
    return [f"node-{index}" for index in range(count)]


class TestBalance:
    @settings(max_examples=25, deadline=None)
    @given(count=node_counts, vnodes=vnode_counts)
    def test_max_load_within_1_3x_of_fair_share(self, count, vnodes):
        ring = HashRing(make_nodes(count), vnodes=vnodes, slots=SLOTS)
        loads = ring.load_by_node()
        fair = SLOTS / count
        assert max(loads.values()) <= 1.3 * fair
        assert min(loads.values()) >= fair / 1.3

    @settings(max_examples=25, deadline=None)
    @given(count=node_counts, vnodes=vnode_counts)
    def test_every_slot_is_owned_by_a_member(self, count, vnodes):
        nodes = make_nodes(count)
        ring = HashRing(nodes, vnodes=vnodes, slots=SLOTS)
        assert set(ring.slot_owner) <= set(nodes)
        assert sum(ring.load_by_node().values()) == SLOTS


class TestMinimalRemap:
    @settings(max_examples=20, deadline=None)
    @given(count=st.integers(min_value=2, max_value=7))
    def test_adding_a_node_moves_less_than_2_over_n_of_slots(self, count):
        before = HashRing(make_nodes(count), slots=SLOTS)
        after = HashRing(make_nodes(count + 1), slots=SLOTS)
        moved = sum(
            1
            for slot in range(SLOTS)
            if before.slot_owner[slot] != after.slot_owner[slot]
        )
        # An ideal consistent hash moves slots/(n+1); the bounded-load
        # and floor-fill passes may shuffle a little more, but never
        # anywhere near a full rehash.  Budget: twice the ideal.
        assert moved < 2 * SLOTS / (count + 1)

    @settings(max_examples=20, deadline=None)
    @given(count=st.integers(min_value=3, max_value=8))
    def test_removing_a_node_only_reassigns_its_own_slots_mostly(self, count):
        nodes = make_nodes(count)
        before = HashRing(nodes, slots=SLOTS)
        after = HashRing(nodes[:-1], slots=SLOTS)
        lost = nodes[-1]
        moved_from_survivors = sum(
            1
            for slot in range(SLOTS)
            if before.slot_owner[slot] != after.slot_owner[slot]
            and before.slot_owner[slot] != lost
        )
        # Slots owned by the departed node *must* move; survivor-owned
        # slots should mostly stay put (same 2/n churn budget).
        assert moved_from_survivors < 2 * SLOTS / count


class TestDeterminism:
    def test_identical_inputs_build_identical_tables(self):
        first = HashRing(make_nodes(5), slots=SLOTS)
        second = HashRing(list(reversed(make_nodes(5))), slots=SLOTS)
        assert first.slot_owner == second.slot_owner
        assert first.digest() == second.digest()

    def test_stable_hash_is_not_python_hash(self):
        # Pinned values: if these change, every deployed routing table
        # disagrees with every new one.
        assert stable_hash(b"page:0") == 0xE3A99DD57A1CD85D
        assert stable_hash(b"slot:0") == 0xCFEBFA33B0F0353C

    def test_digest_is_stable_across_processes(self):
        ring = HashRing(make_nodes(4), slots=SLOTS)
        src = Path(__file__).resolve().parents[1] / "src"
        script = (
            "from repro.cluster.ring import HashRing;"
            f"nodes = [f'node-{{i}}' for i in range(4)];"
            f"print(HashRing(nodes, slots={SLOTS}).digest())"
        )
        env = dict(os.environ, PYTHONPATH=str(src), PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == ring.digest()

    @settings(max_examples=50, deadline=None)
    @given(page_id=st.integers(min_value=0, max_value=2**40))
    def test_page_slot_in_range_and_deterministic(self, page_id):
        slot = page_slot(page_id, SLOTS)
        assert 0 <= slot < SLOTS
        assert slot == page_slot(page_id, SLOTS)


class TestPreference:
    @settings(max_examples=30, deadline=None)
    @given(
        count=st.integers(min_value=2, max_value=6),
        page_id=st.integers(min_value=0, max_value=10_000),
    )
    def test_preference_is_distinct_and_starts_with_the_owner(
        self, count, page_id
    ):
        ring = HashRing(make_nodes(count), slots=SLOTS)
        prefs = ring.preference(page_id, count)
        assert prefs[0] == ring.owner(page_id)
        assert len(prefs) == len(set(prefs)) == count


class TestValidation:
    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)
        with pytest.raises(ValueError):
            HashRing(["a", "b"], slots=1)
        with pytest.raises(ValueError):
            HashRing(["a"], balance=0.9)


class TestClusterMap:
    def build_map(self) -> ClusterMap:
        return ClusterMap.build(
            ["node-0", "node-1", "node-2"],
            replicas=1,
            far_node="far",
            slots=SLOTS,
        )

    def test_membership_changes_bump_the_epoch(self):
        base = self.build_map()
        grown = base.with_node("node-3", "127.0.0.1", 9999)
        shrunk = grown.without_node("node-3")
        assert (base.epoch, grown.epoch, shrunk.epoch) == (0, 1, 2)
        assert "node-3" in grown.nodes and "node-3" not in shrunk.nodes

    def test_far_node_owns_no_slots(self):
        cmap = self.build_map()
        assert cmap.far_node == "far"
        assert "far" not in cmap.data_nodes
        assert cmap.owned_slots("far") == 0
        assert sum(cmap.owned_slots(node) for node in cmap.data_nodes) == SLOTS

    def test_replica_nodes_exclude_the_owner(self):
        cmap = self.build_map()
        for page_id in range(64):
            owner = cmap.owner(page_id)
            replicas = cmap.replica_nodes(page_id)
            assert len(replicas) == 1
            assert owner not in replicas
            assert replicas[0] in cmap.data_nodes

    def test_json_round_trip_preserves_routing(self):
        cmap = self.build_map()
        clone = ClusterMap.from_json(cmap.to_json())
        assert clone == cmap
        assert clone.ring.digest() == cmap.ring.digest()
