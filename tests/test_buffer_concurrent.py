"""Tests for the thread-safe concurrent buffer service."""

from __future__ import annotations

import random
import threading

import pytest

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.asb import ASB
from repro.geometry.rect import Rect
from repro.obs.events import LockingSink, TraceRecorder
from repro.storage.disk import DiskError, SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def make_disk(n_pages=64):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


class GatedDisk(SimulatedDisk):
    """A disk whose reads block until released — to stage read races."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.reading = threading.Semaphore(0)

    def read(self, page_id):
        self.reading.release()  # announce: a reader has arrived
        assert self.gate.wait(timeout=10.0), "gate never opened"
        return super().read(page_id)


def run_threads(workers, timeout=30.0):
    """Start, join, and propagate the first worker exception."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn), daemon=True) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker deadlocked (join timed out)"
    if errors:
        raise errors[0]


class TestConstruction:
    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            ConcurrentBufferManager(make_disk(), 8, LRU, shards=0)

    def test_each_shard_needs_a_frame(self):
        with pytest.raises(ValueError):
            ConcurrentBufferManager(make_disk(), 2, LRU, shards=4)

    def test_capacity_split_over_shards(self):
        buffer = ConcurrentBufferManager(make_disk(), 10, LRU, shards=4)
        capacities = [mgr.capacity for mgr in buffer.shard_managers()]
        assert sum(capacities) == 10
        assert max(capacities) - min(capacities) <= 1

    def test_observer_is_lock_wrapped(self):
        recorder = TraceRecorder()
        buffer = ConcurrentBufferManager(
            make_disk(), 8, LRU, shards=2, observer=recorder
        )
        assert isinstance(buffer.observer, LockingSink)
        assert buffer.observer.inner is recorder


class TestSequentialEquivalence:
    """One shard, one thread: the service must be bit-identical to the
    plain BufferManager — the sharding seam must not change sequential
    policy behaviour."""

    def drive(self, buffer, seed=7):
        rng = random.Random(seed)
        for _ in range(40):
            with buffer.query_scope():
                for _ in range(rng.randrange(1, 6)):
                    buffer.fetch(rng.randrange(32))
            buffer.fetch(rng.randrange(32))  # uncorrelated singleton

    @pytest.mark.parametrize("policy_factory", [LRU, ASB])
    def test_same_events_and_stats_as_sequential_core(self, policy_factory):
        plain_recorder = TraceRecorder()
        plain = BufferManager(
            make_disk(), 8, policy_factory(), observer=plain_recorder
        )
        self.drive(plain)

        concurrent_recorder = TraceRecorder()
        concurrent = ConcurrentBufferManager(
            make_disk(), 8, policy_factory, shards=1,
            observer=concurrent_recorder,
        )
        self.drive(concurrent)

        assert concurrent_recorder.events == plain_recorder.events
        assert concurrent.stats.snapshot() == plain.stats.snapshot()
        assert concurrent.resident_ids() == plain.resident_ids()

    def test_sharded_preserves_totals(self):
        """Shard count changes *which* frames pages land in, never the
        request accounting identities."""
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=4)
        self.drive(buffer)
        stats = buffer.stats
        assert stats.hits + stats.misses == stats.requests
        assert stats.requests > 0


class TestAccounting:
    def test_basic_hit_miss(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)
        buffer.fetch(0)
        buffer.fetch(0)
        stats = buffer.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.requests == 2

    def test_multithreaded_counters_merge(self):
        buffer = ConcurrentBufferManager(make_disk(), 16, LRU, shards=4)

        def worker():
            for page_id in range(32):
                buffer.fetch(page_id)

        run_threads([worker] * 4)
        stats = buffer.stats
        assert stats.requests == 4 * 32
        assert stats.hits + stats.misses == stats.requests

    def test_clear_resets_merged_counters(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)
        buffer.fetch(0)
        buffer.clear()
        stats = buffer.stats
        assert stats.requests == 0
        assert buffer.coalesced_misses == 0
        assert len(buffer) == 0

    def test_stats_snapshot_includes_coalescing(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)
        buffer.fetch(0)
        snapshot = buffer.stats_snapshot()
        assert snapshot["coalesced"] == 0
        assert snapshot["requests"] == 1


class TestMissCoalescing:
    def test_concurrent_misses_share_one_read(self):
        disk = GatedDisk()
        for page_id in range(8):
            page = Page(page_id=page_id, page_type=PageType.DATA)
            disk.store(page)
        buffer = ConcurrentBufferManager(disk, 4, LRU, shards=1)
        n_threads = 6

        def worker():
            assert buffer.fetch(3).page_id == 3

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        # Wait until the loader has reached the disk, give the waiters a
        # moment to pile onto the in-flight entry, then open the gate.
        assert disk.reading.acquire(timeout=10.0)
        deadline = threading.Event()
        while buffer.coalesced_misses < n_threads - 1:
            if deadline.wait(timeout=0.01):  # pragma: no cover - just a sleep
                break
        disk.gate.set()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()

        assert disk.stats.reads == 1  # exactly one read for the group
        stats = buffer.stats
        assert stats.requests == n_threads
        assert stats.misses == 1
        assert stats.hits == n_threads - 1
        assert buffer.coalesced_misses == n_threads - 1

    def test_inflight_table_drains(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)

        def worker():
            for page_id in range(32):
                buffer.fetch(page_id)

        run_threads([worker] * 4)
        for shard in buffer._shards:
            assert shard.inflight == {}

    def test_failed_read_propagates_and_cleans_up(self):
        disk = make_disk(8)
        disk.fail_reads.add(5)
        buffer = ConcurrentBufferManager(disk, 8, LRU, shards=2)
        with pytest.raises(DiskError):
            buffer.fetch(5)
        for shard in buffer._shards:
            assert shard.inflight == {}
        # The service keeps working after the failure.
        assert buffer.fetch(1).page_id == 1

    def test_failed_read_wakes_waiters_with_the_error(self):
        disk = GatedDisk()
        page = Page(page_id=0, page_type=PageType.DATA)
        disk.store(page)
        disk.fail_reads.add(0)
        buffer = ConcurrentBufferManager(disk, 4, LRU, shards=1)
        outcomes = []

        def worker():
            try:
                buffer.fetch(0)
                outcomes.append("ok")
            except DiskError:
                outcomes.append("error")

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        assert disk.reading.acquire(timeout=10.0)
        disk.gate.set()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        # Every thread saw the failure: the loader directly, waiters (if
        # any piled up) through the in-flight entry, stragglers by
        # becoming loaders of their own failed read.
        assert outcomes == ["error"] * 3
        for shard in buffer._shards:
            assert shard.inflight == {}

    def test_install_racing_a_loader_leaves_no_chain_zombie(self):
        # install() goes straight through the shard lock and never consults
        # the in-flight table, so it can make a page resident while a miss
        # loader for the same id is off the lock reading disk.  The loader
        # must then serve the resident (newer) copy instead of admitting a
        # second frame — a double admit used to orphan the first frame
        # inside the recency chain, and the policy would later select it as
        # a victim that is no longer resident.
        disk = GatedDisk()
        for page_id in range(8):
            disk.store(Page(page_id=page_id, page_type=PageType.DATA))
        buffer = ConcurrentBufferManager(disk, 4, LRU, shards=1)
        results = []

        def loader():
            results.append(buffer.fetch(0))

        thread = threading.Thread(target=loader, daemon=True)
        thread.start()
        assert disk.reading.acquire(timeout=10.0)  # loader is inside read()
        installed = Page(page_id=0, page_type=PageType.DATA)
        installed.entries.append(
            PageEntry(mbr=Rect(0, 0, 1, 1), payload="installed")
        )
        buffer.install(installed)
        disk.gate.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()

        # The loader served the installed copy, not its stale disk read.
        assert results[0] is installed
        manager = buffer.shard_managers()[0]
        assert len(manager.frames) == 1
        assert sum(1 for _ in manager.frames.iter_recency()) == 1
        # Cycling the pool through many evictions used to hit
        # "policy selected page X, which is not resident" via the zombie.
        disk.gate.set()
        for _ in range(4):
            for page_id in range(8):
                buffer.fetch(page_id)
        assert len(manager.frames) == sum(
            1 for _ in manager.frames.iter_recency()
        )

    def test_concurrent_install_fetch_stress_never_corrupts_the_chain(self):
        # Randomized version of the race above, with an observer attached so
        # the shard cores run their decomposed (seamed) path.
        recorder = TraceRecorder()
        buffer = ConcurrentBufferManager(
            make_disk(48), 12, LRU, shards=1, observer=recorder
        )
        stop = threading.Event()
        errors = []

        def worker(seed):
            rng = random.Random(seed)

            def run():
                try:
                    while not stop.is_set():
                        page_id = rng.randrange(48)
                        if rng.random() < 0.3:
                            page = Page(
                                page_id=page_id, page_type=PageType.DATA
                            )
                            buffer.install(page)
                        else:
                            buffer.fetch(page_id)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return run

        threads = [
            threading.Thread(target=worker(seed), daemon=True)
            for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        stop.wait(timeout=1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        if errors:
            raise errors[0]
        manager = buffer.shard_managers()[0]
        assert len(manager.frames) == sum(
            1 for _ in manager.frames.iter_recency()
        )


class TestPinnedGuardConcurrent:
    def test_guard_keeps_page_resident_under_pressure(self):
        buffer = ConcurrentBufferManager(make_disk(), 4, LRU, shards=2)
        stop = threading.Event()

        def thrasher():
            rng = random.Random(1)
            while not stop.is_set():
                buffer.fetch(rng.randrange(64))

        thread = threading.Thread(target=thrasher, daemon=True)
        thread.start()
        try:
            for _ in range(50):
                with buffer.pinned(7) as page:
                    assert page.page_id == 7
                    assert buffer.contains(7)
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_guard_releases_on_exception(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)
        with pytest.raises(RuntimeError, match="boom"):
            with buffer.pinned(0):
                raise RuntimeError("boom")
        frame = buffer.shard_managers()[buffer.shard_of(0)].frames[0]
        assert frame.pin_count == 0


class TestQueryCorrelation:
    def test_same_scope_is_correlated(self):
        recorder = TraceRecorder(kinds=("hit",))
        buffer = ConcurrentBufferManager(
            make_disk(), 8, LRU, shards=2, observer=recorder
        )
        with buffer.query_scope():
            buffer.fetch(0)
            buffer.fetch(0)
        assert [event.correlated for event in recorder.events] == [True]

    def test_scopes_of_different_threads_never_correlate(self):
        recorder = TraceRecorder(kinds=("hit",))
        buffer = ConcurrentBufferManager(
            make_disk(), 8, LRU, shards=2, observer=recorder
        )
        with buffer.query_scope():
            buffer.fetch(0)  # miss: loads the page under this scope

        def other_client():
            with buffer.query_scope():
                buffer.fetch(0)  # hit, but in a different thread's scope

        run_threads([other_client])
        assert [event.correlated for event in recorder.events] == [False]

    def test_unscoped_requests_are_uncorrelated(self):
        recorder = TraceRecorder(kinds=("hit",))
        buffer = ConcurrentBufferManager(
            make_disk(), 8, LRU, shards=2, observer=recorder
        )
        buffer.fetch(0)
        buffer.fetch(0)
        assert [event.correlated for event in recorder.events] == [False]

    def test_scope_ids_are_process_unique(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)
        seen = []

        def client():
            for _ in range(50):
                with buffer.query_scope() as query_id:
                    seen.append(query_id)

        run_threads([client] * 4)
        assert len(seen) == len(set(seen)) == 200


class TestMaintenance:
    def test_install_and_discard(self):
        disk = make_disk()
        buffer = ConcurrentBufferManager(disk, 8, LRU, shards=2)
        new_page = Page(page_id=99, page_type=PageType.DATA)
        disk.store(new_page)
        buffer.install(new_page)
        assert buffer.contains(99)
        assert disk.stats.reads == 0
        buffer.discard(99)
        assert not buffer.contains(99)
        assert buffer.stats.evictions == 1

    def test_mark_dirty_and_flush(self):
        disk = make_disk()
        buffer = ConcurrentBufferManager(disk, 8, LRU, shards=2)
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.flush()
        assert disk.stats.writes == 1

    def test_clear_with_pins_raises_atomically(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=2)
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        with pytest.raises(BufferFullError):
            buffer.clear()
        assert buffer.contains(0) and buffer.contains(1)
        buffer.unpin(0)
        buffer.clear()
        assert len(buffer) == 0

    def test_resident_ids_spans_shards(self):
        buffer = ConcurrentBufferManager(make_disk(), 8, LRU, shards=4)
        for page_id in (0, 1, 2, 3):
            buffer.fetch(page_id)
        assert buffer.resident_ids() == [0, 1, 2, 3]


class TestStress:
    def test_8_threads_100k_fetches_no_deadlock(self):
        """The acceptance stress run: 8 threads, >=100k fetches, a small
        sharded buffer, skewed access — must terminate, keep the
        accounting identity, and issue exactly one disk read per
        coalesced miss group (disk reads == misses)."""
        n_pages = 512
        disk = make_disk(n_pages)
        buffer = ConcurrentBufferManager(disk, 64, LRU, shards=8)
        n_threads = 8
        per_thread = 12_500  # 8 x 12.5k = 100k requests

        def worker(seed):
            rng = random.Random(seed)
            def skewed():
                # 80% of requests in a hot eighth of the pages.
                if rng.random() < 0.8:
                    return rng.randrange(n_pages // 8)
                return rng.randrange(n_pages)
            remaining = per_thread
            while remaining:
                burst = min(remaining, rng.randrange(1, 8))
                with buffer.query_scope():
                    for _ in range(burst):
                        buffer.fetch(skewed())
                remaining -= burst

        run_threads(
            [lambda seed=seed: worker(seed) for seed in range(n_threads)],
            timeout=120.0,
        )
        stats = buffer.stats
        assert stats.requests == n_threads * per_thread
        assert stats.hits + stats.misses == stats.requests
        # Coalescing contract: only loaders touch the disk.
        assert disk.stats.reads == stats.misses
        for shard in buffer._shards:
            assert shard.inflight == {}


class TestUncoalescedMode:
    """``coalesce=False``: the ablation's one-off without the in-flight
    table.  Accounting must survive; the price is duplicated reads."""

    def test_concurrent_misses_each_read_the_disk(self):
        disk = GatedDisk()
        for page_id in range(8):
            page = Page(page_id=page_id, page_type=PageType.DATA)
            disk.store(page)
        buffer = ConcurrentBufferManager(
            disk, 4, LRU, shards=1, coalesce=False
        )
        n_threads = 4

        def worker():
            assert buffer.fetch(3).page_id == 3

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        # Wait for every thread to reach the disk — without coalescing
        # there is no in-flight entry to queue on — then open the gate.
        for _ in range(n_threads):
            assert disk.reading.acquire(timeout=10.0)
        disk.gate.set()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()

        assert disk.stats.reads == n_threads  # the duplicated-read price
        stats = buffer.stats
        assert stats.requests == n_threads
        assert stats.hits + stats.misses == stats.requests
        assert stats.misses == n_threads  # every racer accounted a miss
        assert buffer.coalesced_misses == 0

    def test_accounting_identity_under_contention(self):
        buffer = ConcurrentBufferManager(
            make_disk(), 8, LRU, shards=2, coalesce=False
        )

        def worker():
            for page_id in range(32):
                assert buffer.fetch(page_id % 16).page_id == page_id % 16

        run_threads([worker] * 4)
        stats = buffer.stats
        assert stats.requests == 4 * 32
        assert stats.hits + stats.misses == stats.requests
        assert buffer.coalesced_misses == 0
        # Races may duplicate reads, never lose them.
        assert buffer.disk.stats.reads >= stats.misses

    def test_failed_read_propagates_without_table(self):
        disk = make_disk(8)
        disk.fail_reads.add(5)
        buffer = ConcurrentBufferManager(disk, 8, LRU, shards=2, coalesce=False)
        with pytest.raises(DiskError):
            buffer.fetch(5)
        assert buffer.fetch(1).page_id == 1

    def test_sequential_results_match_coalesced_mode(self):
        pattern = [page_id % 12 for page_id in range(60)]
        coalesced = ConcurrentBufferManager(make_disk(), 6, LRU, shards=2)
        uncoalesced = ConcurrentBufferManager(
            make_disk(), 6, LRU, shards=2, coalesce=False
        )
        for page_id in pattern:
            assert coalesced.fetch(page_id).page_id == page_id
            assert uncoalesced.fetch(page_id).page_id == page_id
        # Without thread races the two modes are behaviourally identical.
        assert coalesced.stats.snapshot() == uncoalesced.stats.snapshot()
        assert (
            coalesced.disk.stats.reads == uncoalesced.disk.stats.reads
        )
