"""Invalidation correctness: replicated and far-buffered reads never go stale.

The protocol under test: an owner installs a write, stamps the new LSN,
and *synchronously* invalidates every registered replica holder and the
far node before acking the client.  A version a writer has seen acked is
therefore the floor for every later read of that page, anywhere in the
fleet.  The directed test drives one page through the
replicate → invalidate cycle and inspects the stores; the randomized
test hammers a small hot keyspace from concurrent writers and
spread-read readers and asserts the floor invariant on every single
read.
"""

from __future__ import annotations

import random
import threading

from repro.api import ClusterSystem
from repro.experiments.servebench import make_seed_page

PAGE_SIZE = 512


def seeded_fleet(**kwargs) -> ClusterSystem:
    fleet = ClusterSystem.build(page_size=PAGE_SIZE, **kwargs)
    for page_id in range(64):
        fleet.disk.store(make_seed_page(page_id, 0, PAGE_SIZE))
    return fleet


def payload_of(page) -> int:
    return page.entries[0].payload


def payload_of_blob_lsn(entry: tuple) -> int:
    """A replica-store entry's LSN (the store keeps ``(lsn, blob)``)."""
    return entry[0]


class TestDirectedInvalidation:
    def test_a_write_retires_every_replica_of_the_old_version(self):
        with seeded_fleet(
            nodes=3, replicas=1, capacity=16, replicate_after=2
        ) as fleet:
            with fleet.client(spread_reads=True) as client:
                # Heat page 0 until the owner pushes a replica.
                for _ in range(12):
                    client.fetch(0)
                stats = fleet.node_stats()
                assert (
                    sum(
                        node["node"]["replica_pushes"]
                        for node in stats.values()
                    )
                    > 0
                )
                # Write a new version; the ack means every old copy died.
                client.update(make_seed_page(0, 7, PAGE_SIZE))
                owner = fleet.cluster_map.owner(0)
                for node_id, thread in fleet.servers.items():
                    if node_id == owner:
                        continue
                    entry = thread.server.replica_store.get(0)
                    assert entry is None or payload_of_blob_lsn(entry) >= 1
                # Every subsequent read — rotated across owner and
                # replica — observes version 7 or newer.
                for _ in range(12):
                    assert payload_of(client.fetch(0)) >= 7

    def test_invalidations_are_acked_before_the_write_returns(self):
        with seeded_fleet(
            nodes=3, replicas=1, capacity=16, replicate_after=2
        ) as fleet:
            with fleet.client(spread_reads=True) as client:
                for _ in range(10):
                    client.fetch(1)
                for version in range(1, 6):
                    client.update(make_seed_page(1, version, PAGE_SIZE))
                    # The floor holds immediately after the ack.
                    assert payload_of(client.fetch(1)) >= version
            stats = fleet.node_stats()
            assert (
                sum(
                    node["node"]["invalidate_failures"]
                    for node in stats.values()
                )
                == 0
            )


class TestRandomizedNoStaleReads:
    PAGES = 24
    WRITERS = 2
    READERS = 3
    WRITES_PER_WRITER = 60

    def test_concurrent_writers_and_spread_readers_never_see_stale(self):
        fleet = seeded_fleet(
            nodes=3,
            replicas=1,
            far_buffer=64,
            capacity=max(8, self.PAGES // 4),
            replicate_after=2,
        )
        committed = [0] * self.PAGES
        stop = threading.Event()
        errors: list = []
        stale: list = []
        lock = threading.Lock()

        def writer(worker: int) -> None:
            rng = random.Random(worker)
            mine = [
                pid
                for pid in range(self.PAGES)
                if pid % self.WRITERS == worker
            ]
            try:
                with fleet.client() as client:
                    for _ in range(self.WRITES_PER_WRITER):
                        pid = rng.choice(mine)
                        version = committed[pid] + 1
                        client.update(
                            make_seed_page(pid, version, PAGE_SIZE)
                        )
                        # Publish only after the ack: the owner has
                        # already invalidated every copy of the old
                        # version, so the floor is now safe to raise.
                        committed[pid] = version
            except Exception as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append(exc)

        def reader(worker: int) -> None:
            rng = random.Random(1000 + worker)
            try:
                with fleet.client(spread_reads=True) as client:
                    while not stop.is_set():
                        pid = rng.randrange(self.PAGES)
                        floor = committed[pid]
                        version = payload_of(client.fetch(pid))
                        if version < floor:
                            with lock:
                                stale.append((pid, version, floor))
            except Exception as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append(exc)

        try:
            writers = [
                threading.Thread(target=writer, args=(index,))
                for index in range(self.WRITERS)
            ]
            readers = [
                threading.Thread(target=reader, args=(index,))
                for index in range(self.READERS)
            ]
            for thread in writers + readers:
                thread.start()
            for thread in writers:
                thread.join()
            stop.set()
            for thread in readers:
                thread.join()
            accounting = fleet.accounting()
        finally:
            fleet.close()
        assert not errors, f"soak worker failed: {errors[0]!r}"
        assert stale == [], f"stale reads observed: {stale[:5]}"
        assert (
            accounting["hits"] + accounting["misses"]
            == accounting["requests"]
        )
