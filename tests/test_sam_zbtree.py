"""Tests for the z-order B+-tree."""

from __future__ import annotations

import random

import pytest

from repro.geometry.rect import Point, Rect
from repro.sam.zbtree import ZBTree

SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def random_points(n, seed):
    rng = random.Random(seed)
    return [Point(rng.random(), rng.random()).as_rect() for _ in range(n)]


def brute_window(rects, window):
    return sorted(i for i, rect in enumerate(rects) if rect.intersects(window))


class TestZBTree:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZBTree(SPACE, max_entries=2)

    def test_empty_tree_queries(self):
        tree = ZBTree(SPACE)
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.point_query(Point(0.5, 0.5)) == []

    def test_insert_and_full_scan(self):
        rects = random_points(300, seed=51)
        tree = ZBTree(SPACE, max_entries=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.validate()
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == list(range(300))

    def test_window_query_matches_brute_force_for_points(self):
        rects = random_points(400, seed=52)
        tree = ZBTree(SPACE, max_entries=8, max_ranges=256)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        rng = random.Random(53)
        for _ in range(20):
            cx, cy = rng.random() * 0.8, rng.random() * 0.8
            window = Rect(cx, cy, cx + 0.2, cy + 0.2)
            assert sorted(set(tree.window_query(window))) == brute_window(
                rects, window
            )

    def test_bulk_load_equivalent_to_inserts(self):
        rects = random_points(200, seed=54)
        loaded = ZBTree(SPACE, max_entries=8)
        loaded.bulk_load([(r, i) for i, r in enumerate(rects)])
        loaded.validate()
        window = Rect(0.1, 0.1, 0.5, 0.5)
        inserted = ZBTree(SPACE, max_entries=8)
        for i, rect in enumerate(rects):
            inserted.insert(rect, i)
        assert sorted(loaded.window_query(window)) == sorted(
            inserted.window_query(window)
        )

    def test_bulk_load_on_nonempty_raises(self):
        tree = ZBTree(SPACE)
        tree.insert(Rect(0.5, 0.5, 0.5, 0.5), 0)
        with pytest.raises(RuntimeError):
            tree.bulk_load([(Rect(0.1, 0.1, 0.1, 0.1), 1)])

    def test_tree_grows_and_balances(self):
        rects = random_points(500, seed=55)
        tree = ZBTree(SPACE, max_entries=6)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.validate()
        stats = tree.stats()
        assert stats.height >= 3
        assert stats.directory_pages >= 1
        assert stats.entry_count == 500

    def test_entry_mbrs_are_real_geometry(self):
        """Inner entries carry subtree MBRs, so spatial criteria work."""
        rects = random_points(300, seed=56)
        tree = ZBTree(SPACE, max_entries=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        root = tree.pagefile.disk.peek(tree.root_id)
        assert not root.is_leaf
        for entry in root.entries:
            child = tree.pagefile.disk.peek(entry.child)
            assert entry.mbr.contains(child.mbr())

    def test_duplicate_keys_supported(self):
        tree = ZBTree(SPACE, max_entries=4)
        rect = Rect(0.3, 0.3, 0.3, 0.3)
        for i in range(20):
            tree.insert(rect, i)
        tree.validate()
        results = tree.window_query(Rect(0.25, 0.25, 0.35, 0.35))
        assert sorted(results) == list(range(20))


class TestZBTreeDeletion:
    def test_delete_removes_entry(self):
        rects = random_points(150, seed=57)
        tree = ZBTree(SPACE, max_entries=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        assert tree.delete(rects[10], 10)
        assert 10 not in tree.window_query(Rect(0, 0, 1, 1))
        assert tree.entry_count == 149
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree = ZBTree(SPACE, max_entries=8)
        tree.insert(Rect(0.5, 0.5, 0.5, 0.5), 1)
        assert not tree.delete(Rect(0.25, 0.75, 0.25, 0.75), 99)

    def test_delete_from_empty_tree(self):
        assert not ZBTree(SPACE).delete(Rect(0.1, 0.1, 0.1, 0.1), 0)

    def test_delete_many_then_query(self):
        rects = random_points(200, seed=58)
        tree = ZBTree(SPACE, max_entries=6)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for i in range(0, 200, 2):
            assert tree.delete(rects[i], i), i
        survivors = sorted(range(1, 200, 2))
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == survivors

    def test_duplicate_keys_delete_specific_payload(self):
        tree = ZBTree(SPACE, max_entries=4)
        rect = Rect(0.3, 0.3, 0.3, 0.3)
        for i in range(10):
            tree.insert(rect, i)
        assert tree.delete(rect, 5)
        remaining = sorted(tree.window_query(Rect(0.25, 0.25, 0.35, 0.35)))
        assert remaining == [0, 1, 2, 3, 4, 6, 7, 8, 9]


def random_boxes(n, seed, extent=0.06):
    import random as random_module

    rng = random_module.Random(seed)
    boxes = []
    for _ in range(n):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        w, h = rng.random() * extent, rng.random() * extent
        boxes.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    return boxes


class TestMultiCellMode:
    def test_extended_objects_found_off_centre(self):
        """The centre-keyed mode misses a window that avoids the centre
        cell; multi-cell mode finds it — the PROBE fix."""
        big = Rect(0.1, 0.1, 0.6, 0.6)
        corner_window = Rect(0.55, 0.55, 0.59, 0.59)  # far from the centre
        multi = ZBTree(SPACE, max_entries=8, multi_cell=True)
        multi.insert(big, 1)
        assert multi.window_query(corner_window) == [1]

    def test_window_query_matches_brute_force_for_boxes(self):
        boxes = random_boxes(200, seed=61)
        tree = ZBTree(SPACE, max_entries=8, multi_cell=True, max_ranges=256)
        for i, box in enumerate(boxes):
            tree.insert(box, i)
        import random as random_module

        rng = random_module.Random(62)
        for _ in range(15):
            cx, cy = rng.random() * 0.7, rng.random() * 0.7
            window = Rect(cx, cy, cx + 0.25, cy + 0.25)
            expected = sorted(
                i for i, box in enumerate(boxes) if box.intersects(window)
            )
            assert sorted(tree.window_query(window)) == expected

    def test_results_deduplicated(self):
        tree = ZBTree(SPACE, max_entries=8, multi_cell=True)
        tree.insert(Rect(0.2, 0.2, 0.8, 0.8), "wide")
        results = tree.window_query(Rect(0.0, 0.0, 1.0, 1.0))
        assert results == ["wide"]

    def test_entry_count_counts_objects_not_replicas(self):
        boxes = random_boxes(50, seed=63)
        tree = ZBTree(SPACE, max_entries=8, multi_cell=True)
        tree.bulk_load([(box, i) for i, box in enumerate(boxes)])
        assert tree.entry_count == 50

    def test_delete_removes_all_replicas(self):
        tree = ZBTree(SPACE, max_entries=8, multi_cell=True)
        big = Rect(0.1, 0.1, 0.7, 0.7)
        tree.insert(big, 1)
        tree.insert(Rect(0.05, 0.05, 0.05, 0.05), 2)
        assert tree.delete(big, 1)
        assert tree.window_query(Rect(0.0, 0.0, 1.0, 1.0)) == [2]
        assert tree.entry_count == 1

    def test_cells_per_object_validation(self):
        import pytest as pytest_module

        with pytest_module.raises(ValueError):
            ZBTree(SPACE, multi_cell=True, cells_per_object=0)

    def test_point_query_exact_for_extended_objects(self):
        tree = ZBTree(SPACE, max_entries=8, multi_cell=True)
        big = Rect(0.2, 0.2, 0.6, 0.6)
        tree.insert(big, 1)
        assert tree.point_query(Point(0.55, 0.25)) == [1]


class TestZBTreeViaBuffer:
    def test_buffered_inserts_match_plain(self):
        points = random_points(200, seed=83)
        plain = ZBTree(SPACE, max_entries=6)
        for i, rect in enumerate(points):
            plain.insert(rect, i)

        buffered = ZBTree(SPACE, max_entries=6)
        from repro.buffer.manager import BufferManager
        from repro.buffer.policies.lru import LRU

        buffer = BufferManager(buffered.pagefile.disk, 5, LRU())
        with buffered.via(buffer):
            for i, rect in enumerate(points):
                buffered.insert(rect, i)
        buffered.validate()
        window = Rect(0.1, 0.1, 0.8, 0.8)
        assert sorted(buffered.window_query(window)) == sorted(
            plain.window_query(window)
        )
