"""Golden traces driven by mqr-tree query workloads.

The existing golden fixtures (``tests/golden/{lru,asb,...}.jsonl``) pin
policy decisions on a hand-built synthetic page population.  These pin
them on the page-reference strings of a *real* spatial index: a
canonical mqr-tree is built from the streamed mainland dataset, a
mainland query workload is traced through it, and the resulting
reference string is recorded under LRU, ASB and the expert ensemble.
Any change to the mqr-tree's structure (node layout, insertion
placement, search order) or to the policies' decisions shows up as an
event-level diff against a checked-in JSON-lines file.

To regenerate after an *intentional* behaviour change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_mqr.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.buffer.policies import ASB, LRU, EnsemblePolicy
from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import us_mainland_like_stream
from repro.experiments.trace import AccessTrace, record_trace, trace_disk
from repro.obs import RecordedTrace, record_run, replay_recorded
from repro.sam.mqr import MqrTree
from repro.workloads.sets import make_query_set

GOLDEN_DIR = Path(__file__).parent / "golden"

CAPACITY = 24
N_OBJECTS = 1_500
N_QUERIES = 60
SEED = 11

GOLDEN_POLICIES = {
    "mqr_lru": LRU,
    "mqr_asb": lambda: ASB(overflow_fraction=0.25),
    "mqr_ensemble": lambda: EnsemblePolicy(experts=("LRU", "ASB", "AWRP")),
}


def canonical_tree() -> MqrTree:
    """The pinned mqr-tree: streamed mainland build, fixed seed."""
    stream = us_mainland_like_stream(
        n_objects=N_OBJECTS, seed=SEED, chunk_size=500
    )
    tree = MqrTree()
    for rect, object_id in stream.items():
        tree.insert(rect, object_id)
    return tree


def canonical_trace() -> AccessTrace:
    """The mainland query workload traced through the canonical tree."""
    stream = us_mainland_like_stream(n_objects=1, seed=SEED)
    places = synthetic_places(stream.skeleton, count=200, seed=SEED)
    queries = make_query_set(
        "S-W-100", stream.skeleton, places, N_QUERIES, SEED
    ).queries
    return record_trace(canonical_tree(), queries)


def record_canonical(name: str) -> RecordedTrace:
    trace = canonical_trace()
    return record_run(
        trace.references, trace_disk(trace), GOLDEN_POLICIES[name](), CAPACITY
    )


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.jsonl"


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name in GOLDEN_POLICIES:
            record_canonical(name).save(golden_path(name))


@pytest.mark.parametrize("name", sorted(GOLDEN_POLICIES))
class TestGoldenMqrTraces:
    def test_fixture_exists(self, name):
        assert golden_path(name).exists(), (
            f"missing fixture {golden_path(name)}; regenerate with "
            "REGEN_GOLDEN=1"
        )

    def test_recording_matches_fixture(self, name):
        """A fresh tree build + trace must reproduce the pinned events."""
        golden = RecordedTrace.load(golden_path(name))
        fresh = record_canonical(name)
        assert fresh.policy == golden.policy
        assert fresh.capacity == golden.capacity
        assert fresh.stats == golden.stats
        assert len(fresh.events) == len(golden.events)
        for position, (ours, theirs) in enumerate(
            zip(fresh.events, golden.events)
        ):
            assert ours == theirs, (
                f"{name}: event {position} diverged: {ours} != {theirs}"
            )

    def test_replay_reproduces_fixture(self, name):
        golden = RecordedTrace.load(golden_path(name))
        replayed = replay_recorded(golden, GOLDEN_POLICIES[name]())
        assert replayed.events == golden.events
        assert replayed.stats == golden.stats


class TestMqrTraceShape:
    def test_trace_touches_directory_and_data_pages(self):
        """The mqr reference string must exercise a multi-level descent —
        the structural property that distinguishes it from a flat scan."""
        trace = canonical_trace()
        levels = {level for _, (_, level, _) in trace.catalogue.items()}
        assert len(levels) >= 3  # root + interior + leaves

    def test_fixtures_exercise_eviction(self):
        for name in GOLDEN_POLICIES:
            golden = RecordedTrace.load(golden_path(name))
            assert golden.events_of("evict"), name
            assert golden.stats["requests"] == len(golden.requests()), name
