"""The canned "production day" trace: recorded once, replayed forever.

``tests/golden/production_day.jsonl`` is a :class:`RecordedTrace` whose
request stream was captured through the *live page server*: an mqr-tree
was built from the streamed mainland dataset, its query-derived page
sequences were partitioned across four concurrent ``PageClient``
threads, and the server-side buffer recorded the page references in
arrival order (``trace=True``).  The interleaving at capture time was
nondeterministic — that is the point: it is the kind of reference
string a production day produces, not one a generator would.  The
canonical fixture pins one such day; replaying it is fully
deterministic (logical clocks), so it doubles as a regression fixture
and as the ``bench matrix --replay`` leg.

To re-record a fresh production day (new interleaving, new fixture)::

    REGEN_PRODUCTION=1 PYTHONPATH=src python -m pytest tests/test_production_trace.py
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

import pytest

from repro.buffer.policies import make_policy
from repro.obs import RecordedTrace, replay_recorded
from repro.obs.trace import record_run

FIXTURE = Path(__file__).parent / "golden" / "production_day.jsonl"

PAGE_SIZE = 512
CLIENTS = 4
SEED = 19
N_OBJECTS = 2_000
N_QUERIES = 120
FIXTURE_CAPACITY = 32
FIXTURE_REQUESTS = 1_200
FIXTURE_POLICY = "ASB"


def _record_production_day() -> RecordedTrace:
    """Run one server session and canonicalise its arrival-order stream."""
    from repro.api import BufferSystem
    from repro.client import PageClient, RetryAfter
    from repro.datasets.places import synthetic_places
    from repro.datasets.synthetic import us_mainland_like_stream
    from repro.experiments.servebench import make_seed_page
    from repro.experiments.trace import record_trace
    from repro.sam.mqr import MqrTree
    from repro.server import ServerThread
    from repro.workloads.sets import make_query_set

    # The workload: mainland window queries traced through a streamed
    # mqr-tree build — each query yields one root-to-leaf page sequence.
    stream = us_mainland_like_stream(
        n_objects=N_OBJECTS, seed=SEED, chunk_size=500
    )
    tree = MqrTree()
    for rect, object_id in stream.items():
        tree.insert(rect, object_id)
    places = synthetic_places(stream.skeleton, count=200, seed=SEED)
    queries = make_query_set(
        "S-W-100", stream.skeleton, places, N_QUERIES, SEED
    ).queries
    access = record_trace(tree, queries)
    sequences: dict[int, list[int]] = {}
    for page_id, query in access.references:
        sequences.setdefault(query, []).append(page_id)
    ordered = [sequences[query] for query in sorted(sequences)]

    # The session: four clients each replay a strided share of the query
    # sequences against a live server whose buffer records every fetch.
    system = BufferSystem.build(
        policy=FIXTURE_POLICY,
        capacity=48,
        shards=2,
        durability=True,
        page_size=PAGE_SIZE,
        trace=True,
    )
    for page_id in tree.all_page_ids():
        system.disk.store(make_seed_page(page_id, page_id, PAGE_SIZE))

    def client_session(worker: int) -> None:
        with PageClient(server.host, server.port, page_size=PAGE_SIZE) as client:
            for position, sequence in enumerate(ordered[worker::CLIENTS]):
                for page_id in sequence:
                    while True:
                        try:
                            client.fetch(page_id)
                            break
                        except RetryAfter:
                            continue
                # A mixed session: every few queries the client writes
                # back one of the pages it just read, and periodically
                # asks for a durability point.
                if position % 5 == worker % 5:
                    page_id = sequence[-1]
                    while True:
                        try:
                            client.update(
                                make_seed_page(page_id, position, PAGE_SIZE)
                            )
                            break
                        except RetryAfter:
                            continue
                if position % 7 == 6:
                    client.commit()

    with ServerThread(
        system, max_inflight=16, max_queued=64, page_size=PAGE_SIZE
    ) as server:
        threads = [
            threading.Thread(target=client_session, args=(worker,))
            for worker in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # Canonicalise: the arrival-order fetch stream, catalogued against
    # the *index* pages (types/levels/MBRs), re-run under the fixture
    # policy so replaying the file is exactly deterministic.
    requests = [
        (event.page_id, event.query)
        for event in system.recorder.events
        if event.kind == "fetch"
    ][:FIXTURE_REQUESTS]
    system.close()
    return record_run(
        requests,
        tree.pagefile.disk,
        make_policy(FIXTURE_POLICY),
        FIXTURE_CAPACITY,
    )


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REGEN_PRODUCTION"):
        FIXTURE.parent.mkdir(exist_ok=True)
        _record_production_day().save(FIXTURE)


class TestProductionDayTrace:
    def test_fixture_exists_and_is_substantial(self):
        assert FIXTURE.exists(), (
            f"missing fixture {FIXTURE}; record one with REGEN_PRODUCTION=1"
        )
        trace = RecordedTrace.load(FIXTURE)
        assert trace.policy == FIXTURE_POLICY
        assert trace.capacity == FIXTURE_CAPACITY
        assert len(trace.requests()) >= 500
        # The stream must exercise a real index descent: directory and
        # data pages across at least three levels.
        levels = {level for _, level, _ in trace.catalogue.values()}
        assert len(levels) >= 3

    def test_replay_is_deterministic(self):
        """Same policy class + capacity reproduces events and stats
        exactly — the contract that makes the fixture a regression gate."""
        trace = RecordedTrace.load(FIXTURE)
        replayed = replay_recorded(trace, make_policy(trace.policy))
        assert replayed.events == trace.events
        assert replayed.stats == trace.stats

    def test_replay_twice_is_stable(self):
        trace = RecordedTrace.load(FIXTURE)
        first = replay_recorded(trace, make_policy(trace.policy))
        second = replay_recorded(trace, make_policy(trace.policy))
        assert first.events == second.events

    def test_counterfactual_replay_preserves_requests(self):
        """A different policy sees the same request stream (only the
        decisions change) and keeps the accounting identity."""
        trace = RecordedTrace.load(FIXTURE)
        replayed = replay_recorded(trace, make_policy("LRU"))
        assert replayed.requests() == trace.requests()
        stats = replayed.stats
        assert stats["hits"] + stats["misses"] == stats["requests"]

    def test_matrix_replay_leg_reads_the_fixture(self):
        """The ``bench matrix --replay`` leg consumes this fixture."""
        from repro.experiments.matrix import PRODUCTION_TRACE, replay_production

        assert Path(PRODUCTION_TRACE) == Path(
            "tests/golden/production_day.jsonl"
        )
        results = replay_production(str(FIXTURE), ("LRU", "ASB"))
        trace = RecordedTrace.load(FIXTURE)
        for metrics in results.values():
            assert metrics.requests == len(trace.requests())
            assert metrics.accounting_ok
