"""Tests for the experiment harness, reporting, and figure definitions."""

from __future__ import annotations

import pytest

from repro.buffer.policies.asb import ASB
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.spatial import SpatialPolicy
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    figure_14,
    make_setup,
)
from repro.experiments.harness import (
    BUFFER_FRACTIONS,
    buffer_capacity,
    build_database,
    compare_policies,
    gain,
    gains_vs_lru,
    replay,
)
from repro.experiments.report import format_gain, format_ratio, format_table


@pytest.fixture(scope="module")
def tiny_setup():
    return make_setup(
        n_objects_db1=2_000,
        n_objects_db2=1_500,
        n_places=150,
        n_queries=40,
        seed=5,
    )


class TestHarness:
    def test_build_database_has_places(self, small_dataset):
        database = build_database(small_dataset, n_places=50)
        assert len(database.places) == 50
        assert database.page_count > 10

    def test_buffer_capacity_fraction(self, small_database):
        pages = small_database.page_count
        assert buffer_capacity(small_database, 0.047) == max(8, round(0.047 * pages))

    def test_buffer_capacity_clamped_below(self, small_database):
        assert buffer_capacity(small_database, 0.0001) == 8

    def test_buffer_capacity_rejects_nonpositive(self, small_database):
        with pytest.raises(ValueError):
            buffer_capacity(small_database, 0.0)

    def test_paper_fractions(self):
        assert BUFFER_FRACTIONS[0] == 0.003
        assert BUFFER_FRACTIONS[-1] == 0.047

    def test_replay_counts_misses_as_disk_reads(self, small_database):
        query_set = small_database.query_set("U-W-100", 30)
        reads_before = small_database.tree.pagefile.disk.stats.reads
        buffer = replay(small_database.tree, query_set, LRU(), 32)
        reads = small_database.tree.pagefile.disk.stats.reads - reads_before
        assert buffer.stats.misses == reads
        assert buffer.stats.queries == 30

    def test_replay_is_reproducible(self, small_database):
        query_set = small_database.query_set("S-W-100", 30)
        a = replay(small_database.tree, query_set, LRU(), 32).stats.misses
        b = replay(small_database.tree, query_set, LRU(), 32).stats.misses
        assert a == b

    def test_query_set_cache_returns_same_object(self, small_database):
        a = small_database.query_set("U-P", 10, seed=3)
        b = small_database.query_set("U-P", 10, seed=3)
        assert a is b

    def test_gain_definition(self):
        assert gain(100, 80) == pytest.approx(0.25)
        assert gain(100, 125) == pytest.approx(-0.2)
        with pytest.raises(ValueError):
            gain(100, 0)

    def test_compare_policies_runs_each_factory(self, small_database):
        query_set = small_database.query_set("ID-P", 25)
        results = compare_policies(
            small_database.tree,
            query_set,
            {"LRU": LRU, "A": lambda: SpatialPolicy("A")},
            24,
        )
        assert set(results) == {"LRU", "A"}
        assert all(misses > 0 for misses in results.values())

    def test_gains_vs_lru_zero_for_lru_itself(self, small_database):
        query_set = small_database.query_set("U-P", 25)
        gains = gains_vs_lru(small_database.tree, query_set, {"LRU": LRU}, 24)
        assert gains["LRU"] == pytest.approx(0.0)

    def test_pin_top_levels(self, small_database):
        from repro.buffer.manager import BufferManager
        from repro.buffer.policies.lru import LRU
        from repro.experiments.harness import pin_top_levels

        tree = small_database.tree
        buffer = BufferManager(tree.pagefile.disk, 64, LRU())
        pinned = pin_top_levels(tree, buffer, 2)
        assert pinned >= 1
        root_frame = buffer.frames[tree.root_id]
        assert root_frame.pinned
        # Pinned pages survive arbitrary pressure.
        query_set = small_database.query_set("U-W-33", 20)
        for query in query_set:
            with buffer.query_scope():
                query.run(tree, buffer)
        assert buffer.contains(tree.root_id)

    def test_pin_top_levels_rejects_overflow(self, small_database):
        from repro.buffer.manager import BufferManager
        from repro.buffer.policies.lru import LRU
        from repro.experiments.harness import pin_top_levels

        buffer = BufferManager(small_database.tree.pagefile.disk, 8, LRU())
        with pytest.raises(ValueError):
            pin_top_levels(small_database.tree, buffer, 3)

    def test_bigger_buffer_never_hurts_lru(self, small_database):
        query_set = small_database.query_set("U-W-100", 40)
        small = replay(small_database.tree, query_set, LRU(), 16).stats.misses
        large = replay(small_database.tree, query_set, LRU(), 64).stats.misses
        assert large <= small


class TestReport:
    def test_format_gain(self):
        assert format_gain(0.253) == "+25.3%"
        assert format_gain(-0.05) == "-5.0%"

    def test_format_ratio(self):
        assert format_ratio(1.035) == "103.5%"

    def test_format_table_aligns(self):
        text = format_table(["a", "long"], [["xx", "1"], ["y", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])


class TestFigures:
    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_every_figure_runs_and_reports(self, name, tiny_setup):
        result = ALL_FIGURES[name](tiny_setup)
        assert isinstance(result, FigureResult)
        assert result.rows, f"{name} produced no rows"
        text = result.to_text()
        assert result.title in text
        for row in result.rows:
            assert len(row) == len(result.headers)

    def test_figure_14_trace_spans_all_phases(self, tiny_setup):
        result = figure_14(tiny_setup, queries_per_phase=30)
        trace = result.series["candidate_size"]
        assert len(trace) == 90
        assert all(size >= 1 for size in trace)
        assert len(result.rows) == 3

    def test_setup_database_lookup(self, tiny_setup):
        assert tiny_setup.database("db1") is tiny_setup.db1
        assert tiny_setup.database("db2") is tiny_setup.db2
        with pytest.raises(KeyError):
            tiny_setup.database("db3")


class TestRobustnessClaim:
    """The paper's headline: ASB never loses to LRU.  At tiny scale noise
    can flip single cells, so assert the aggregate instead of every cell."""

    def test_asb_mean_gain_nonnegative(self, tiny_setup):
        database = tiny_setup.db1
        total_lru = 0
        total_asb = 0
        for set_name in ("U-W-100", "ID-P", "S-W-100", "INT-W-100", "IND-P"):
            query_set = database.query_set(set_name, 40, tiny_setup.seed)
            capacity = buffer_capacity(database, 0.023)
            total_lru += replay(database.tree, query_set, LRU(), capacity).stats.misses
            total_asb += replay(database.tree, query_set, ASB(), capacity).stats.misses
        assert total_asb <= total_lru * 1.02
