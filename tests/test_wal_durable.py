"""Unit tests for the checksummed durable page store."""

from __future__ import annotations

import pytest

from repro.geometry.rect import Rect
from repro.storage.disk import DiskError, TransientDiskError
from repro.storage.page import Page, PageEntry, PageType
from repro.storage.serialization import encode_page
from repro.wal.crash import CrashError, CrashInjector
from repro.wal.durable import DurableDisk, TornPageError

PAGE_SIZE = 256


def make_page(page_id: int, payload: int = 0) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=payload)
    )
    return page


def full_page(page_id: int, marker: int) -> Page:
    """A page whose encoding differs from other markers across the whole
    slot — torn-write tests need the halves to actually diverge (a nearly
    empty page is all zero padding past the first entry, so a half-write
    of it is accidentally complete)."""
    from repro.storage.serialization import max_entries_for

    page = Page(page_id=page_id, page_type=PageType.DATA)
    for index in range(max_entries_for(PAGE_SIZE)):
        page.entries.append(
            PageEntry(
                mbr=Rect(0.0, 0.0, 1.0, 1.0),
                payload=marker * 10_000 + index,
            )
        )
    return page


class TestRoundTrip:
    def test_write_read_round_trip(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        disk.write(make_page(4, payload=42))
        page = disk.read(4)
        assert page.page_id == 4
        assert page.entries[0].payload == 42
        assert disk.stats.reads == 1 and disk.stats.writes == 1

    def test_mutating_a_read_page_does_not_change_the_medium(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        disk.store(make_page(1, payload=1))
        page = disk.read(1)
        page.entries[0] = PageEntry(mbr=Rect(0, 0, 1, 1), payload=99)
        assert disk.peek(1).entries[0].payload == 1

    def test_missing_page_raises(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        with pytest.raises(KeyError):
            disk.read(9)

    def test_delete_frees_the_slot(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        disk.store(make_page(2))
        disk.delete(2)
        assert 2 not in disk
        with pytest.raises(KeyError):
            disk.read(2)

    def test_restore_rejects_wrong_length(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        with pytest.raises(ValueError):
            disk.restore(0, b"short")

    def test_restore_places_raw_image(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        blob = encode_page(make_page(6, payload=5), PAGE_SIZE)
        disk.restore(6, blob)
        assert disk.peek(6).entries[0].payload == 5


class TestImages:
    def test_image_round_trip_preserves_pages(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        for page_id in range(5):
            disk.store(make_page(page_id, payload=page_id))
        clone = DurableDisk.from_image(disk.image(), page_size=PAGE_SIZE)
        assert clone.page_ids() == [0, 1, 2, 3, 4]
        assert clone.peek(3).entries[0].payload == 3

    def test_from_image_is_a_copy(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        disk.store(make_page(0))
        clone = DurableDisk.from_image(disk.image(), page_size=PAGE_SIZE)
        clone.delete(0)
        assert 0 in disk


class TestTornWrites:
    def test_torn_write_detected_on_read(self):
        crash = CrashInjector()
        disk = DurableDisk(page_size=PAGE_SIZE, crash=crash)
        disk.store(full_page(0, marker=1))
        crash.arm("disk.write.torn")
        with pytest.raises(CrashError):
            disk.write(full_page(0, marker=2))
        survivor = DurableDisk.from_image(disk.image(), page_size=PAGE_SIZE)
        with pytest.raises(TornPageError):
            survivor.read(0)

    def test_crash_before_write_leaves_old_content(self):
        crash = CrashInjector()
        disk = DurableDisk(page_size=PAGE_SIZE, crash=crash)
        disk.store(make_page(0, payload=1))
        crash.arm("disk.write.before")
        with pytest.raises(CrashError):
            disk.write(make_page(0, payload=2))
        survivor = DurableDisk.from_image(disk.image(), page_size=PAGE_SIZE)
        assert survivor.peek(0).entries[0].payload == 1


class TestFailureInjection:
    def test_permanent_failure(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        disk.store(make_page(0))
        disk.fail_reads = {0}
        with pytest.raises(DiskError):
            disk.read(0)

    def test_transient_failure_recovers(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        disk.store(make_page(0))
        disk.fail_transiently(0, op="read", times=2)
        for _ in range(2):
            with pytest.raises(TransientDiskError):
                disk.read(0)
        assert disk.read(0).page_id == 0
