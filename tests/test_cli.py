"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import POLICY_FACTORIES, main


class TestFigureCommand:
    def test_single_figure(self, capsys):
        code = main(
            ["figure", "14", "--objects", "2000", "--queries", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "candidate set" in out

    def test_unknown_figure(self, capsys):
        code = main(["figure", "99", "--objects", "2000"])
        assert code == 2
        assert "no such figure" in capsys.readouterr().err

    def test_zero_padded_number_accepted(self, capsys):
        code = main(["figure", "07", "--objects", "2000", "--queries", "20"])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out


class TestDatasetCommand:
    def test_describe_db1(self, capsys):
        assert main(["dataset", "db1", "--objects", "3000"]) == 0
        out = capsys.readouterr().out
        assert "us-mainland-like" in out
        assert "3000 objects" in out

    def test_describe_db2(self, capsys):
        assert main(["dataset", "db2", "--objects", "3000"]) == 0
        assert "world-atlas-like" in capsys.readouterr().out


class TestTraceAndReplay:
    def test_record_then_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--set",
                "U-W-100",
                "--out",
                str(trace_path),
                "--objects",
                "3000",
                "--queries",
                "30",
            ]
        )
        assert code == 0
        assert trace_path.exists()
        assert "recorded" in capsys.readouterr().out

        code = main(
            ["replay", str(trace_path), "--policy", "ASB", "--capacity", "24"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ASB @ 24 pages" in out
        assert "disk reads" in out

    def test_replay_all_policies_accepted(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(
            [
                "trace",
                "--out",
                str(trace_path),
                "--objects",
                "2000",
                "--queries",
                "15",
            ]
        )
        capsys.readouterr()
        for policy in sorted(POLICY_FACTORIES):
            assert (
                main(["replay", str(trace_path), "--policy", policy]) == 0
            ), policy
        assert capsys.readouterr().out.count("disk reads") == len(
            POLICY_FACTORIES
        )


class TestEventsCommand:
    def _record(self, tmp_path, policy="ASB"):
        path = tmp_path / "events.jsonl"
        code = main(
            [
                "events", "record",
                "--set", "S-W-100",
                "--policy", policy,
                "--capacity", "24",
                "--out", str(path),
                "--objects", "2000",
                "--queries", "20",
            ]
        )
        assert code == 0
        return path

    def test_record_writes_jsonl(self, tmp_path, capsys):
        path = self._record(tmp_path)
        out = capsys.readouterr().out
        assert "recorded" in out and "fetch=" in out
        first_line = path.read_text(encoding="utf-8").splitlines()[0]
        assert "repro-obs-trace" in first_line

    def test_replay_verifies_determinism(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["events", "replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "deterministic replay verified" in out
        assert "rolling hit ratio" in out
        assert "hit ratio by level" in out

    def test_replay_with_other_policy_is_counterfactual(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["events", "replay", str(path), "--policy", "LRU"]) == 0
        out = capsys.readouterr().out
        assert "LRU @ 24 pages" in out
        # Different policy: no determinism verdict is claimed.
        assert "deterministic replay" not in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entrypoint_importable(self):
        import repro.__main__  # noqa: F401


class TestAdviseCommand:
    def test_advise_on_recorded_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(
            [
                "trace",
                "--set",
                "S-W-100",
                "--out",
                str(trace_path),
                "--objects",
                "3000",
                "--queries",
                "40",
            ]
        )
        capsys.readouterr()
        assert main(["advise", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "recommended policy" in out
        assert "OPT" in out


class TestMapCommand:
    def test_render_dataset(self, capsys):
        assert main(["map", "db1", "--objects", "2000", "--width", "30",
                     "--height", "10"]) == 0
        out = capsys.readouterr().out
        assert "object density" in out
        assert out.count("|") >= 20  # borders of 10 rows

    def test_render_with_query_set(self, capsys):
        assert main(
            ["map", "db1", "--objects", "2000", "--set", "INT-P",
             "--queries", "50", "--width", "30", "--height", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "query density of INT-P" in out


class TestReproduceCommand:
    def test_figures_only_run(self, tmp_path, capsys):
        code = main(
            [
                "reproduce",
                "--out",
                str(tmp_path / "report"),
                "--objects",
                "2000",
                "--queries",
                "25",
                "--figures-only",
            ]
        )
        assert code == 0
        report = (tmp_path / "report" / "REPORT.md").read_text()
        assert "Figure 13" in report
        assert (tmp_path / "report" / "figure_14.txt").exists()
        out = capsys.readouterr().out
        assert "running figure_04" in out
