"""Tests of the phase-shifting workload generator.

The tuning subsystem's stressor must be deterministic (the golden digest
pins the exact query stream for a fixed seed), correctly labelled (the
spans partition the flat list), and actually phase-shifting (the phases
have measurably different locality).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.geometry.rect import Rect
from repro.workloads.phased import (
    PHASE_NAMES,
    hotspot_queries,
    mixed_queries,
    phased_workload,
    scan_queries,
)
from repro.workloads.queries import PointQuery, WindowQuery

SPACE = Rect(0.0, 0.0, 1.0, 1.0)

#: SHA-256 over the (type, region) stream of ``phased_workload(seed=0,
#: queries_per_phase=40)``.  Any change to the generators breaks every
#: recorded tuning trace, so it must be deliberate: update the digest in
#: the same commit and say why.
GOLDEN_DIGEST = "5f0232fa2ba4b8c0f647050690af852d416d09a396925197934208e2bc153e93"


def stream_digest(workload) -> str:
    digest = hashlib.sha256()
    for query in workload.queries:
        region = query.region
        digest.update(
            f"{type(query).__name__}:{region.x_min:.12f},{region.y_min:.12f},"
            f"{region.x_max:.12f},{region.y_max:.12f};".encode()
        )
    return digest.hexdigest()


class TestPhasedWorkload:
    def test_golden_digest(self):
        workload = phased_workload(SPACE, queries_per_phase=40, seed=0)
        assert stream_digest(workload) == GOLDEN_DIGEST

    def test_deterministic_per_seed(self):
        one = phased_workload(SPACE, queries_per_phase=30, seed=5)
        two = phased_workload(SPACE, queries_per_phase=30, seed=5)
        other = phased_workload(SPACE, queries_per_phase=30, seed=6)
        assert stream_digest(one) == stream_digest(two)
        assert stream_digest(one) != stream_digest(other)

    def test_spans_partition_the_stream(self):
        workload = phased_workload(SPACE, queries_per_phase=25, seed=1)
        assert [span.name for span in workload.spans] == list(PHASE_NAMES)
        cursor = 0
        for span in workload.spans:
            assert span.start == cursor
            assert span.count == 25
            cursor = span.end
        assert cursor == len(workload) == 100

    def test_phase_queries_lookup(self):
        workload = phased_workload(SPACE, queries_per_phase=10, seed=2)
        assert len(workload.phase_queries("drift")) == 10
        with pytest.raises(KeyError):
            workload.phase_queries("nonexistent")

    def test_phase_lengths_independent(self):
        # Phase seeds derive from (seed, phase index), not from how many
        # queries earlier phases consumed: the hotspot phase is identical
        # whether phases are 10 or 50 queries long.
        short = phased_workload(SPACE, queries_per_phase=10, seed=3)
        long = phased_workload(SPACE, queries_per_phase=50, seed=3)
        short_hot = short.phase_queries("hotspot")
        long_hot = long.phase_queries("hotspot")
        assert [q.region for q in short_hot] == [
            q.region for q in long_hot[: len(short_hot)]
        ]

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            phased_workload(SPACE, queries_per_phase=5, phases=("scan", "bogus"))
        with pytest.raises(ValueError):
            phased_workload(SPACE, queries_per_phase=0)


class TestPhaseGenerators:
    def test_scan_covers_the_space(self):
        queries = scan_queries(SPACE, 36)
        assert len(queries) == 36
        xs = {round(query.region.center.x, 6) for query in queries}
        ys = {round(query.region.center.y, 6) for query in queries}
        assert len(xs) > 1 and len(ys) > 1          # a 2-D sweep, not a line
        for query in queries:
            assert SPACE.contains(query.region)

    def test_hotspot_stays_hot(self):
        queries = hotspot_queries(SPACE, 50, seed=4)
        centers_x = [query.region.center.x for query in queries]
        centers_y = [query.region.center.y for query in queries]
        spread_x = max(centers_x) - min(centers_x)
        spread_y = max(centers_y) - min(centers_y)
        assert spread_x < 0.2 and spread_y < 0.2    # tight around one point

    def test_mixed_interleaves_query_types(self):
        queries = mixed_queries(SPACE, 60, seed=5)
        kinds = {type(query) for query in queries}
        assert kinds == {WindowQuery, PointQuery}

    def test_scan_rejects_empty(self):
        with pytest.raises(ValueError):
            scan_queries(SPACE, 0)
