"""Tests for the synthetic dataset and places generators."""

from __future__ import annotations

import pytest

from repro.datasets.places import synthetic_places
from repro.datasets.stats import describe
from repro.datasets.synthetic import (
    Dataset,
    us_mainland_like,
    us_mainland_like_stream,
    world_atlas_like,
)
from repro.geometry.rect import Rect


class TestUsMainlandLike:
    def test_deterministic_under_seed(self):
        a = us_mainland_like(n_objects=500, seed=3)
        b = us_mainland_like(n_objects=500, seed=3)
        assert a.rects == b.rects
        assert a.clusters == b.clusters

    def test_different_seeds_differ(self):
        a = us_mainland_like(n_objects=500, seed=3)
        b = us_mainland_like(n_objects=500, seed=4)
        assert a.rects != b.rects

    def test_object_count(self):
        assert len(us_mainland_like(n_objects=777, seed=1)) == 777

    def test_objects_inside_space(self):
        dataset = us_mainland_like(n_objects=1000, seed=5)
        for rect in dataset.rects:
            assert dataset.space.contains(rect)

    def test_extent_mix(self):
        dataset = us_mainland_like(
            n_objects=2000, seed=6, extended_fraction=0.3
        )
        stats = describe(dataset)
        assert 0.6 < stats.point_fraction < 0.8

    def test_objects_concentrate_on_land(self):
        """Objects live inside the mainland; corners stay empty."""
        dataset = us_mainland_like(n_objects=2000, seed=7)
        corner = Rect(0.0, 0.0, 0.05, 0.05)
        in_corner = sum(1 for r in dataset.rects if r.intersects(corner))
        assert in_corner == 0

    def test_clustering_creates_density_skew(self):
        """The densest cluster centre must hold far more objects than an
        average location — the property behind the intensified result."""
        dataset = us_mainland_like(n_objects=5000, seed=8)
        top = max(dataset.clusters, key=lambda c: c.weight)
        hot = Rect.from_center(top.center, 0.05, 0.05)
        hot_count = sum(1 for r in dataset.rects if hot.contains(r))
        expected_uniform = 5000 * hot.area / 0.55  # mainland ellipse area
        assert hot_count > 3 * expected_uniform

    def test_items_enumerates_ids(self):
        dataset = us_mainland_like(n_objects=10, seed=9)
        items = dataset.items()
        assert [payload for _, payload in items] == list(range(10))


class TestUsMainlandLikeStream:
    def test_stream_matches_monolithic(self):
        """Concatenated chunks are rect-for-rect the in-memory dataset."""
        dataset = us_mainland_like(n_objects=1200, seed=3)
        stream = us_mainland_like_stream(n_objects=1200, seed=3, chunk_size=199)
        items = list(stream.items())
        assert [rect for rect, _ in items] == dataset.rects
        assert [payload for _, payload in items] == list(range(1200))

    def test_chunk_sizes(self):
        stream = us_mainland_like_stream(n_objects=10, seed=9, chunk_size=4)
        assert [len(chunk) for chunk in stream] == [4, 4, 2]

    def test_skeleton_supports_places(self):
        """The rect-free skeleton still powers the places generator (and
        thus the S/INT/IND query families) for streamed builds."""
        stream = us_mainland_like_stream(n_objects=1, seed=2, chunk_size=1)
        places = synthetic_places(stream.skeleton, count=50, seed=4)
        assert len(places) == 50
        assert stream.skeleton.rects == []

    def test_skeleton_frame_matches_monolithic(self):
        dataset = us_mainland_like(n_objects=100, seed=6)
        stream = us_mainland_like_stream(n_objects=100, seed=6)
        assert stream.skeleton.clusters == dataset.clusters
        assert stream.skeleton.land == dataset.land
        assert stream.skeleton.space == dataset.space

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            us_mainland_like_stream(n_objects=0)
        with pytest.raises(ValueError):
            us_mainland_like_stream(n_objects=5, chunk_size=0)


class TestWorldAtlasLike:
    def test_deterministic_under_seed(self):
        a = world_atlas_like(n_objects=500, seed=3)
        b = world_atlas_like(n_objects=500, seed=3)
        assert a.rects == b.rects

    def test_mostly_water(self):
        """The defining property: most of the space holds no objects."""
        dataset = world_atlas_like(n_objects=3000, seed=4)
        stats = describe(dataset)
        assert stats.land_coverage < 0.45

    def test_mirror_of_land_is_mostly_water(self):
        """x-flipping a continent location should usually land in water —
        the mechanism behind the paper's independent-distribution result."""
        dataset = world_atlas_like(n_objects=2000, seed=5)
        hits = 0
        for rect in dataset.rects[:500]:
            mirrored = rect.flipped_x(0.0, 1.0)
            if any(land.intersects(mirrored) for land in dataset.land):
                hits += 1
        assert hits < 350  # clearly fewer than "all"

    def test_extended_fraction_higher_than_db1(self):
        db1 = describe(us_mainland_like(n_objects=1000, seed=1))
        db2 = describe(world_atlas_like(n_objects=1000, seed=1))
        assert db2.point_fraction < db1.point_fraction


class TestPlaces:
    def test_deterministic(self, small_dataset):
        a = synthetic_places(small_dataset, count=100, seed=5)
        b = synthetic_places(small_dataset, count=100, seed=5)
        assert a == b

    def test_count_and_population_bounds(self, small_dataset):
        places = synthetic_places(small_dataset, count=150, seed=6)
        assert len(places) == 150
        assert all(place.population >= 100 for place in places)

    def test_populations_zipf_like(self, small_dataset):
        places = synthetic_places(small_dataset, count=200, seed=7)
        populations = sorted((p.population for p in places), reverse=True)
        # Top place dominates; the tail is shallow.
        assert populations[0] > 10 * populations[50]

    def test_intensified_weight_is_sqrt(self, small_dataset):
        place = synthetic_places(small_dataset, count=10, seed=8)[0]
        assert place.weight_intensified == pytest.approx(place.population**0.5)

    def test_places_inside_space(self, small_dataset):
        for place in synthetic_places(small_dataset, count=200, seed=9):
            assert small_dataset.space.contains_point(place.location)

    def test_big_places_sit_in_heavy_clusters(self, small_dataset):
        """Population correlates with cluster weight (density)."""
        places = synthetic_places(small_dataset, count=300, seed=10)
        clusters = small_dataset.clusters

        def nearest_weight(place):
            return min(
                clusters,
                key=lambda c: c.center.distance_to(place.location),
            ).weight

        by_population = sorted(places, key=lambda p: p.population, reverse=True)
        top_weight = sum(nearest_weight(p) for p in by_population[:30]) / 30
        bottom_weight = sum(nearest_weight(p) for p in by_population[-30:]) / 30
        assert top_weight > bottom_weight

    def test_dataset_without_clusters_raises(self):
        bare = Dataset(name="bare", space=Rect(0, 0, 1, 1), rects=[])
        with pytest.raises(ValueError):
            synthetic_places(bare)


class TestDescribe:
    def test_empty_dataset_raises(self):
        bare = Dataset(name="bare", space=Rect(0, 0, 1, 1), rects=[])
        with pytest.raises(ValueError):
            describe(bare)

    def test_str_rendering(self, small_dataset):
        text = str(describe(small_dataset))
        assert "objects" in text
        assert small_dataset.name in text
