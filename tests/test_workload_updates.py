"""Tests for update streams and buffered index maintenance (via-mode)."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.experiments.harness import replay_mixed
from repro.geometry.rect import Rect
from repro.sam.rstar import RStarTree
from repro.workloads.distributions import uniform_queries
from repro.workloads.queries import Query, WindowQuery
from repro.workloads.updates import (
    Delete,
    Insert,
    Move,
    UpdateOp,
    interleave,
    moving_objects_stream,
    update_stream,
)


@pytest.fixture()
def small_mutable_tree(small_dataset):
    tree = RStarTree(max_dir_entries=12, max_data_entries=12)
    tree.bulk_load(small_dataset.items())
    return tree


class TestUpdateStream:
    def test_deterministic(self, small_dataset):
        a = update_stream(small_dataset, 100, seed=3)
        b = update_stream(small_dataset, 100, seed=3)
        assert a == b

    def test_length_and_op_mix(self, small_dataset):
        ops = update_stream(
            small_dataset, 300, seed=4, insert_fraction=0.4, delete_fraction=0.3
        )
        assert len(ops) == 300
        inserts = sum(1 for op in ops if isinstance(op, Insert))
        deletes = sum(1 for op in ops if isinstance(op, Delete))
        moves = sum(1 for op in ops if isinstance(op, Move))
        assert inserts + deletes + moves == 300
        assert 60 < inserts < 180
        assert 30 < deletes < 150
        assert moves > 30

    def test_invalid_fractions_raise(self, small_dataset):
        with pytest.raises(ValueError):
            update_stream(small_dataset, 10, insert_fraction=0.8, delete_fraction=0.5)
        with pytest.raises(ValueError):
            update_stream(small_dataset, 10, insert_fraction=-0.1)

    def test_replay_is_consistent(self, small_dataset, small_mutable_tree):
        """Deletes and moves always target live objects."""
        ops = update_stream(small_dataset, 400, seed=5)
        for op in ops:
            op.apply(small_mutable_tree)  # KeyError would fail the test
        small_mutable_tree.validate()

    def test_moving_stream_is_pure_moves(self, small_dataset):
        ops = moving_objects_stream(small_dataset, 50, seed=6)
        assert all(isinstance(op, Move) for op in ops)

    def test_moves_stay_in_space(self, small_dataset):
        ops = moving_objects_stream(small_dataset, 200, seed=7)
        for op in ops:
            assert small_dataset.space.contains(op.new_mbr)

    def test_delete_missing_object_raises(self, small_mutable_tree):
        op = Delete(mbr=Rect(0.9, 0.9, 0.91, 0.91), payload=999_999)
        with pytest.raises(KeyError):
            op.apply(small_mutable_tree)


class TestInterleave:
    def test_preserves_relative_order(self, small_dataset, unit_space):
        queries = uniform_queries(unit_space, 20, ex=100, seed=8)
        updates = update_stream(small_dataset, 20, seed=9)
        merged = interleave(queries, updates, seed=10)
        assert len(merged) == 40
        assert [q for q in merged if isinstance(q, Query)] == queries
        assert [u for u in merged if isinstance(u, UpdateOp)] == updates

    def test_deterministic(self, small_dataset, unit_space):
        queries = uniform_queries(unit_space, 10, ex=100, seed=8)
        updates = update_stream(small_dataset, 10, seed=9)
        assert interleave(queries, updates, seed=1) == interleave(
            queries, updates, seed=1
        )


class TestViaMode:
    def test_updates_through_buffer_charge_accesses(self, small_dataset):
        tree = RStarTree(max_dir_entries=12, max_data_entries=12)
        tree.bulk_load(small_dataset.items())
        buffer = BufferManager(tree.pagefile.disk, 24, LRU())
        ops = update_stream(small_dataset, 50, seed=11)
        with tree.via(buffer):
            for op in ops:
                with buffer.query_scope():
                    op.apply(tree)
        assert buffer.stats.requests > 0
        assert buffer.stats.misses > 0

    def test_updates_dirty_pages(self, small_dataset):
        tree = RStarTree(max_dir_entries=12, max_data_entries=12)
        tree.bulk_load(small_dataset.items())
        buffer = BufferManager(tree.pagefile.disk, 24, LRU())
        with tree.via(buffer):
            tree.insert(Rect(0.5, 0.5, 0.51, 0.51), 999_001)
        assert any(frame.dirty for frame in buffer.frames.values())

    def test_writebacks_happen_under_pressure(self, small_dataset):
        tree = RStarTree(max_dir_entries=12, max_data_entries=12)
        tree.bulk_load(small_dataset.items())
        buffer = BufferManager(tree.pagefile.disk, 8, LRU())
        ops = update_stream(small_dataset, 120, seed=12)
        with tree.via(buffer):
            for op in ops:
                op.apply(tree)
        buffer.flush()
        assert buffer.stats.writebacks > 0

    def test_via_is_exclusive(self, small_mutable_tree):
        buffer = BufferManager(small_mutable_tree.pagefile.disk, 8, LRU())
        with small_mutable_tree.via(buffer):
            with pytest.raises(RuntimeError):
                with small_mutable_tree.via(buffer):
                    pass

    def test_via_restores_build_access(self, small_dataset, small_mutable_tree):
        buffer = BufferManager(small_mutable_tree.pagefile.disk, 8, LRU())
        with small_mutable_tree.via(buffer):
            pass
        requests_before = buffer.stats.requests
        small_mutable_tree.window_query(Rect(0.4, 0.4, 0.6, 0.6))
        assert buffer.stats.requests == requests_before

    def test_queries_inside_via_use_live_accessor(self, small_mutable_tree):
        buffer = BufferManager(small_mutable_tree.pagefile.disk, 16, LRU())
        with small_mutable_tree.via(buffer):
            small_mutable_tree.window_query(Rect(0.4, 0.4, 0.6, 0.6))
        assert buffer.stats.requests > 0

    def test_tree_correct_after_buffered_updates(self, small_dataset):
        """Same update stream with and without buffer: identical results."""
        ops = update_stream(small_dataset, 200, seed=13)
        plain = RStarTree(max_dir_entries=12, max_data_entries=12)
        plain.bulk_load(small_dataset.items())
        for op in ops:
            op.apply(plain)
        buffered = RStarTree(max_dir_entries=12, max_data_entries=12)
        buffered.bulk_load(small_dataset.items())
        buffer = BufferManager(buffered.pagefile.disk, 12, LRU())
        with buffered.via(buffer):
            for op in ops:
                op.apply(buffered)
        buffered.validate()
        window = Rect(0.2, 0.2, 0.8, 0.8)
        assert sorted(buffered.window_query(window)) == sorted(
            plain.window_query(window)
        )


class TestReplayMixed:
    def test_counts_reads_and_writes(self, small_dataset):
        tree = RStarTree(max_dir_entries=12, max_data_entries=12)
        tree.bulk_load(small_dataset.items())
        queries = [WindowQuery(Rect(0.3, 0.3, 0.5, 0.5))] * 10
        updates = update_stream(small_dataset, 30, seed=14)
        stream = interleave(list(queries), updates, seed=15)
        buffer = replay_mixed(tree, stream, LRU(), 16)
        assert buffer.stats.queries == 40
        assert buffer.stats.misses > 0

    def test_rejects_foreign_items(self, small_dataset):
        tree = RStarTree(max_dir_entries=12, max_data_entries=12)
        tree.bulk_load(small_dataset.items())
        with pytest.raises(TypeError):
            replay_mixed(tree, ["not a query"], LRU(), 16)


class TestDeallocationThroughBuffer:
    def test_heavy_churn_via_buffer_matches_plain(self, small_dataset):
        """Regression for the stale-frame bug: deletes that dissolve pages
        followed by inserts that reuse the freed ids must behave exactly
        like the unbuffered run, even with a tiny buffer."""
        ops = update_stream(
            small_dataset, 500, seed=77, insert_fraction=0.45, delete_fraction=0.45
        )
        plain = RStarTree(max_dir_entries=8, max_data_entries=8)
        plain.bulk_load(small_dataset.items())
        for op in ops:
            op.apply(plain)

        buffered = RStarTree(max_dir_entries=8, max_data_entries=8)
        buffered.bulk_load(small_dataset.items())
        buffer = BufferManager(buffered.pagefile.disk, 6, LRU())
        with buffered.via(buffer):
            for op in ops:
                op.apply(buffered)
        buffered.validate()
        whole = Rect(0.0, 0.0, 1.0, 1.0)
        assert sorted(buffered.window_query(whole)) == sorted(
            plain.window_query(whole)
        )
