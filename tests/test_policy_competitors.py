"""Tests for the literature competitors: 2Q, ARC, GCLOCK, domain separation."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.arc import ARC
from repro.buffer.policies.domain_separation import DomainSeparation
from repro.buffer.policies.gclock import GClock, type_weight
from repro.buffer.policies.two_q import TwoQ
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def make_disk(n_pages=24, page_type=PageType.DATA):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=page_type)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


def typed_disk():
    disk = SimulatedDisk()
    specs = (
        [(i, PageType.OBJECT, -1) for i in range(8)]
        + [(i, PageType.DATA, 0) for i in range(8, 16)]
        + [(i, PageType.DIRECTORY, 1) for i in range(16, 24)]
    )
    for page_id, page_type, level in specs:
        page = Page(page_id=page_id, page_type=page_type, level=level)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


class TestTwoQ:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TwoQ(kin_fraction=0.0)
        with pytest.raises(ValueError):
            TwoQ(kout_fraction=0.0)

    def test_single_scan_does_not_pollute_am(self):
        """A sequential scan stays in A1in; no page is promoted."""
        policy = TwoQ()
        buffer = BufferManager(make_disk(), 8, policy)
        for page_id in range(20):
            buffer.fetch(page_id)
        assert policy.am_size == 0

    def test_reference_after_a1in_eviction_promotes(self):
        policy = TwoQ(kin_fraction=0.3, kout_fraction=1.0)
        buffer = BufferManager(make_disk(), 6, policy)
        for page_id in range(10):  # page 0 falls out of A1in into A1out
            buffer.fetch(page_id)
        assert policy.am_size == 0
        buffer.fetch(0)  # ghost hit -> promoted to Am
        assert policy.am_size == 1

    def test_burst_inside_a1in_does_not_promote(self):
        policy = TwoQ()
        buffer = BufferManager(make_disk(), 8, policy)
        for _ in range(5):
            buffer.fetch(0)
        assert policy.am_size == 0
        assert policy.a1in_size == 1

    def test_ghost_list_bounded(self):
        policy = TwoQ(kout_fraction=0.5)
        buffer = BufferManager(make_disk(n_pages=24), 8, policy)
        for page_id in range(24):
            buffer.fetch(page_id)
        assert policy.ghost_size <= max(1, round(0.5 * 8))

    def test_capacity_respected(self):
        policy = TwoQ()
        buffer = BufferManager(make_disk(), 5, policy)
        for page_id in [0, 1, 2, 3, 4, 5, 0, 6, 1, 7, 8, 2, 9, 0, 1]:
            buffer.fetch(page_id)
            assert len(buffer) <= 5

    def test_internal_lists_partition_residents(self):
        policy = TwoQ()
        buffer = BufferManager(make_disk(), 6, policy)
        for page_id in [0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 8, 9, 0]:
            buffer.fetch(page_id)
            assert policy.a1in_size + policy.am_size == len(buffer)


class TestARC:
    def test_second_reference_moves_to_t2(self):
        policy = ARC()
        buffer = BufferManager(make_disk(), 6, policy)
        buffer.fetch(0)
        assert 0 in policy._t1
        buffer.fetch(0)
        assert 0 in policy._t2

    def test_ghost_hit_adapts_target(self):
        policy = ARC()
        buffer = BufferManager(make_disk(n_pages=24), 4, policy)
        buffer.fetch(0)
        buffer.fetch(0)  # page 0 in T2, so T1 < capacity and B1 can fill
        for page_id in range(1, 9):  # churn T1; evictees spill into B1
            buffer.fetch(page_id)
        assert policy.target_t1 == 0.0
        ghost = next(iter(policy._b1))
        buffer.fetch(ghost)  # B1 ghost hit must raise the recency target
        assert policy.target_t1 > 0.0

    def test_scan_resistance(self):
        """A hot set re-referenced around a long scan survives in T2."""
        policy = ARC()
        buffer = BufferManager(make_disk(n_pages=24), 6, policy)
        hot = [0, 1]
        for page_id in hot * 3:
            buffer.fetch(page_id)
        for page_id in range(4, 20):  # the scan
            buffer.fetch(page_id)
            buffer.fetch(hot[page_id % 2])  # hot set stays in play
        assert buffer.contains(0)
        assert buffer.contains(1)

    def test_capacity_respected(self):
        policy = ARC()
        buffer = BufferManager(make_disk(), 5, policy)
        trace = [0, 1, 2, 0, 3, 4, 5, 1, 6, 7, 0, 8, 9, 1, 2, 3]
        for page_id in trace:
            buffer.fetch(page_id)
            assert len(buffer) <= 5
        stats = buffer.stats
        assert stats.hits + stats.misses == stats.requests

    def test_ghost_directory_bounded(self):
        policy = ARC()
        capacity = 5
        buffer = BufferManager(make_disk(n_pages=24), capacity, policy)
        for cycle in range(3):
            for page_id in range(24):
                buffer.fetch(page_id)
        assert policy.ghost_size <= 2 * capacity

    def test_clear_resets(self):
        policy = ARC()
        buffer = BufferManager(make_disk(), 4, policy)
        for page_id in range(10):
            buffer.fetch(page_id)
        buffer.clear()
        assert policy.ghost_size == 0
        assert policy.target_t1 == 0.0


class TestGClock:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GClock(max_count=0)

    def test_hits_earn_sweep_survival(self):
        policy = GClock()
        buffer = BufferManager(make_disk(), 3, policy)
        buffer.fetch(0)
        buffer.fetch(0)  # counter 2
        buffer.fetch(1)
        buffer.fetch(2)
        buffer.fetch(3)  # sweep decrements; 1 or 2 (count 1) goes first
        assert buffer.contains(0)

    def test_counter_capped(self):
        policy = GClock(max_count=2)
        buffer = BufferManager(make_disk(), 4, policy)
        for _ in range(10):
            buffer.fetch(0)
        assert policy.count_of(0) == 2

    def test_type_weight_protects_directories(self):
        policy = GClock(initial_weight=type_weight)
        buffer = BufferManager(typed_disk(), 3, policy)
        buffer.fetch(16)  # directory, weight 3
        buffer.fetch(0)   # object, weight 0
        buffer.fetch(8)   # data, weight 1
        buffer.fetch(9)   # evicts the object page first
        assert not buffer.contains(0)
        assert buffer.contains(16)

    def test_capacity_under_churn(self):
        policy = GClock()
        buffer = BufferManager(make_disk(), 4, policy)
        for page_id in [0, 1, 2, 3, 0, 4, 5, 0, 6, 7, 1, 8, 9, 0, 2]:
            buffer.fetch(page_id)
            assert len(buffer) <= 4


class TestDomainSeparation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DomainSeparation({PageType.DATA: -1.0})
        with pytest.raises(ValueError):
            DomainSeparation({PageType.DATA: 0.0})

    def test_quotas_scale_with_capacity(self):
        policy = DomainSeparation()
        BufferManager(typed_disk(), 10, policy)
        assert policy.quota_of(PageType.DIRECTORY) == 3
        assert policy.quota_of(PageType.DATA) == 6
        assert policy.quota_of(PageType.OBJECT) == 1

    def test_domains_do_not_cannibalise(self):
        """Flooding with data pages never evicts resident directories."""
        policy = DomainSeparation()
        buffer = BufferManager(typed_disk(), 6, policy)
        buffer.fetch(16)  # directory (quota 2)
        for page_id in range(8, 16):  # flood with data pages
            buffer.fetch(page_id)
        assert buffer.contains(16)

    def test_over_quota_domain_evicts_internally(self):
        policy = DomainSeparation(
            {PageType.DATA: 0.5, PageType.OBJECT: 0.5}
        )
        buffer = BufferManager(typed_disk(), 4, policy)
        for page_id in (8, 9, 10, 0):  # 3 data pages (quota 2) + 1 object
            buffer.fetch(page_id)
        buffer.fetch(11)  # at capacity: the over-quota data domain evicts
        assert buffer.contains(0)  # the object page is untouched
        assert not buffer.contains(8)  # LRU victim inside the data domain
        data_resident = [
            pid for pid in buffer.resident_ids() if 8 <= pid < 16
        ]
        assert len(data_resident) == 3

    def test_capacity_under_mixed_churn(self):
        policy = DomainSeparation()
        buffer = BufferManager(typed_disk(), 5, policy)
        trace = [0, 8, 16, 1, 9, 17, 2, 10, 18, 3, 11, 19, 8, 16, 0]
        for page_id in trace:
            buffer.fetch(page_id)
            assert len(buffer) <= 5
