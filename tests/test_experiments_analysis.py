"""Tests for stack-distance analysis, the LRU miss curve, OPT, and profiles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.policies import ARC, ASB, LRU, LRUK, SpatialPolicy, TwoQ
from repro.experiments.analysis import (
    lru_miss_curve,
    opt_misses,
    profile_trace,
    stack_distances,
)
from repro.experiments.trace import AccessTrace, replay_trace, record_trace


def trace_of(reference_ids, queries=None):
    """Build a minimal AccessTrace from raw page-id references."""
    trace = AccessTrace()
    for index, page_id in enumerate(reference_ids):
        query = queries[index] if queries else index
        trace.references.append((page_id, query))
        if page_id not in trace.catalogue:
            trace.catalogue[page_id] = (
                "data",
                0,
                [(0.0, 0.0, float(page_id + 1), 1.0)],
            )
    return trace


reference_strings = st.lists(
    st.integers(min_value=0, max_value=12), min_size=1, max_size=150
)


class TestStackDistances:
    def test_known_string(self):
        #  a  b  c  a  b  b  d  a
        distances = stack_distances(trace_of([0, 1, 2, 0, 1, 1, 3, 0]))
        # Final reference to page 0: distinct pages touched since its
        # previous reference are {1, 3} (page 1 at depth above), depth 2.
        assert distances == [-1, -1, -1, 2, 2, 0, -1, 2]

    def test_first_references_are_cold(self):
        distances = stack_distances(trace_of([5, 6, 7]))
        assert distances == [-1, -1, -1]

    def test_immediate_rereference_distance_zero(self):
        assert stack_distances(trace_of([4, 4, 4]))[1:] == [0, 0]


class TestLruMissCurve:
    def test_monotone_nonincreasing(self):
        trace = trace_of([0, 1, 2, 0, 3, 1, 4, 2, 0, 1])
        curve = lru_miss_curve(trace, 8)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_large_capacity_leaves_cold_misses(self):
        trace = trace_of([0, 1, 2, 0, 1, 2, 0, 1, 2])
        curve = lru_miss_curve(trace, 5)
        assert curve[-1] == 3  # only the compulsory misses remain

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            lru_miss_curve(trace_of([0]), 0)

    @settings(max_examples=40, deadline=None)
    @given(reference_strings, st.integers(min_value=1, max_value=10))
    def test_curve_matches_real_lru_buffer(self, references, capacity):
        """The analytic curve must equal an actual LRU simulation."""
        trace = trace_of(references)
        curve = lru_miss_curve(trace, capacity)
        simulated = replay_trace(trace, LRU(), capacity).misses
        assert curve[capacity - 1] == simulated


class TestOpt:
    def test_textbook_example(self):
        # The classic Belady example: 3 frames.
        references = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]
        assert opt_misses(trace_of(references), 3) == 9

    def test_capacity_one(self):
        trace = trace_of([0, 0, 1, 1, 0])
        assert opt_misses(trace, 1) == 3

    def test_all_fit(self):
        trace = trace_of([0, 1, 2, 0, 1, 2])
        assert opt_misses(trace, 3) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            opt_misses(trace_of([0]), 0)

    @settings(max_examples=40, deadline=None)
    @given(reference_strings, st.integers(min_value=1, max_value=8))
    def test_opt_is_a_lower_bound_for_every_policy(self, references, capacity):
        """No online policy beats Belady — the defining property."""
        trace = trace_of(references)
        bound = opt_misses(trace, capacity)
        for factory in (LRU, lambda: LRUK(k=2), lambda: SpatialPolicy("A"),
                        ASB, TwoQ, ARC):
            assert replay_trace(trace, factory(), capacity).misses >= bound

    @settings(max_examples=30, deadline=None)
    @given(reference_strings, st.integers(min_value=1, max_value=8))
    def test_opt_monotone_in_capacity(self, references, capacity):
        trace = trace_of(references)
        assert opt_misses(trace, capacity + 1) <= opt_misses(trace, capacity)


class TestProfiles:
    def test_real_trace_profile(self, small_database):
        query_set = small_database.query_set("S-W-100", 30)
        trace = record_trace(small_database.tree, query_set)
        profile = profile_trace(trace)
        assert profile.total_references == len(trace)
        assert profile.distinct_pages == trace.distinct_pages
        assert "directory" in profile.by_type
        assert "data" in profile.by_type

    def test_directories_hotter_than_data(self, small_database):
        """The quantitative basis of LRU-T/LRU-P: directory pages attract
        far more references per page than data pages."""
        query_set = small_database.query_set("U-W-100", 50)
        trace = record_trace(small_database.tree, query_set)
        profile = profile_trace(trace)
        directory = profile.by_type["directory"]
        data = profile.by_type["data"]
        assert directory.references_per_page > 5 * data.references_per_page

    def test_root_level_hottest(self, small_database):
        query_set = small_database.query_set("U-P", 40)
        trace = record_trace(small_database.tree, query_set)
        profile = profile_trace(trace)
        top_level = max(profile.by_level)
        assert profile.by_level[top_level].references_per_page == max(
            p.references_per_page for p in profile.by_level.values()
        )

    def test_to_text_renders(self, small_database):
        query_set = small_database.query_set("ID-P", 20)
        trace = record_trace(small_database.tree, query_set)
        text = profile_trace(trace).to_text()
        assert "references" in text
        assert "type" in text
