"""Property-based tests on the buffer invariants.

A reference model (plain dict/list bookkeeping) is driven with the same
random access traces as the real buffer manager; the real implementation
must agree with the model (LRU, FIFO) or satisfy structural invariants
(capacity bound, partition, hit/miss accounting) for every policy.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.manager import BufferManager
from repro.buffer.policies import (
    ARC,
    ASB,
    FIFO,
    LRU,
    LRUK,
    SLRU,
    SpatialPolicy,
    TwoQ,
)
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType

N_PAGES = 20

#: A trace is a sequence of (page_id, new_query) pairs.
traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_PAGES - 1), st.booleans()
    ),
    min_size=1,
    max_size=120,
)

capacities = st.integers(min_value=1, max_value=8)


def build_disk():
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        side = float(page_id + 1)
        page.entries.append(
            PageEntry(mbr=Rect(0, 0, side, side), payload=page_id)
        )
        disk.store(page)
    return disk


def drive(policy, trace, capacity):
    """Run a trace; returns (buffer, residency history)."""
    buffer = BufferManager(build_disk(), capacity, policy)
    for page_id, _ in trace:
        buffer.fetch(page_id)
    return buffer


class TestAgainstReferenceModels:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_lru_matches_ordereddict_model(self, trace, capacity):
        model: OrderedDict[int, None] = OrderedDict()
        model_misses = 0
        buffer = BufferManager(build_disk(), capacity, LRU())
        for page_id, _ in trace:
            buffer.fetch(page_id)
            if page_id in model:
                model.move_to_end(page_id)
            else:
                model_misses += 1
                model[page_id] = None
                if len(model) > capacity:
                    model.popitem(last=False)
        assert buffer.resident_ids() == sorted(model)
        assert buffer.stats.misses == model_misses

    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_fifo_matches_queue_model(self, trace, capacity):
        queue: list[int] = []
        buffer = BufferManager(build_disk(), capacity, FIFO())
        for page_id, _ in trace:
            buffer.fetch(page_id)
            if page_id not in queue:
                queue.append(page_id)
                if len(queue) > capacity:
                    queue.pop(0)
        assert buffer.resident_ids() == sorted(queue)


class TestUniversalInvariants:
    POLICIES = [
        ("LRU", LRU),
        ("FIFO", FIFO),
        ("LRU-2", lambda: LRUK(k=2)),
        ("A", lambda: SpatialPolicy("A")),
        ("SLRU", lambda: SLRU(candidate_fraction=0.5)),
        ("ASB", lambda: ASB(overflow_fraction=0.25)),
        ("2Q", TwoQ),
        ("ARC", ARC),
    ]

    @settings(max_examples=40, deadline=None)
    @given(traces, capacities)
    def test_capacity_and_accounting(self, trace, capacity):
        for name, factory in self.POLICIES:
            buffer = BufferManager(build_disk(), capacity, factory())
            for page_id, _ in trace:
                page = buffer.fetch(page_id)
                assert page.page_id == page_id, name
                assert len(buffer) <= capacity, name
            stats = buffer.stats
            assert stats.hits + stats.misses == stats.requests, name
            assert stats.misses == buffer.disk.stats.reads, name

    @settings(max_examples=40, deadline=None)
    @given(traces, capacities)
    def test_requested_page_is_resident_afterwards(self, trace, capacity):
        for name, factory in self.POLICIES:
            buffer = BufferManager(build_disk(), capacity, factory())
            for page_id, _ in trace:
                buffer.fetch(page_id)
                assert buffer.contains(page_id), name

    @settings(max_examples=40, deadline=None)
    @given(traces, capacities)
    def test_asb_partition_invariant(self, trace, capacity):
        policy = ASB(overflow_fraction=0.25)
        buffer = BufferManager(build_disk(), capacity, policy)
        for page_id, _ in trace:
            buffer.fetch(page_id)
            resident = set(buffer.frames)
            overflow = set(policy.overflow_ids())
            assert overflow.issubset(resident)
            assert policy.main_size + policy.overflow_size == len(resident)
            assert 1 <= policy.candidate_size <= policy.main_capacity

    @settings(max_examples=40, deadline=None)
    @given(traces, capacities)
    def test_lru_k_history_is_bounded_by_k(self, trace, capacity):
        policy = LRUK(k=2)
        buffer = BufferManager(build_disk(), capacity, policy)
        for page_id, new_query in trace:
            if new_query:
                with buffer.query_scope():
                    buffer.fetch(page_id)
            else:
                buffer.fetch(page_id)
            assert len(policy.history_of(page_id)) <= 2

    @settings(max_examples=25, deadline=None)
    @given(traces, capacities)
    def test_record_replay_is_bit_identical(self, trace, capacity):
        """The determinism contract of the replay driver: for any request
        sequence and every policy, replaying a recorded trace yields the
        identical event stream and statistics snapshot."""
        from repro.obs import record_run, replay_recorded

        requests = []
        query = 0
        for page_id, new_query in trace:
            if new_query:
                query += 1
            requests.append((page_id, query))
        disk = build_disk()
        for name, factory in self.POLICIES:
            recorded = record_run(requests, disk, factory(), capacity)
            replayed = replay_recorded(recorded, factory())
            assert replayed.events == recorded.events, name
            assert replayed.stats == recorded.stats, name

    @settings(max_examples=30, deadline=None)
    @given(traces, st.integers(min_value=2, max_value=8))
    def test_clear_resets_to_identical_rerun(self, trace, capacity):
        """Replaying after clear() gives identical counts (no state leaks)."""
        for name, factory in self.POLICIES:
            buffer = BufferManager(build_disk(), capacity, factory())
            for page_id, _ in trace:
                buffer.fetch(page_id)
            first = (buffer.stats.misses, buffer.resident_ids())
            buffer.clear()
            for page_id, _ in trace:
                buffer.fetch(page_id)
            second = (buffer.stats.misses, buffer.resident_ids())
            assert first == second, name
