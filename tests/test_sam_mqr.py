"""Tests for the mqr-tree (Moreau & Osborn).

The contract under test is twofold: the mqr-tree is a *correct* spatial
index (query results equal the R*-tree's on shared datasets) and it
maintains the paper's structural organisation (for point data: zero
overlap between node MBRs at equal levels, every object reachable,
deletion leaves a consistent tree).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Point, Rect
from repro.sam.mqr import (
    EQ,
    MqrTree,
    location_of,
    region_contains,
)
from repro.sam.rstar import RStarTree
from repro.storage.page import PageType


def random_points(n, seed):
    rng = random.Random(seed)
    return [
        (Rect(x, y, x, y), i)
        for i, (x, y) in enumerate(
            (rng.random(), rng.random()) for _ in range(n)
        )
    ]


def random_rects(n, seed, extent=0.03):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * extent, rng.random() * extent
        items.append((Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)), i))
    return items


def random_windows(n, seed, extent=0.08):
    rng = random.Random(seed)
    windows = []
    for _ in range(n):
        cx, cy = rng.random(), rng.random()
        windows.append(
            Rect(
                max(0.0, cx - extent),
                max(0.0, cy - extent),
                min(1.0, cx + extent),
                min(1.0, cy + extent),
            )
        )
    return windows


def build(items):
    tree = MqrTree()
    for mbr, payload in items:
        tree.insert(mbr, payload)
    return tree


def equal_level_overlap(tree: MqrTree) -> float:
    """Summed pairwise MBR overlap area between equal-level nodes."""
    by_level: dict[int, list[Rect]] = {}
    for page_id in tree.all_page_ids():
        page = tree.pagefile.disk.peek(page_id)
        by_level.setdefault(page.level, []).append(tree._mbrs[page_id])
    total = 0.0
    for rects in by_level.values():
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                total += rects[i].intersection_area(rects[j])
    return total


class TestLocations:
    def test_five_relations_partition_the_plane(self):
        center = Point(0.5, 0.5)
        rng = random.Random(3)
        seen = set()
        for _ in range(500):
            point = Point(rng.random(), rng.random())
            seen.add(location_of(point, center))
        assert location_of(center, center) == EQ
        # On-axis points derive exactly one compass location each.
        for point in (
            Point(0.5, 0.9), Point(0.9, 0.5), Point(0.5, 0.1), Point(0.1, 0.5)
        ):
            assert location_of(point, center) != EQ
        assert len(seen) >= 4

    def test_regions_are_pairwise_disjoint(self):
        center = Point(0.5, 0.5)
        rng = random.Random(4)
        for _ in range(300):
            x, y = rng.random(), rng.random()
            rect = Rect(x, y, x, y)
            holders = [
                loc for loc in range(4) if region_contains(loc, center, rect)
            ]
            assert len(holders) <= 1
            if holders:
                assert holders[0] == location_of(Point(x, y), center)


class TestMqrTree:
    def test_empty_tree(self):
        tree = MqrTree()
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.point_query(Point(0.5, 0.5)) == []
        assert tree.knn(Point(0.5, 0.5), 3) == []
        assert tree.stats().page_count == 0
        assert not tree.delete(Rect(0, 0, 0, 0), 1)
        tree.validate(strict_regions=True)

    def test_single_object(self):
        tree = MqrTree()
        tree.insert(Rect(0.2, 0.2, 0.2, 0.2), "a")
        assert tree.window_query(Rect(0, 0, 1, 1)) == ["a"]
        assert tree.stats().page_count == 1
        assert tree.stats().height == 1
        tree.validate(strict_regions=True)

    def test_window_queries_match_rstar_ground_truth(self):
        items = random_points(1500, seed=11)
        mqr = build(items)
        rstar = RStarTree()
        rstar.bulk_load(items)
        for window in random_windows(60, seed=12):
            assert sorted(mqr.window_query(window)) == sorted(
                rstar.window_query(window)
            )

    def test_extended_objects_match_rstar_ground_truth(self):
        items = random_rects(1200, seed=13)
        mqr = build(items)
        rstar = RStarTree()
        rstar.bulk_load(items)
        for window in random_windows(60, seed=14):
            assert sorted(mqr.window_query(window)) == sorted(
                rstar.window_query(window)
            )
        mqr.validate()  # extended objects: structural but not strict

    def test_point_queries_match_brute_force(self):
        items = random_rects(600, seed=15, extent=0.1)
        mqr = build(items)
        rng = random.Random(16)
        for _ in range(40):
            point = Point(rng.random(), rng.random())
            expected = sorted(
                payload
                for mbr, payload in items
                if mbr.contains_point(point)
            )
            assert sorted(mqr.point_query(point)) == expected

    def test_knn_distances_match_brute_force(self):
        items = random_points(800, seed=17)
        mqr = build(items)
        rng = random.Random(18)
        for _ in range(25):
            point = Point(rng.random(), rng.random())
            got = mqr.knn(point, 10)
            assert len(got) == 10
            by_distance = sorted(
                items, key=lambda item: item[0].min_distance_to_point(point)
            )
            expected = {payload for _, payload in by_distance[:10]}
            # Distance ties may swap payloads; distances must agree exactly.
            got_d = sorted(
                items[p][0].min_distance_to_point(point) for p in got
            )
            exp_d = sorted(
                mbr.min_distance_to_point(point) for mbr, _ in by_distance[:10]
            )
            assert got_d == exp_d
            assert len(set(got) & expected) >= 8

    def test_zero_equal_level_overlap_for_points(self):
        mqr = build(random_points(2000, seed=19))
        mqr.validate(strict_regions=True)
        assert equal_level_overlap(mqr) == 0.0

    def test_extended_objects_reduce_overlap_per_node_area(self):
        # Extended objects straddling a centroid may break the zero-
        # overlap property (the paper reports "greatly reduced", not
        # zero).  Normalised by summed node MBR area — the indexes have
        # very different node counts — the mqr-tree must stay well below
        # the R*-tree.
        def ratio(mbrs_by_level):
            overlap, area = 0.0, 0.0
            for rects in mbrs_by_level.values():
                for i in range(len(rects)):
                    area += rects[i].area
                    for j in range(i + 1, len(rects)):
                        overlap += rects[i].intersection_area(rects[j])
            return overlap / area

        items = random_rects(1200, seed=20)
        mqr = build(items)
        by_level: dict[int, list[Rect]] = {}
        for page_id in mqr.all_page_ids():
            page = mqr.pagefile.disk.peek(page_id)
            by_level.setdefault(page.level, []).append(mqr._mbrs[page_id])
        rstar = RStarTree()
        rstar.bulk_load(items)
        rstar_by_level: dict[int, list[Rect]] = {}
        for page_id in rstar.all_page_ids():
            page = rstar.pagefile.disk.peek(page_id)
            rstar_by_level.setdefault(page.level, []).append(page.mbr())
        assert ratio(by_level) < ratio(rstar_by_level)

    def test_duplicate_points_bucket_in_eq(self):
        tree = MqrTree()
        for i in range(8):
            tree.insert(Rect(0.5, 0.5, 0.5, 0.5), i)
        tree.insert(Rect(0.1, 0.1, 0.1, 0.1), 100)
        assert sorted(tree.window_query(Rect(0.4, 0.4, 0.6, 0.6))) == list(
            range(8)
        )
        tree.validate(strict_regions=True)
        for i in range(8):
            assert tree.delete(Rect(0.5, 0.5, 0.5, 0.5), i)
        assert tree.window_query(Rect(0, 0, 1, 1)) == [100]
        tree.validate(strict_regions=True)

    def test_delete_then_search_consistency(self):
        items = random_points(900, seed=21)
        mqr = build(items)
        removed = items[::3]
        kept = [item for i, item in enumerate(items) if i % 3 != 0]
        for mbr, payload in removed:
            assert mqr.delete(mbr, payload)
        mqr.validate(strict_regions=True)
        rstar = RStarTree()
        rstar.bulk_load(kept)
        for window in random_windows(40, seed=22):
            assert sorted(mqr.window_query(window)) == sorted(
                rstar.window_query(window)
            )
        assert not mqr.delete(*removed[0][::-1][::-1])  # already gone

    def test_drain_to_empty(self):
        items = random_points(300, seed=23)
        mqr = build(items)
        rng = random.Random(24)
        order = list(items)
        rng.shuffle(order)
        for mbr, payload in order:
            assert mqr.delete(mbr, payload)
            mqr.validate(strict_regions=True)
        assert mqr.root_id is None
        assert mqr.stats().page_count == 0
        assert not mqr.pagefile.disk.page_ids()

    def test_page_types_and_levels(self):
        mqr = build(random_points(500, seed=25))
        stats = mqr.stats()
        assert stats.page_count == stats.directory_pages + stats.data_pages
        assert stats.height > 1
        for page_id in mqr.all_page_ids():
            page = mqr.pagefile.disk.peek(page_id)
            if page.level == 0:
                assert page.page_type is PageType.DATA
            else:
                assert page.page_type is PageType.DIRECTORY

    def test_queries_through_buffer_manager(self):
        items = random_points(800, seed=26)
        mqr = build(items)
        buffer = BufferManager(mqr.pagefile.disk, 24, LRU())
        for window in random_windows(30, seed=27):
            with buffer.query_scope():
                got = mqr.window_query(window, buffer)
            assert sorted(got) == sorted(mqr.window_query(window))
        assert buffer.stats.requests > 0
        assert buffer.stats.hits + buffer.stats.misses == buffer.stats.requests

    def test_buffered_updates_via_accessor(self):
        items = random_points(400, seed=28)
        mqr = build(items[:200])
        buffer = BufferManager(mqr.pagefile.disk, 16, LRU())
        with mqr.via(buffer):
            for mbr, payload in items[200:]:
                mqr.insert(mbr, payload)
            for mbr, payload in items[:50]:
                assert mqr.delete(mbr, payload)
        buffer.flush()
        mqr.validate(strict_regions=True)
        rstar = RStarTree()
        rstar.bulk_load(items[50:])
        for window in random_windows(25, seed=29):
            assert sorted(mqr.window_query(window)) == sorted(
                rstar.window_query(window)
            )


class TestMqrTreeProperties:
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=400),
            st.integers(min_value=0, max_value=400),
        ),
        min_size=1,
        max_size=120,
    ))
    @settings(max_examples=60, deadline=None)
    def test_all_objects_reachable_and_no_equal_level_overlap(self, coords):
        tree = MqrTree()
        for i, (x, y) in enumerate(coords):
            tree.insert(Rect(x / 400, y / 400, x / 400, y / 400), i)
        tree.validate(strict_regions=True)
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == list(
            range(len(coords))
        )
        assert equal_level_overlap(tree) == 0.0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=200),
            ),
            min_size=2,
            max_size=80,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_delete_any_subset_stays_consistent(self, coords, rng):
        tree = MqrTree()
        items = [
            (Rect(x / 200, y / 200, x / 200, y / 200), i)
            for i, (x, y) in enumerate(coords)
        ]
        for mbr, payload in items:
            tree.insert(mbr, payload)
        victims = rng.sample(items, k=len(items) // 2)
        for mbr, payload in victims:
            assert tree.delete(mbr, payload)
        tree.validate(strict_regions=True)
        removed = {payload for _, payload in victims}
        survivors = sorted(
            payload for _, payload in items if payload not in removed
        )
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == survivors

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
            st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ))
    @settings(max_examples=40, deadline=None)
    def test_extended_objects_stay_structurally_sound(self, raw):
        tree = MqrTree()
        items = []
        for i, (x, y, w, h) in enumerate(raw):
            mbr = Rect(x, y, min(x + w, 1.0), min(y + h, 1.0))
            items.append((mbr, i))
            tree.insert(mbr, i)
        tree.validate()
        for window in random_windows(5, seed=31, extent=0.3):
            expected = sorted(
                payload for mbr, payload in items if mbr.intersects(window)
            )
            assert sorted(tree.window_query(window)) == expected


class TestBufferStackAgnosticism:
    """The mqr-tree runs unmodified under the whole buffer stack."""

    def test_sharded_concurrent_buffer(self):
        """Queries through a sharded ConcurrentBufferManager return the
        unbuffered results and keep the accounting identity."""
        from repro.api import BufferSystem

        items = random_rects(600, seed=41)
        tree = build(items)
        system = BufferSystem.build(
            policy="ASB", capacity=16, shards=2, disk=tree.pagefile.disk
        )
        try:
            for window in random_windows(20, seed=42):
                expected = sorted(tree.window_query(window))
                with system.query_scope():
                    got = sorted(tree.window_query(window, system.buffer))
                assert got == expected
            stats = system.stats_snapshot()
            assert stats["hits"] + stats["misses"] == stats["requests"]
            assert stats["requests"] > 0
        finally:
            system.close()

    def test_self_tuning_buffer(self):
        """The tuning controller attaches over an mqr-backed disk."""
        from repro.api import BufferSystem
        from repro.tuning import TuningSpec

        items = random_points(400, seed=43)
        tree = build(items)
        system = BufferSystem.build(
            policy="LRU",
            capacity=12,
            disk=tree.pagefile.disk,
            tuning=TuningSpec(epoch_length=64),
        )
        try:
            for window in random_windows(30, seed=44):
                with system.query_scope():
                    tree.window_query(window, system.buffer)
            assert system.tuner is not None
            stats = system.stats_snapshot()
            assert stats["hits"] + stats["misses"] == stats["requests"]
        finally:
            system.close()
