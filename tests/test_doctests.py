"""Run the doctests embedded in module docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.workloads.sets


@pytest.mark.parametrize("module", [repro.workloads.sets])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
