"""Tests for the page-service wire protocol (framing and payloads)."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.protocol import (
    MAX_FRAME,
    ErrorCode,
    Op,
    ProtocolError,
    RetryReason,
    Status,
    decode_head,
    encode_error,
    encode_frame,
    encode_request,
    encode_response,
    encode_retry_after,
    pack_lsn,
    pack_page_id,
    read_frame,
    unpack_error,
    unpack_lsn,
    unpack_page_id,
    unpack_page_payload,
    unpack_retry_after,
)


def read_all_frames(data: bytes) -> list[bytes]:
    """Feed bytes into a StreamReader, read frames until EOF."""

    async def _run() -> list[bytes]:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(_run())


class TestRoundTrips:
    def test_request_round_trip(self):
        frame = encode_request(Op.FETCH, 42, pack_page_id(-7))
        (body,) = read_all_frames(frame)
        op, request_id, payload = decode_head(body)
        assert op == Op.FETCH
        assert request_id == 42
        assert unpack_page_id(payload) == -7

    def test_response_round_trip(self):
        frame = encode_response(Status.OK, 9, b"payload")
        (body,) = read_all_frames(frame)
        status, request_id, payload = decode_head(body)
        assert (status, request_id, payload) == (Status.OK, 9, b"payload")

    def test_error_round_trip(self):
        frame = encode_error(3, ErrorCode.NOT_FOUND, "page 12 missing")
        (body,) = read_all_frames(frame)
        status, request_id, payload = decode_head(body)
        assert status == Status.ERROR
        code, message = unpack_error(payload)
        assert code == ErrorCode.NOT_FOUND
        assert message == "page 12 missing"

    def test_retry_after_round_trip(self):
        frame = encode_retry_after(5, RetryReason.QUEUE_FULL, 75, "busy")
        (body,) = read_all_frames(frame)
        status, request_id, payload = decode_head(body)
        assert status == Status.RETRY_AFTER
        reason, hint_ms, message = unpack_retry_after(payload)
        assert (reason, hint_ms, message) == (RetryReason.QUEUE_FULL, 75, "busy")

    def test_update_payload_round_trip(self):
        payload = pack_page_id(11) + b"page-bytes"
        page_id, blob = unpack_page_payload(payload)
        assert (page_id, blob) == (11, b"page-bytes")

    def test_lsn_round_trip(self):
        assert unpack_lsn(pack_lsn(1 << 40)) == 1 << 40

    def test_pipelined_frames_stay_separate(self):
        data = encode_request(Op.FETCH, 1, pack_page_id(1)) + encode_request(
            Op.COMMIT, 2
        )
        frames = read_all_frames(data)
        assert len(frames) == 2
        assert decode_head(frames[0])[1] == 1
        assert decode_head(frames[1])[1] == 2


class TestMalformedStreams:
    def test_clean_eof_between_frames_is_none(self):
        assert read_all_frames(b"") == []

    def test_eof_mid_length_prefix(self):
        with pytest.raises(ProtocolError, match="mid-length"):
            read_all_frames(b"\x05\x00")

    def test_eof_mid_body(self):
        frame = encode_request(Op.FETCH, 1, pack_page_id(1))
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_all_frames(frame[:-3])

    def test_oversized_declared_length(self):
        import struct

        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            read_all_frames(struct.pack("<I", MAX_FRAME + 1))

    def test_oversized_body_rejected_at_encode_time(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            encode_frame(b"\x00" * (MAX_FRAME + 1))

    def test_truncated_head_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_head(b"\x01")

    def test_short_payloads_raise_value_errors(self):
        with pytest.raises(ValueError):
            unpack_page_id(b"\x00")
        with pytest.raises(ValueError):
            unpack_lsn(b"")
        with pytest.raises(ValueError):
            unpack_error(b"")
        with pytest.raises(ValueError):
            unpack_retry_after(b"\x01")


class TestBatchPayloads:
    """FETCH_MANY / UPDATE_MANY payload round trips and malformations."""

    def test_page_ids_round_trip(self):
        from repro.server.protocol import pack_page_ids, unpack_page_ids

        ids = [0, 1, 7, 2**40, -5, 1 << 62]
        assert unpack_page_ids(pack_page_ids(ids)) == ids

    def test_page_ids_batch_bounds(self):
        from repro.server.protocol import MAX_BATCH, pack_page_ids

        with pytest.raises(ValueError, match="1\\.\\."):
            pack_page_ids([])
        with pytest.raises(ValueError, match="1\\.\\."):
            pack_page_ids(list(range(MAX_BATCH + 1)))

    def test_page_ids_count_out_of_range(self):
        import struct

        from repro.server.protocol import MAX_BATCH, unpack_page_ids

        with pytest.raises(ValueError, match="outside"):
            unpack_page_ids(struct.pack("<H", 0))
        with pytest.raises(ValueError, match="outside"):
            unpack_page_ids(struct.pack("<H", MAX_BATCH + 1))

    def test_page_ids_length_mismatch(self):
        import struct

        from repro.server.protocol import pack_page_ids, unpack_page_ids

        with pytest.raises(ValueError, match="missing the count"):
            unpack_page_ids(b"\x07")
        with pytest.raises(ValueError, match="needs"):
            unpack_page_ids(struct.pack("<H", 3) + b"\x00" * 8)
        with pytest.raises(ValueError, match="needs"):
            unpack_page_ids(pack_page_ids([1, 2]) + b"\x00")

    def test_update_batch_round_trip(self):
        from repro.server.protocol import pack_update_batch, unpack_update_batch

        items = [(9, b"abc"), (-1, b""), (2**40, b"\x00" * 128)]
        decoded = unpack_update_batch(pack_update_batch(items))
        assert [(pid, bytes(blob)) for pid, blob in decoded] == items
        # Zero-copy contract: the blobs are views, not copies.
        assert all(isinstance(blob, memoryview) for _, blob in decoded)

    def test_update_batch_truncations(self):
        import struct

        from repro.server.protocol import pack_update_batch, unpack_update_batch

        whole = pack_update_batch([(1, b"abcd"), (2, b"efgh")])
        with pytest.raises(ValueError):
            unpack_update_batch(whole[:-1])  # truncated final blob
        with pytest.raises(ValueError, match="trailing"):
            unpack_update_batch(whole + b"\x00")
        with pytest.raises(ValueError, match="truncated"):
            unpack_update_batch(struct.pack("<H", 2) + struct.pack("<qI", 1, 0))

    def test_response_parts_equal_monolithic_encoding(self):
        from repro.server.protocol import encode_response_parts

        parts = [b"aaaa", memoryview(b"bbbbbb"), b""]
        flat = b"".join(bytes(part) for part in encode_response_parts(7, 42, parts))
        assert flat == encode_response(7, 42, b"aaaabbbbbb")

    def test_response_parts_respect_max_frame(self):
        from repro.server.protocol import encode_response_parts

        big = bytes(MAX_FRAME // 2 + 1)
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            encode_response_parts(0, 1, [big, big])


class TestBatchDecoderFuzz:
    """Random bytes must decode cleanly or raise ValueError — nothing else."""

    def _fuzz(self, decoder, seed: int):
        import random

        rng = random.Random(seed)
        for _ in range(500):
            blob = rng.randbytes(rng.randrange(0, 64))
            try:
                decoder(blob)
            except ValueError:
                pass  # the documented rejection path

    def test_unpack_page_ids_survives_fuzz(self):
        from repro.server.protocol import unpack_page_ids

        self._fuzz(unpack_page_ids, seed=1)

    def test_unpack_update_batch_survives_fuzz(self):
        from repro.server.protocol import unpack_update_batch

        self._fuzz(unpack_update_batch, seed=2)

    def test_mutated_valid_batches_survive_fuzz(self):
        import random

        from repro.server.protocol import (
            pack_page_ids,
            pack_update_batch,
            unpack_page_ids,
            unpack_update_batch,
        )

        rng = random.Random(3)
        fetch = bytearray(pack_page_ids([5, 6, 7, 8]))
        update = bytearray(pack_update_batch([(1, b"xy"), (2, b"z" * 30)]))
        for payload, decoder in ((fetch, unpack_page_ids),
                                 (update, unpack_update_batch)):
            for _ in range(300):
                mutated = bytearray(payload)
                for _ in range(rng.randrange(1, 4)):
                    mutated[rng.randrange(len(mutated))] = rng.randrange(256)
                if rng.random() < 0.5:
                    del mutated[rng.randrange(len(mutated) + 1) :]
                try:
                    decoder(bytes(mutated))
                except ValueError:
                    pass
