"""Tests for the page-service wire protocol (framing and payloads)."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.protocol import (
    MAX_FRAME,
    ErrorCode,
    Op,
    ProtocolError,
    RetryReason,
    Status,
    decode_head,
    encode_error,
    encode_frame,
    encode_request,
    encode_response,
    encode_retry_after,
    pack_lsn,
    pack_page_id,
    read_frame,
    unpack_error,
    unpack_lsn,
    unpack_page_id,
    unpack_page_payload,
    unpack_retry_after,
)


def read_all_frames(data: bytes) -> list[bytes]:
    """Feed bytes into a StreamReader, read frames until EOF."""

    async def _run() -> list[bytes]:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(_run())


class TestRoundTrips:
    def test_request_round_trip(self):
        frame = encode_request(Op.FETCH, 42, pack_page_id(-7))
        (body,) = read_all_frames(frame)
        op, request_id, payload = decode_head(body)
        assert op == Op.FETCH
        assert request_id == 42
        assert unpack_page_id(payload) == -7

    def test_response_round_trip(self):
        frame = encode_response(Status.OK, 9, b"payload")
        (body,) = read_all_frames(frame)
        status, request_id, payload = decode_head(body)
        assert (status, request_id, payload) == (Status.OK, 9, b"payload")

    def test_error_round_trip(self):
        frame = encode_error(3, ErrorCode.NOT_FOUND, "page 12 missing")
        (body,) = read_all_frames(frame)
        status, request_id, payload = decode_head(body)
        assert status == Status.ERROR
        code, message = unpack_error(payload)
        assert code == ErrorCode.NOT_FOUND
        assert message == "page 12 missing"

    def test_retry_after_round_trip(self):
        frame = encode_retry_after(5, RetryReason.QUEUE_FULL, 75, "busy")
        (body,) = read_all_frames(frame)
        status, request_id, payload = decode_head(body)
        assert status == Status.RETRY_AFTER
        reason, hint_ms, message = unpack_retry_after(payload)
        assert (reason, hint_ms, message) == (RetryReason.QUEUE_FULL, 75, "busy")

    def test_update_payload_round_trip(self):
        payload = pack_page_id(11) + b"page-bytes"
        page_id, blob = unpack_page_payload(payload)
        assert (page_id, blob) == (11, b"page-bytes")

    def test_lsn_round_trip(self):
        assert unpack_lsn(pack_lsn(1 << 40)) == 1 << 40

    def test_pipelined_frames_stay_separate(self):
        data = encode_request(Op.FETCH, 1, pack_page_id(1)) + encode_request(
            Op.COMMIT, 2
        )
        frames = read_all_frames(data)
        assert len(frames) == 2
        assert decode_head(frames[0])[1] == 1
        assert decode_head(frames[1])[1] == 2


class TestMalformedStreams:
    def test_clean_eof_between_frames_is_none(self):
        assert read_all_frames(b"") == []

    def test_eof_mid_length_prefix(self):
        with pytest.raises(ProtocolError, match="mid-length"):
            read_all_frames(b"\x05\x00")

    def test_eof_mid_body(self):
        frame = encode_request(Op.FETCH, 1, pack_page_id(1))
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_all_frames(frame[:-3])

    def test_oversized_declared_length(self):
        import struct

        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            read_all_frames(struct.pack("<I", MAX_FRAME + 1))

    def test_oversized_body_rejected_at_encode_time(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            encode_frame(b"\x00" * (MAX_FRAME + 1))

    def test_truncated_head_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_head(b"\x01")

    def test_short_payloads_raise_value_errors(self):
        with pytest.raises(ValueError):
            unpack_page_id(b"\x00")
        with pytest.raises(ValueError):
            unpack_lsn(b"")
        with pytest.raises(ValueError):
            unpack_error(b"")
        with pytest.raises(ValueError):
            unpack_retry_after(b"\x01")
