"""Failure-path tests for the page service.

The happy path is covered by the smoke test; these tests pin down the
behaviours the issue tracker cares about when things go wrong: malformed
frames, clients vanishing mid-request, execution timeouts, admission
overflow, and the drain-on-shutdown durability guarantee.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import time

import pytest

from repro.api import BufferSystem
from repro.client import (
    AsyncPageClient,
    ConnectionLost,
    PageClient,
    RetryAfter,
    ServerError,
)
from repro.experiments.servebench import _SlowDisk, make_seed_page
from repro.server import PageServer, ServerThread
from repro.server.protocol import (
    ErrorCode,
    Op,
    RetryReason,
    encode_request,
    pack_page_id,
)
from repro.wal.bytestore import MemoryByteStore
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import replay_durable_prefix

PAGE_SIZE = 512


def durable_system(pages: int = 32, capacity: int = 8) -> BufferSystem:
    system = BufferSystem.build(
        policy="LRU", capacity=capacity, durability=True, page_size=PAGE_SIZE
    )
    for page_id in range(pages):
        system.disk.store(make_seed_page(page_id, page_id, PAGE_SIZE))
    return system


class TestMalformedFrames:
    def test_oversized_length_prefix_closes_the_connection(self):
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            with socket.create_connection((server.host, server.port)) as raw:
                raw.sendall(struct.pack("<I", 1 << 31))
                raw.settimeout(5.0)
                assert raw.recv(1) == b""  # server hung up
            # The server survives and serves the next client.
            with PageClient(server.host, server.port, page_size=PAGE_SIZE) as ok:
                assert ok.fetch(1).page_id == 1
            assert server.server.protocol_errors >= 1

    def test_truncated_frame_closes_the_connection(self):
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            with socket.create_connection((server.host, server.port)) as raw:
                frame = encode_request(Op.FETCH, 1, pack_page_id(1))
                raw.sendall(frame[:-3])  # vanish mid-frame
            time.sleep(0.1)
            with PageClient(server.host, server.port, page_size=PAGE_SIZE) as ok:
                assert ok.fetch(2).page_id == 2
            assert server.server.protocol_errors >= 1

    def test_garbage_payload_is_an_error_not_a_hangup(self):
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    # FETCH with a short payload: request-level error, the
                    # connection stays usable for the next request.
                    with pytest.raises(ServerError):
                        await client._request(Op.FETCH, b"\x01")
                    page = await client.fetch(3)
                    assert page.page_id == 3
                finally:
                    await client.close()

            asyncio.run(scenario())

    def test_unknown_opcode_is_an_error_not_a_hangup(self):
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    with pytest.raises(ServerError) as excinfo:
                        await client._request(99, b"")
                    assert excinfo.value.code == ErrorCode.UNKNOWN_OP
                    assert (await client.fetch(4)).page_id == 4
                finally:
                    await client.close()

            asyncio.run(scenario())


class TestClientDisconnect:
    def test_disconnect_mid_request_does_not_kill_the_server(self):
        system = durable_system()
        # Slow reads keep the dropped client's request in flight while the
        # connection dies underneath it.
        system.buffer.disk = _SlowDisk(system.disk, 0.05)
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            with socket.create_connection((server.host, server.port)) as raw:
                raw.sendall(encode_request(Op.FETCH, 1, pack_page_id(20)))
                # Hard close with the response still pending.
            time.sleep(0.3)
            with PageClient(server.host, server.port, page_size=PAGE_SIZE) as ok:
                assert ok.fetch(21).page_id == 21
            # The in-flight slot was released despite the lost client.
            assert server.server.admission.inflight == 0

    def test_pending_client_requests_fail_with_connection_lost(self):
        system = durable_system()
        system.buffer.disk = _SlowDisk(system.disk, 0.2)

        async def scenario(host: str, port: int) -> None:
            client = await AsyncPageClient.connect(host, port, page_size=PAGE_SIZE)
            fetch = asyncio.ensure_future(client.fetch(22))
            await asyncio.sleep(0.05)
            await client.close()
            with pytest.raises(ConnectionLost):
                await fetch

        with ServerThread(system, page_size=PAGE_SIZE) as server:
            asyncio.run(scenario(server.host, server.port))


class TestRequestTimeout:
    def test_slow_request_fails_with_timeout(self):
        system = durable_system()
        system.buffer.disk = _SlowDisk(system.disk, 0.5)
        with ServerThread(
            system, request_timeout=0.05, page_size=PAGE_SIZE
        ) as server:
            with PageClient(server.host, server.port, page_size=PAGE_SIZE) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.fetch(23)
                assert excinfo.value.code == ErrorCode.TIMEOUT
            # The stuck worker eventually finishes and returns its slot.
            deadline = time.time() + 5.0
            while server.server.admission.inflight and time.time() < deadline:
                time.sleep(0.02)
            assert server.server.admission.inflight == 0


class TestAdmissionOverflow:
    def test_overflow_answers_retry_after_queue_full(self):
        system = durable_system()
        system.buffer.disk = _SlowDisk(system.disk, 0.05)

        async def scenario(host: str, port: int) -> None:
            client = await AsyncPageClient.connect(host, port, page_size=PAGE_SIZE)
            try:
                results = await asyncio.gather(
                    *(client.fetch(page_id) for page_id in range(12)),
                    return_exceptions=True,
                )
            finally:
                await client.close()
            rejected = [r for r in results if isinstance(r, RetryAfter)]
            completed = [r for r in results if not isinstance(r, Exception)]
            assert rejected, "overload must answer RETRY_AFTER"
            assert all(
                r.reason == RetryReason.QUEUE_FULL and r.hint_ms > 0
                for r in rejected
            )
            assert completed, "the admitted requests still complete"

        with ServerThread(
            system, max_inflight=1, max_queued=1, page_size=PAGE_SIZE
        ) as server:
            asyncio.run(scenario(server.host, server.port))
            assert server.server.admission.rejected_queue_full > 0

    def test_per_client_quota_answers_retry_after(self):
        system = durable_system()
        system.buffer.disk = _SlowDisk(system.disk, 0.05)

        async def scenario(host: str, port: int) -> None:
            client = await AsyncPageClient.connect(host, port, page_size=PAGE_SIZE)
            try:
                results = await asyncio.gather(
                    *(client.fetch(page_id) for page_id in range(8)),
                    return_exceptions=True,
                )
            finally:
                await client.close()
            quota_hits = [
                r
                for r in results
                if isinstance(r, RetryAfter)
                and r.reason == RetryReason.CLIENT_QUOTA
            ]
            assert quota_hits

        with ServerThread(
            system,
            max_inflight=8,
            max_queued=8,
            per_client_limit=2,
            page_size=PAGE_SIZE,
        ) as server:
            asyncio.run(scenario(server.host, server.port))


class TestDrainOnShutdown:
    def test_drain_leaves_durable_medium_equal_to_committed_prefix(self):
        system = durable_system(pages=16, capacity=4)
        base_image = system.disk.image()
        server_thread = ServerThread(system, page_size=PAGE_SIZE)
        server_thread.start()
        try:
            with PageClient(
                server_thread.host, server_thread.port, page_size=PAGE_SIZE
            ) as client:
                for page_id in range(8):
                    client.update(
                        make_seed_page(page_id, 1000 + page_id, PAGE_SIZE)
                    )
                    if page_id % 3 == 2:
                        assert client.commit() > 0
        finally:
            server_thread.stop()  # graceful drain: checkpoint + log sync
        wal = WriteAheadLog(
            store=MemoryByteStore(system.durability.wal.store.image())
        )
        assert system.disk.image() == replay_durable_prefix(
            wal, base_image, page_size=PAGE_SIZE
        )

    def test_drain_rejects_new_requests_while_shutting_down(self):
        system = durable_system()

        async def scenario() -> None:
            server = PageServer(system, page_size=PAGE_SIZE)
            await server.start()
            client = await AsyncPageClient.connect(
                server.host, server.port, page_size=PAGE_SIZE
            )
            try:
                assert (await client.fetch(1)).page_id == 1
                server._draining = True
                with pytest.raises(RetryAfter) as excinfo:
                    await client.fetch(2)
                assert excinfo.value.reason == RetryReason.SHUTTING_DOWN
            finally:
                await client.close()
                server._draining = False
                await server.stop()

        asyncio.run(scenario())


class TestBatchOpcodes:
    """FETCH_MANY / UPDATE_MANY over a live server."""

    def test_fetch_many_matches_single_fetches(self):
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    ids = [3, 1, 3, 7, 0, 31]
                    batch = await client.fetch_many(ids)
                    singles = [await client.fetch(pid) for pid in ids]
                    assert [p.page_id for p in batch] == ids
                    assert [p.entries for p in batch] == [
                        p.entries for p in singles
                    ]
                finally:
                    await client.close()

            asyncio.run(scenario())

    def test_update_many_then_fetch_round_trip(self):
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    pages = [
                        make_seed_page(pid, pid * 100, PAGE_SIZE)
                        for pid in (40, 41, 42)
                    ]
                    await client.update_many(pages)
                    read_back = await client.fetch_many([40, 41, 42])
                    assert [p.entries for p in read_back] == [
                        p.entries for p in pages
                    ]
                finally:
                    await client.close()

            asyncio.run(scenario())

    def test_pipelined_fallback_matches_batch(self):
        # Force the old-server downgrade: fetch_many must produce the
        # same pages through pipelined single FETCHes.
        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    ids = [2, 9, 2, 17]
                    batched = await client.fetch_many(ids)
                    client._batch_supported = False
                    pipelined = await client.fetch_many(ids)
                    assert [p.page_id for p in pipelined] == ids
                    assert [p.entries for p in pipelined] == [
                        p.entries for p in batched
                    ]
                finally:
                    await client.close()

            asyncio.run(scenario())

    def test_malformed_batches_are_errors_not_hangups(self):
        import random

        from repro.server.protocol import MAX_BATCH

        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    hostile = [
                        b"",                                  # no count
                        struct.pack("<H", 0),                 # zero batch
                        struct.pack("<H", MAX_BATCH + 1),     # oversized count
                        struct.pack("<H", 3) + b"\x00" * 8,   # truncated ids
                        struct.pack("<H", 1) + b"\x00" * 9,   # trailing byte
                    ]
                    for op in (Op.FETCH_MANY, Op.UPDATE_MANY):
                        for payload in hostile:
                            with pytest.raises(ServerError) as excinfo:
                                await client._request(op, payload)
                            assert excinfo.value.code == ErrorCode.MALFORMED
                    # One connection absorbed every malformation and the
                    # stream is still perfectly aligned.
                    assert (await client.fetch(5)).page_id == 5
                finally:
                    await client.close()

            asyncio.run(scenario())

    def test_fuzzed_batch_frames_never_kill_the_connection(self):
        import random

        system = durable_system()
        with ServerThread(system, page_size=PAGE_SIZE) as server:
            async def scenario() -> None:
                rng = random.Random(2002)
                client = await AsyncPageClient.connect(
                    server.host, server.port, page_size=PAGE_SIZE
                )
                try:
                    for index in range(60):
                        op = Op.FETCH_MANY if index % 2 else Op.UPDATE_MANY
                        payload = rng.randbytes(rng.randrange(0, 80))
                        try:
                            await client._request(op, payload)
                        except ServerError:
                            pass  # request-level rejection is the contract
                        # The connection survives every single frame.
                        assert (await client.fetch(index % 8)).page_id == index % 8
                finally:
                    await client.close()

            asyncio.run(scenario())
