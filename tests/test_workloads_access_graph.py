"""Tests of the access-graph workload generator.

The ablation matrix leans on these reference strings, so three things
are non-negotiable: every string is a *walk* (consecutive requests are
edges — the access-graph contract), generation is deterministic (golden
digests pin the exact streams), and the worst-case cycle actually is
the worst case (a demand-paged LRU buffer misses on every request).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.manager import BufferManager
from repro.buffer.policies import make_policy
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageType
from repro.workloads.access_graph import (
    AccessGraph,
    adversarial_suite,
    clustered_graph,
    cycle_graph,
    graph_walk,
    worst_case_cycle,
)

#: SHA-256 over the page-id stream of ``worst_case_cycle(8, 100)``.
#: Changing the generators invalidates every recorded ablation run, so
#: a digest change must be deliberate: update it in the same commit and
#: say why.
GOLDEN_CYCLE_DIGEST = (
    "c6c4290cc1605a6e20e36968dd771c56a874c92b1e2f5787b790c5f53253b88f"
)
#: SHA-256 over ``graph_walk(clustered_graph(3, 4), 200, seed=3)``.
GOLDEN_CLUSTERED_DIGEST = (
    "87397f44d16af772a4390698b350e104141708f294f73779479e5da4362ae5d7"
)


class TestAccessGraph:
    def test_validates_empty_graph(self):
        with pytest.raises(ValueError, match="at least one node"):
            AccessGraph(name="empty", adjacency={})

    def test_validates_stalling_node(self):
        with pytest.raises(ValueError, match="no successors"):
            AccessGraph(name="stall", adjacency={0: (1,), 1: ()})

    def test_validates_escaping_edge(self):
        with pytest.raises(ValueError, match="outside the graph"):
            AccessGraph(name="escape", adjacency={0: (99,)})

    def test_cycle_graph_shape(self):
        graph = cycle_graph(5, base=10)
        assert graph.nodes == [10, 11, 12, 13, 14]
        assert graph.edge_count() == 5
        assert graph.has_edge(14, 10)
        assert not graph.has_edge(10, 12)

    def test_clustered_graph_shape(self):
        graph = clustered_graph(3, 4)
        assert len(graph) == 12
        # Complete digraph inside each cluster + one bridge per cluster.
        assert graph.edge_count() == 3 * 4 * 3 + 3
        assert graph.has_edge(3, 4)  # bridge: cluster 0 -> cluster 1
        assert graph.has_edge(11, 0)  # ring closes: cluster 2 -> cluster 0

    def test_single_cluster_has_no_bridge(self):
        graph = clustered_graph(1, 3)
        assert graph.edge_count() == 3 * 2


class TestGraphWalk:
    def test_golden_digests(self):
        assert worst_case_cycle(8, 100).digest() == GOLDEN_CYCLE_DIGEST
        walk = graph_walk(clustered_graph(3, 4), 200, seed=3)
        assert walk.digest() == GOLDEN_CLUSTERED_DIGEST

    def test_deterministic_per_seed(self):
        graph = clustered_graph(4, 4)
        one = graph_walk(graph, 150, seed=5)
        two = graph_walk(graph, 150, seed=5)
        other = graph_walk(graph, 150, seed=6)
        assert one.pages == two.pages
        assert one.pages != other.pages

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError, match="not in the graph"):
            graph_walk(cycle_graph(3), 10, start=99)

    def test_rejects_empty_walk(self):
        with pytest.raises(ValueError, match="length must be positive"):
            graph_walk(cycle_graph(3), 0)

    @settings(max_examples=40, deadline=None)
    @given(
        clusters=st.integers(min_value=1, max_value=5),
        cluster_size=st.integers(min_value=2, max_value=6),
        length=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_walk_properties(self, clusters, cluster_size, length, seed):
        """Requested length, and every consecutive pair is an edge."""
        graph = clustered_graph(clusters, cluster_size)
        walk = graph_walk(graph, length, seed=seed)
        assert len(walk) == length
        assert walk.respects_graph()
        assert all(page in graph.adjacency for page in walk)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        length=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_cycle_walk_is_the_deterministic_tour(self, n, length, seed):
        """A cycle has one successor per node: the seed cannot matter."""
        graph = cycle_graph(n)
        walk = graph_walk(graph, length, seed=seed)
        assert walk.respects_graph()
        assert list(walk) == [index % n for index in range(length)]


class TestAdversarialSuite:
    def test_contains_hostile_and_structured(self):
        suite = adversarial_suite(8, 120, seed=7)
        assert set(suite) == {"cycle", "clustered"}
        for reference in suite.values():
            assert len(reference) == 120
            assert reference.respects_graph()

    def test_page_universes_are_disjoint(self):
        suite = adversarial_suite(8, 50, seed=1)
        cycle_pages = set(suite["cycle"].graph.nodes)
        clustered_pages = set(suite["clustered"].graph.nodes)
        assert not cycle_pages & clustered_pages

    def test_suite_digests_pinned(self):
        suite = adversarial_suite(8, 120, seed=7)
        assert suite["cycle"].digest() == (
            "f053fa9a445c19c1b48cc1cac7988d86736628d320569e1a8297757eb11e2027"
        )
        assert suite["clustered"].digest() == (
            "18ee2084463cde7ea9c120027e975df072cc13d1be08582c6efb764ebf8d1f2a"
        )

    def test_worst_case_defeats_lru_completely(self):
        """The advertised property: zero hits at the sized capacity."""
        capacity = 6
        reference = worst_case_cycle(capacity, 100)
        disk = SimulatedDisk()
        for page_id in reference.graph.nodes:
            disk.write(Page(page_id=page_id, page_type=PageType.DATA))
        buffer = BufferManager(
            capacity=capacity, policy=make_policy("LRU"), disk=disk
        )
        for page_id in reference:
            buffer.fetch(page_id)
        assert buffer.stats.hits == 0
        assert buffer.stats.misses == len(reference)
