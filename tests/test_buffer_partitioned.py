"""Tests for the partitioned (per-category) buffer manager."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.partitioned import PartitionedBufferManager
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.spatial import SpatialPolicy
from repro.geometry.rect import Rect
from repro.sam.rstar import RStarTree
from repro.storage.disk import SimulatedDisk
from repro.storage.objects import build_tree_with_objects
from repro.storage.page import Page, PageEntry, PageType


def typed_disk():
    disk = SimulatedDisk()
    specs = (
        [(i, PageType.OBJECT, -1) for i in range(6)]
        + [(i, PageType.DATA, 0) for i in range(6, 12)]
        + [(i, PageType.DIRECTORY, 1) for i in range(12, 18)]
    )
    for page_id, page_type, level in specs:
        page = Page(page_id=page_id, page_type=page_type, level=level)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


def make_partitioned(disk, caps=(2, 3, 2)):
    return PartitionedBufferManager(
        disk,
        {
            PageType.OBJECT: (caps[0], LRU()),
            PageType.DATA: (caps[1], LRU()),
            PageType.DIRECTORY: (caps[2], LRU()),
        },
    )


class TestRouting:
    def test_requires_partitions(self):
        with pytest.raises(ValueError):
            PartitionedBufferManager(typed_disk(), {})

    def test_routes_by_type(self):
        disk = typed_disk()
        manager = make_partitioned(disk)
        manager.fetch(0)   # object
        manager.fetch(6)   # data
        manager.fetch(12)  # directory
        assert manager.buffers[PageType.OBJECT].contains(0)
        assert manager.buffers[PageType.DATA].contains(6)
        assert manager.buffers[PageType.DIRECTORY].contains(12)

    def test_missing_partition_raises(self):
        disk = typed_disk()
        manager = PartitionedBufferManager(
            disk, {PageType.DATA: (2, LRU())}
        )
        with pytest.raises(KeyError):
            manager.fetch(0)  # an object page

    def test_partitions_do_not_interfere(self):
        """Flooding one category never evicts pages of another."""
        disk = typed_disk()
        manager = make_partitioned(disk)
        manager.fetch(12)  # directory, its pool has room
        for page_id in range(6, 12):  # flood the data pool (capacity 3)
            manager.fetch(page_id)
        assert manager.contains(12)
        assert len(manager.buffers[PageType.DATA]) == 3

    def test_capacity_is_partition_sum(self):
        manager = make_partitioned(typed_disk(), caps=(2, 3, 4))
        assert manager.capacity == 9


class TestStatsAndScopes:
    def test_aggregated_stats(self):
        disk = typed_disk()
        manager = make_partitioned(disk)
        manager.fetch(0)
        manager.fetch(6)
        manager.fetch(6)  # hit
        stats = manager.stats
        assert stats.requests == 3
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.misses == disk.stats.reads

    def test_query_scope_counts_once(self):
        manager = make_partitioned(typed_disk())
        with manager.query_scope():
            manager.fetch(0)
            manager.fetch(6)
        assert manager.stats.queries == 1

    def test_dirty_and_flush(self):
        disk = typed_disk()
        manager = make_partitioned(disk)
        manager.fetch(6)
        manager.mark_dirty(6)
        manager.flush()
        assert disk.stats.writes == 1

    def test_clear_empties_all(self):
        manager = make_partitioned(typed_disk())
        manager.fetch(0)
        manager.fetch(6)
        manager.clear()
        assert len(manager) == 0

    def test_pin_routes(self):
        disk = typed_disk()
        manager = make_partitioned(disk)
        manager.fetch(6)
        manager.pin(6)
        for page_id in range(7, 12):
            manager.fetch(page_id)
        assert manager.contains(6)
        manager.unpin(6)


class TestAgainstSharedBuffer:
    def test_tree_query_through_partitioned_buffer(self, small_dataset):
        tree, store = build_tree_with_objects(
            small_dataset, lambda pagefile: RStarTree(pagefile=pagefile)
        )
        manager = PartitionedBufferManager(
            tree.pagefile.disk,
            {
                PageType.DIRECTORY: (4, LRU()),
                PageType.DATA: (12, SpatialPolicy("A")),
                PageType.OBJECT: (8, LRU()),
            },
        )
        window = Rect(0.35, 0.35, 0.6, 0.6)
        with manager.query_scope():
            buffered = sorted(tree.window_query(window, manager, fetch_objects=True))
        assert buffered == sorted(tree.window_query(window))
        assert manager.stats.misses > 0

    def test_same_memory_different_isolation(self, small_dataset):
        """Shared and partitioned buffers of equal total memory differ in
        behaviour — the architectural choice the paper's setup reflects."""
        tree, store = build_tree_with_objects(
            small_dataset, lambda pagefile: RStarTree(pagefile=pagefile)
        )
        windows = [
            Rect(0.3 + i * 0.02, 0.3, 0.38 + i * 0.02, 0.38) for i in range(12)
        ]

        shared = BufferManager(tree.pagefile.disk, 24, LRU())
        for window in windows:
            with shared.query_scope():
                tree.window_query(window, shared, fetch_objects=True)

        partitioned = PartitionedBufferManager(
            tree.pagefile.disk,
            {
                PageType.DIRECTORY: (4, LRU()),
                PageType.DATA: (10, LRU()),
                PageType.OBJECT: (10, LRU()),
            },
        )
        for window in windows:
            with partitioned.query_scope():
                tree.window_query(window, partitioned, fetch_objects=True)

        assert shared.capacity == partitioned.capacity
        assert partitioned.stats.requests == shared.stats.requests
        # Both serve the workload; miss counts legitimately differ.
        assert partitioned.stats.misses > 0
