"""Tests for object pages (the third page category)."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_t import LRUT
from repro.geometry.rect import Rect
from repro.sam.rstar import RStarTree
from repro.storage.objects import (
    ObjectStore,
    build_tree_with_objects,
    synthesize_outline,
)
from repro.storage.page import PageType
from repro.storage.pagefile import PageFile


class TestSynthesizeOutline:
    def test_point_object_is_single_vertex(self):
        outline = synthesize_outline(Rect(0.5, 0.5, 0.5, 0.5))
        assert len(outline) == 1

    def test_extended_object_outline_inside_mbr(self):
        mbr = Rect(0.2, 0.3, 0.6, 0.5)
        outline = synthesize_outline(mbr, vertices=12)
        assert len(outline) == 12
        for vertex in outline:
            assert mbr.contains_point(vertex) or (
                abs(vertex.x - mbr.x_min) < 1e-9
                or abs(vertex.x - mbr.x_max) < 1e-9
            )

    def test_too_few_vertices_raise(self):
        with pytest.raises(ValueError):
            synthesize_outline(Rect(0, 0, 1, 1), vertices=2)


class TestObjectStore:
    def _items(self, n=25):
        return [
            (Rect(i * 0.03, i * 0.03, i * 0.03 + 0.01, i * 0.03 + 0.01), i)
            for i in range(n)
        ]

    def test_parameter_validation(self):
        pagefile = PageFile()
        space = Rect(0, 0, 1, 1)
        with pytest.raises(ValueError):
            ObjectStore(pagefile, space, objects_per_page=0)
        with pytest.raises(ValueError):
            ObjectStore(pagefile, space, order="shuffled")

    def test_packs_into_object_pages(self):
        pagefile = PageFile()
        store = ObjectStore(pagefile, Rect(0, 0, 1, 1), objects_per_page=8)
        mapping = store.store(self._items(25))
        assert len(mapping) == 25
        assert store.page_count == 4  # ceil(25 / 8)
        for page_id in store.page_ids():
            page = pagefile.disk.peek(page_id)
            assert page.page_type is PageType.OBJECT
            assert page.level == -1
            assert 1 <= len(page.entries) <= 8

    def test_every_object_on_its_mapped_page(self):
        pagefile = PageFile()
        store = ObjectStore(pagefile, Rect(0, 0, 1, 1), objects_per_page=6)
        mapping = store.store(self._items(20))
        for payload, page_id in mapping.items():
            page = pagefile.disk.peek(page_id)
            assert any(entry.payload[0] == payload for entry in page.entries)

    def test_zorder_clusters_neighbours(self):
        """Under z-order packing, spatial neighbours share pages more often
        than under insertion order with shuffled input."""
        import random

        rng = random.Random(5)
        items = self._items(64)
        shuffled = items[:]
        rng.shuffle(shuffled)

        def locality(order):
            pagefile = PageFile()
            store = ObjectStore(
                pagefile, Rect(0, 0, 1, 1), objects_per_page=8, order=order
            )
            mapping = store.store(shuffled)
            # Count consecutive object ids sharing a page (ids are spatial
            # order in _items).
            return sum(
                1 for i in range(63) if mapping[i] == mapping[i + 1]
            )

        assert locality("zorder") > locality("insertion")


class TestTreeWithObjects:
    def test_build_links_every_entry(self, small_dataset):
        tree, store = build_tree_with_objects(
            small_dataset, lambda pagefile: RStarTree(pagefile=pagefile)
        )
        tree.validate()
        leaf_ids = [
            pid
            for pid in tree.all_page_ids()
            if tree.pagefile.disk.peek(pid).is_leaf
        ]
        for page_id in leaf_ids:
            for entry in tree.pagefile.disk.peek(page_id).entries:
                assert entry.child == store.page_of[entry.payload]

    def test_fetch_objects_touches_object_pages(self, small_dataset):
        tree, store = build_tree_with_objects(
            small_dataset, lambda pagefile: RStarTree(pagefile=pagefile)
        )
        buffer = BufferManager(tree.pagefile.disk, 32, LRU())
        window = Rect(0.4, 0.4, 0.6, 0.6)
        with buffer.query_scope():
            tree.window_query(window, buffer, fetch_objects=True)
        touched_types = {
            frame.page.page_type for frame in buffer.frames.values()
        }
        assert PageType.OBJECT in touched_types

    def test_without_fetch_objects_no_object_pages(self, small_dataset):
        tree, store = build_tree_with_objects(
            small_dataset, lambda pagefile: RStarTree(pagefile=pagefile)
        )
        buffer = BufferManager(tree.pagefile.disk, 32, LRU())
        with buffer.query_scope():
            tree.window_query(Rect(0.4, 0.4, 0.6, 0.6), buffer)
        touched_types = {
            frame.page.page_type for frame in buffer.frames.values()
        }
        assert PageType.OBJECT not in touched_types

    def test_lru_t_evicts_object_pages_first(self, small_dataset):
        tree, store = build_tree_with_objects(
            small_dataset, lambda pagefile: RStarTree(pagefile=pagefile)
        )
        buffer = BufferManager(tree.pagefile.disk, 12, LRUT())
        for window in (
            Rect(0.3, 0.3, 0.5, 0.5),
            Rect(0.5, 0.5, 0.7, 0.7),
            Rect(0.2, 0.5, 0.4, 0.7),
        ):
            with buffer.query_scope():
                tree.window_query(window, buffer, fetch_objects=True)
        # Under pressure, the resident set must be dominated by tree pages.
        object_frames = sum(
            1
            for frame in buffer.frames.values()
            if frame.page.page_type is PageType.OBJECT
        )
        assert object_frames <= 1
