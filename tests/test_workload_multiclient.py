"""Tests for multi-client interleaved workloads."""

from __future__ import annotations

import pytest

from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.workloads.multiclient import (
    ClientStream,
    interleave_clients,
    replay_clients,
    replay_clients_threaded,
)
from repro.workloads.queries import Query


def make_clients(database, sets, count=20):
    clients = []
    for index, set_name in enumerate(sets):
        queries = database.query_set(set_name, count, seed=index).queries
        clients.append(ClientStream(name=set_name, queries=queries))
    return clients


class TestInterleaving:
    def test_preserves_per_client_order(self, small_database):
        clients = make_clients(small_database, ("U-W-100", "S-W-100"), 15)
        merged = interleave_clients(clients, seed=3)
        assert len(merged) == 30
        for client in clients:
            seen = [query for name, query in merged if name == client.name]
            assert tuple(seen) == client.queries

    def test_deterministic(self, small_database):
        clients = make_clients(small_database, ("U-P", "ID-P"), 10)
        assert interleave_clients(clients, seed=1) == interleave_clients(
            clients, seed=1
        )

    def test_actually_interleaves(self, small_database):
        clients = make_clients(small_database, ("U-P", "ID-P"), 20)
        merged = interleave_clients(clients, seed=2)
        names = [name for name, _ in merged]
        # Not a pure concatenation: both clients appear in the first half.
        assert len(set(names[:20])) == 2

    def test_empty_clients(self):
        assert interleave_clients([], seed=1) == []
        empty = ClientStream(name="idle", queries=())
        assert interleave_clients([empty], seed=1) == []


class TestReplayClients:
    def test_counts_per_client(self, small_database):
        clients = make_clients(small_database, ("U-W-100", "S-W-100"), 12)
        buffer, per_client = replay_clients(
            small_database.tree, clients, LRU(), 24, seed=5
        )
        assert per_client == {"U-W-100": 12, "S-W-100": 12}
        assert buffer.stats.queries == 24
        assert buffer.stats.misses > 0

    def test_interleaved_and_sequential_touch_same_pages(self, small_database):
        """Interleaving changes miss counts (reuse distances shift) but
        never the set of page requests — the workload is the same."""
        clients = make_clients(small_database, ("S-W-100", "INT-W-100"), 40)
        interleaved, _ = replay_clients(
            small_database.tree, clients, LRU(), 16, seed=6
        )
        from repro.buffer.manager import BufferManager

        buffer = BufferManager(small_database.tree.pagefile.disk, 16, LRU())
        for client in clients:
            for query in client.queries:
                with buffer.query_scope():
                    query.run(small_database.tree, buffer)
        assert interleaved.stats.requests == buffer.stats.requests
        assert interleaved.stats.misses > 0
        assert buffer.stats.misses > 0

    def test_queries_keep_own_scopes_for_lru_k(self, small_database):
        """Interleaved clients must not be treated as one correlated
        burst: LRU-K's history grows across queries."""
        policy = LRUK(k=2)
        clients = make_clients(small_database, ("S-P", "S-P"), 15)
        replay_clients(small_database.tree, clients, policy, 24, seed=7)
        root_hist = policy.history_of(small_database.tree.root_id)
        assert len(root_hist) == 2  # multiple uncorrelated references


class TestReplayClientsThreaded:
    def test_counts_per_client_and_accounting(self, small_database):
        clients = make_clients(small_database, ("U-W-100", "S-W-100"), 12)
        buffer, per_client = replay_clients_threaded(
            small_database.tree, clients, LRU, 24, shards=2
        )
        assert per_client == {"U-W-100": 12, "S-W-100": 12}
        stats = buffer.stats
        assert stats.queries == 24
        assert stats.hits + stats.misses == stats.requests
        assert stats.misses > 0

    def test_duplicate_client_names_merge_counts(self, small_database):
        """Two clients may share a name (same query-set label): their
        query counts accumulate instead of racing on the dict slot."""
        clients = make_clients(small_database, ("S-P",), 10)
        clients.append(ClientStream(name="S-P", queries=clients[0].queries))
        buffer, per_client = replay_clients_threaded(
            small_database.tree, clients, LRU, 16, shards=2
        )
        assert per_client == {"S-P": 20}

    def test_reads_match_misses(self, small_database):
        """Coalescing contract at the driver level: every disk read is
        one buffer miss, even with threads racing on the same pages."""
        disk = small_database.tree.pagefile.disk
        reads_before = disk.stats.reads
        clients = make_clients(
            small_database, ("S-W-100", "S-W-100", "INT-W-100", "U-P"), 15
        )
        buffer, _ = replay_clients_threaded(
            small_database.tree, clients, LRU, 16, shards=4
        )
        assert disk.stats.reads - reads_before == buffer.stats.misses

    def test_worker_error_propagates(self, small_database):
        class Broken(Query):
            @property
            def region(self):
                raise RuntimeError("client crashed")

            def run(self, index, accessor=None):
                raise RuntimeError("client crashed")

        clients = make_clients(small_database, ("U-P",), 5)
        clients.append(
            ClientStream(name="bad", queries=(Broken(),))
        )
        with pytest.raises(RuntimeError, match="client crashed"):
            replay_clients_threaded(
                small_database.tree, clients, LRU, 16, shards=2
            )
