"""Tests for the R-tree spatial join."""

from __future__ import annotations

import random

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Rect
from repro.sam.join import nested_loop_join, spatial_join
from repro.sam.rstar import RStarTree
from repro.storage.pagefile import PageFile


def random_rects(n, seed, extent=0.08):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * extent, rng.random() * extent
        rects.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    return rects


def brute_join(left, right):
    return sorted(
        (i, j)
        for i, a in enumerate(left)
        for j, b in enumerate(right)
        if a.intersects(b)
    )


def build(rects, shared_pagefile=None):
    tree = RStarTree(
        pagefile=shared_pagefile, max_dir_entries=8, max_data_entries=8
    )
    tree.bulk_load([(rect, i) for i, rect in enumerate(rects)])
    return tree


class TestSpatialJoin:
    def test_matches_brute_force(self):
        left = random_rects(120, seed=61)
        right = random_rects(150, seed=62)
        result = spatial_join(build(left), build(right))
        assert sorted(result) == brute_join(left, right)

    def test_matches_nested_loop_baseline(self):
        left = random_rects(100, seed=63)
        right = random_rects(100, seed=64)
        left_tree, right_tree = build(left), build(right)
        assert sorted(spatial_join(left_tree, right_tree)) == sorted(
            nested_loop_join(left_tree, right_tree)
        )

    def test_empty_trees(self):
        empty = RStarTree()
        tree = build(random_rects(20, seed=65))
        assert spatial_join(empty, tree) == []
        assert spatial_join(tree, empty) == []
        assert nested_loop_join(empty, tree) == []

    def test_different_tree_heights(self):
        small = build(random_rects(10, seed=66, extent=0.3))
        large = build(random_rects(600, seed=67))
        result = spatial_join(small, large)
        expected = brute_join(
            random_rects(10, seed=66, extent=0.3), random_rects(600, seed=67)
        )
        assert sorted(result) == expected

    def test_disjoint_datasets_join_empty(self):
        left = [Rect(0.0, 0.0, 0.1, 0.1).translated(i * 0.001, 0) for i in range(30)]
        right = [Rect(0.8, 0.8, 0.9, 0.9).translated(i * 0.001, 0) for i in range(30)]
        assert spatial_join(build(left), build(right)) == []

    def test_self_join_contains_diagonal(self):
        rects = random_rects(80, seed=68)
        tree = build(rects)
        result = spatial_join(tree, tree)
        pairs = set(result)
        for i in range(len(rects)):
            assert (i, i) in pairs

    def test_join_through_shared_buffer(self):
        """Both trees on one disk, one shared buffer — the realistic setup."""
        pagefile = PageFile()
        left_rects = random_rects(150, seed=69)
        right_rects = random_rects(150, seed=70)
        left_tree = build(left_rects, pagefile)
        right_tree = build(right_rects, pagefile)
        buffer = BufferManager(pagefile.disk, 16, LRU())
        result = spatial_join(left_tree, right_tree, buffer, buffer)
        assert sorted(result) == brute_join(left_rects, right_rects)
        assert buffer.stats.misses > 0
        assert buffer.stats.hits > 0  # inner pages are revisited

    def test_synchronized_traversal_beats_nested_loop_io(self):
        """The join algorithm's point: far fewer page requests."""
        pagefile = PageFile()
        left_tree = build(random_rects(200, seed=71), pagefile)
        right_tree = build(random_rects(200, seed=72), pagefile)

        def requests(join_fn):
            buffer = BufferManager(pagefile.disk, 24, LRU())
            join_fn(left_tree, right_tree, buffer, buffer)
            return buffer.stats.requests

        assert requests(spatial_join) < requests(nested_loop_join)

    def test_buffer_size_changes_join_cost(self):
        pagefile = PageFile()
        left_tree = build(random_rects(250, seed=73), pagefile)
        right_tree = build(random_rects(250, seed=74), pagefile)

        def misses(capacity):
            buffer = BufferManager(pagefile.disk, capacity, LRU())
            spatial_join(left_tree, right_tree, buffer, buffer)
            return buffer.stats.misses

        assert misses(64) <= misses(8)
