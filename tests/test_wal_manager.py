"""Tests for the durability seam: WAL invariant, flusher, checkpoints."""

from __future__ import annotations

import pytest

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferManager
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.mru import MRU
from repro.geometry.rect import Rect
from repro.obs.events import TraceRecorder
from repro.storage.page import Page, PageEntry, PageType
from repro.wal.durable import DurableDisk
from repro.wal.log import CHECKPOINT, COMMIT, FREE, PAGE_IMAGE
from repro.wal.manager import DurabilityManager

PAGE_SIZE = 256


def make_page(page_id: int, payload: int = 0) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=payload)
    )
    return page


def make_rig(capacity=4, policy=None, **durability_kwargs):
    disk = DurableDisk(page_size=PAGE_SIZE)
    for page_id in range(12):
        disk.store(make_page(page_id, payload=page_id))
    durability = DurabilityManager(disk, **durability_kwargs)
    buffer = BufferManager(
        disk, capacity, policy or LRU(), durability=durability
    )
    return disk, durability, buffer


class TestWalInvariant:
    def test_update_logs_a_page_image(self):
        _, durability, buffer = make_rig()
        buffer.fetch(0)
        buffer.mark_dirty(0)
        assert durability.page_lsn[0] == 1
        assert durability.wal.stats.appends == 1

    def test_eviction_forces_log_durable_first(self):
        disk, durability, buffer = make_rig(capacity=2)
        buffer.fetch(0)
        buffer.mark_dirty(0)
        lsn = durability.page_lsn[0]
        assert durability.wal.flushed_lsn < lsn
        buffer.fetch(1)
        buffer.fetch(2)  # evicts page 0, the LRU victim
        assert durability.wal.flushed_lsn >= lsn
        assert disk.peek(0) is not None

    def test_flush_enforces_invariant_too(self):
        _, durability, buffer = make_rig()
        buffer.fetch(3)
        buffer.mark_dirty(3)
        buffer.flush()
        assert durability.wal.flushed_lsn >= durability.page_lsn[3]

    def test_install_is_logged(self):
        _, durability, buffer = make_rig()
        buffer.install(make_page(20, payload=7))
        durability.sync()
        wal_records = list(durability.wal.records())
        assert [(r.kind, r.page_id) for r in wal_records] == [(PAGE_IMAGE, 20)]

    def test_clean_run_without_durability_is_unchanged(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        for page_id in range(4):
            disk.store(make_page(page_id))
        buffer = BufferManager(disk, 2, LRU())
        assert buffer.durability is None
        for page_id in (0, 1, 2, 3):
            buffer.fetch(page_id)
        assert buffer.stats.misses == 4


class TestFreePage:
    def test_free_page_logs_before_deleting(self):
        disk, durability, buffer = make_rig()
        buffer.fetch(5)
        buffer.mark_dirty(5)
        durability.free_page(buffer, 5)
        assert 5 not in disk
        assert not buffer.contains(5)
        kinds = [(r.kind, r.page_id) for r in durability.wal.records()]
        assert (FREE, 5) in kinds
        assert 5 not in durability.page_lsn

    def test_free_non_resident_page(self):
        disk, durability, buffer = make_rig()
        durability.free_page(buffer, 7)
        assert 7 not in disk


class TestBackgroundFlusher:
    def test_flush_cold_cleans_lru_first(self):
        _, durability, buffer = make_rig(capacity=4)
        for page_id in (0, 1, 2):
            buffer.fetch(page_id)
            buffer.mark_dirty(page_id)
        cleaned = durability.flush_cold(buffer, batch=1)
        assert cleaned == 1
        # Page 0 is the coldest (least recently used) dirty frame.
        assert not buffer.frames[0].dirty
        assert buffer.frames[1].dirty and buffer.frames[2].dirty

    def test_flush_cold_follows_mru_order(self):
        _, durability, buffer = make_rig(capacity=4, policy=MRU())
        for page_id in (0, 1, 2):
            buffer.fetch(page_id)
            buffer.mark_dirty(page_id)
        durability.flush_cold(buffer, batch=1)
        # MRU evicts the hottest frame first, so page 2 flushes first.
        assert not buffer.frames[2].dirty
        assert buffer.frames[0].dirty and buffer.frames[1].dirty

    def test_flush_cold_follows_fifo_order(self):
        _, durability, buffer = make_rig(capacity=4, policy=FIFO())
        for page_id in (2, 0, 1):
            buffer.fetch(page_id)
            buffer.mark_dirty(page_id)
        buffer.fetch(2)  # touch 2 again; FIFO still orders by arrival
        durability.flush_cold(buffer, batch=1)
        assert not buffer.frames[2].dirty

    def test_flush_cold_skips_pinned_frames(self):
        _, durability, buffer = make_rig(capacity=4)
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.pin(0)
        assert durability.flush_cold(buffer, batch=4) == 0
        buffer.unpin(0)
        assert durability.flush_cold(buffer, batch=4) == 1

    def test_tick_runs_flusher_on_interval(self):
        _, durability, buffer = make_rig(capacity=6, flush_interval=4)
        buffer.fetch(0)
        buffer.mark_dirty(0)
        for page_id in (1, 2):
            buffer.fetch(page_id)
        assert buffer.frames[0].dirty  # 3 requests so far: not yet
        buffer.fetch(3)  # 4th request triggers the flusher
        assert not buffer.frames[0].dirty


class TestCheckpoints:
    def test_checkpoint_flushes_everything_and_logs(self):
        disk, durability, buffer = make_rig(capacity=4)
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.fetch(1)
        buffer.mark_dirty(1)
        buffer.pin(1)
        lsn = durability.checkpoint(buffer)
        assert not buffer.frames[0].dirty
        assert not buffer.frames[1].dirty  # pinned frames flush too
        records = list(durability.wal.records())
        assert records[-1].kind == CHECKPOINT
        assert records[-1].lsn == lsn
        buffer.unpin(1)

    def test_auto_checkpoint_via_tick(self):
        _, durability, buffer = make_rig(
            capacity=4, checkpoint_interval=3
        )
        for page_id in (0, 1, 2):
            buffer.fetch(page_id)
            buffer.mark_dirty(page_id)
        kinds = [r.kind for r in durability.wal.records()]
        assert CHECKPOINT in kinds


class TestDurabilityEvents:
    def test_event_stream_covers_the_write_path(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        for page_id in range(6):
            disk.store(make_page(page_id))
        sink = TraceRecorder()
        durability = DurabilityManager(
            disk, group_window=2, flush_interval=3, observer=sink
        )
        buffer = BufferManager(
            disk, 3, LRU(), observer=sink, durability=durability
        )
        for page_id in range(6):
            buffer.fetch(page_id)
            buffer.mark_dirty(page_id)
            durability.commit()
        durability.checkpoint(buffer)
        kinds = {event.kind for event in sink.events}
        assert {"wal_append", "wal_fsync", "bg_flush", "checkpoint"} <= kinds


class TestConcurrentSeam:
    def test_rejects_automatic_checkpoints(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        durability = DurabilityManager(disk, checkpoint_interval=10)
        with pytest.raises(ValueError):
            ConcurrentBufferManager(
                disk, 8, LRU, shards=2, durability=durability
            )

    def test_commit_and_checkpoint_cover_all_shards(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        for page_id in range(8):
            disk.store(make_page(page_id))
        durability = DurabilityManager(disk, group_window=4)
        service = ConcurrentBufferManager(
            disk, 8, LRU, shards=4, durability=durability
        )
        for page_id in range(8):
            service.fetch(page_id)
            service.mark_dirty(page_id)
        service.commit()
        lsn = service.checkpoint()
        records = list(durability.wal.records())
        assert records[-1].kind == CHECKPOINT and records[-1].lsn == lsn
        assert sum(1 for r in records if r.kind == COMMIT) == 1
        for manager in service.shard_managers():
            assert all(not frame.dirty for frame in manager.frames.values())

    def test_commit_without_seam_raises(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        service = ConcurrentBufferManager(disk, 8, LRU, shards=2)
        with pytest.raises(RuntimeError):
            service.commit()
