"""Equivalence and deferred-state tests for the slot-based hot path.

The fast path defers per-hit bookkeeping into a hit log that is
materialised before any reader can observe buffer state; attaching an
observer forces the fully decomposed path.  These tests pin the contract
between the two:

* driving the same reference string through both modes produces the same
  hit/miss decisions, statistics, resident set, recency order,
  access counts and clock — the deferral is invisible;
* management operations (``switch_policy``, ``clear``, ``discard``)
  issued while deferred hits are pending behave exactly as if every hit
  had been processed eagerly.

Raw ``last_access`` / ``last_query`` *values* are deliberately not
compared across modes: the flush assigns compressed stamps whose order
(the only thing any consumer uses) matches the eager path, but whose
magnitudes do not.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.manager import BufferManager
from repro.buffer.policies import make_policy
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType

N_PAGES = 24
CAPACITY = 6

#: Policies covering every fast-path shape: plain no-hook recency (LRU,
#: MRU, SLRU, FIFO), hook-driven promotion (ASB, 2Q) and history-based
#: ranking (LRU-2).
POLICIES = ("LRU", "MRU", "SLRU", "FIFO", "ASB", "2Q", "LRU-2")


class NullSink:
    """An observer that records nothing — its presence alone forces the
    decomposed (seam-checked) fetch path."""

    def emit(self, event) -> None:  # noqa: ARG002
        pass


def make_disk(n_pages: int = N_PAGES) -> SimulatedDisk:
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


def make_buffer(policy_name: str, observed: bool) -> BufferManager:
    buffer = BufferManager(make_disk(), CAPACITY, make_policy(policy_name))
    if observed:
        buffer.observer = NullSink()
    return buffer


def snapshot(buffer: BufferManager) -> dict:
    """Everything both modes must agree on (order matters for recency)."""
    return {
        "requests": buffer.stats.requests,
        "hits": buffer.stats.hits,
        "misses": buffer.stats.misses,
        "evictions": buffer.stats.evictions,
        "clock": buffer.clock,
        "recency": [frame.page.page_id for frame in buffer.frames.iter_recency()],
        "access_counts": {
            frame.page.page_id: frame.access_count
            for frame in buffer.frames.values()
        },
    }


# Each step: (page_id, scoped, peek).  ``scoped`` wraps the fetch in a
# query scope (which disables the deferred branch for that access);
# ``peek`` reads the statistics right after, forcing a mid-trace flush.
trace_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_PAGES - 1),
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def drive(buffer: BufferManager, steps) -> list[int]:
    """Replay a trace; return the per-step miss counter (the decisions)."""
    decisions = []
    for page_id, scoped, peek in steps:
        if scoped:
            with buffer.query_scope():
                buffer.fetch(page_id)
        else:
            buffer.fetch(page_id)
        if peek:
            decisions.append(buffer.stats.misses)
    decisions.append(buffer.stats.misses)
    return decisions


class TestCrossModeEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(trace_steps, st.sampled_from(POLICIES))
    def test_fast_path_matches_decomposed_path(self, steps, policy_name):
        fast = make_buffer(policy_name, observed=False)
        slow = make_buffer(policy_name, observed=True)
        fast_decisions = drive(fast, steps)
        slow_decisions = drive(slow, steps)
        assert fast_decisions == slow_decisions
        assert snapshot(fast) == snapshot(slow)

    @settings(max_examples=10, deadline=None)
    @given(trace_steps)
    def test_observer_attach_mid_trace_preserves_state(self, steps):
        """Flipping a hot buffer into decomposed mode loses nothing."""
        half = len(steps) // 2
        fast = make_buffer("LRU", observed=False)
        slow = make_buffer("LRU", observed=True)
        drive(fast, steps[:half])
        drive(slow, steps[:half])
        fast.observer = NullSink()  # forces a flush + path rebuild
        drive(fast, steps[half:])
        drive(slow, steps[half:])
        assert snapshot(fast) == snapshot(slow)


class TestDeferredStateManagement:
    def fill_with_pending_hits(self, policy_name: str = "LRU") -> BufferManager:
        buffer = make_buffer(policy_name, observed=False)
        for page_id in range(CAPACITY):
            buffer.fetch(page_id)
        for page_id in (2, 0, 4, 2, 1):  # all hits → deferred in the log
            buffer.fetch(page_id)
        assert buffer._hit_log, "test setup: expected deferred hits"
        return buffer

    def test_switch_policy_with_pending_hits_loses_no_pages(self):
        buffer = self.fill_with_pending_hits()
        resident_before = set(buffer.frames.keys())
        buffer.switch_policy(make_policy("MRU"))
        assert set(buffer.frames.keys()) == resident_before
        assert len(buffer) == CAPACITY
        stats = buffer.stats
        assert stats.hits + stats.misses == stats.requests
        assert stats.hits == 5
        # The new policy must be able to evict sanely right away.
        buffer.fetch(CAPACITY + 1)
        assert len(buffer) == CAPACITY

    def test_switch_policy_seeds_deferred_recency_order(self):
        buffer = self.fill_with_pending_hits()
        expected = [f.page.page_id for f in buffer.frames.iter_recency()]
        buffer.switch_policy(make_policy("LRU"))
        assert [f.page.page_id for f in buffer.frames.iter_recency()] == expected

    def test_clear_with_pending_hits_keeps_the_clock(self):
        buffer = self.fill_with_pending_hits()
        requests = CAPACITY + 5
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.stats.requests == 0
        # The deferred hits happened; their clock ticks survive the clear.
        assert buffer.clock == requests

    def test_discard_with_pending_hits_drops_only_the_target(self):
        buffer = self.fill_with_pending_hits()
        order = [f.page.page_id for f in buffer.frames.iter_recency()]
        buffer = self.fill_with_pending_hits()
        evictions = buffer.stats.evictions
        buffer.discard(4)
        assert not buffer.contains(4)
        assert buffer.stats.evictions == evictions + 1
        survivors = [f.page.page_id for f in buffer.frames.iter_recency()]
        assert survivors == [pid for pid in order if pid != 4]

    def test_discard_nonresident_with_pending_hits_is_noop(self):
        buffer = self.fill_with_pending_hits()
        before = snapshot(buffer)
        buffer.discard(N_PAGES + 100)
        assert snapshot(buffer) == before
