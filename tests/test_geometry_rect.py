"""Unit and property tests for rectangles and points."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import (
    Point,
    Rect,
    mbr_of_points,
    mbr_of_rects,
    total_overlap,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


# ----------------------------------------------------------------------
# Point
# ----------------------------------------------------------------------

class TestPoint:
    def test_as_rect_is_degenerate(self):
        rect = Point(2.0, 3.0).as_rect()
        assert rect == Rect(2.0, 3.0, 2.0, 3.0)
        assert rect.area == 0.0

    def test_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-0.5, 7.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        assert Point(1.0, 2.0).translated(0.5, -1.0) == Point(1.5, 1.0)

    def test_iteration_unpacks(self):
        x, y = Point(4.0, 5.0)
        assert (x, y) == (4.0, 5.0)


# ----------------------------------------------------------------------
# Rect construction and measures
# ----------------------------------------------------------------------

class TestRectBasics:
    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            Rect(0.0, 2.0, 1.0, 0.0)

    def test_from_center(self):
        rect = Rect.from_center(Point(0.5, 0.5), 0.2, 0.4)
        assert rect == Rect(0.4, 0.3, 0.6, 0.7)

    def test_from_center_negative_extent_raises(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0, 0), -1.0, 1.0)

    def test_from_points_any_order(self):
        rect = Rect.from_points(Point(3.0, 1.0), Point(0.0, 4.0))
        assert rect == Rect(0.0, 1.0, 3.0, 4.0)

    def test_area_and_margin(self):
        rect = Rect(0.0, 0.0, 2.0, 3.0)
        assert rect.area == 6.0
        assert rect.margin == 10.0

    def test_center(self):
        assert Rect(0.0, 0.0, 2.0, 4.0).center == Point(1.0, 2.0)

    def test_as_tuple(self):
        assert Rect(1.0, 2.0, 3.0, 4.0).as_tuple() == (1.0, 2.0, 3.0, 4.0)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------

class TestPredicates:
    def test_contains_point_boundary_is_closed(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains_point(Point(0.0, 0.0))
        assert rect.contains_point(Point(1.0, 1.0))
        assert not rect.contains_point(Point(1.0000001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        assert outer.contains(Rect(1.0, 1.0, 9.0, 9.0))
        assert outer.contains(outer)
        assert not outer.contains(Rect(1.0, 1.0, 11.0, 9.0))

    def test_touching_rects_intersect(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)
        assert a.intersection_area(b) == 0.0

    def test_disjoint_rects(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(2.0, 2.0, 3.0, 3.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None


# ----------------------------------------------------------------------
# Combinations
# ----------------------------------------------------------------------

class TestCombinations:
    def test_intersection_area(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        assert a.intersection_area(b) == 1.0
        assert a.intersection(b) == Rect(1.0, 1.0, 2.0, 2.0)

    def test_union(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(2.0, -1.0, 3.0, 0.5)
        assert a.union(b) == Rect(0.0, -1.0, 3.0, 1.0)

    def test_union_point(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0).union_point(Point(2.0, -1.0))
        assert rect == Rect(0.0, -1.0, 2.0, 1.0)

    def test_enlargement(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        assert a.enlargement(Rect(0.25, 0.25, 0.5, 0.5)) == 0.0
        assert a.enlargement(Rect(0.0, 0.0, 2.0, 1.0)) == 1.0

    def test_min_distance_to_point(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.min_distance_to_point(Point(0.5, 0.5)) == 0.0
        assert rect.min_distance_to_point(Point(2.0, 0.5)) == 1.0
        assert rect.min_distance_to_point(Point(4.0, 5.0)) == 5.0


# ----------------------------------------------------------------------
# Transformations
# ----------------------------------------------------------------------

class TestTransformations:
    def test_translated(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0).translated(2.0, 3.0)
        assert rect == Rect(2.0, 3.0, 3.0, 4.0)

    def test_scaled_preserves_center(self):
        rect = Rect(0.0, 0.0, 2.0, 4.0)
        scaled = rect.scaled(0.5)
        assert scaled.center == rect.center
        assert scaled.width == pytest.approx(1.0)
        assert scaled.height == pytest.approx(2.0)

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 1.0, 1.0).scaled(-1.0)

    def test_flipped_x(self):
        rect = Rect(0.1, 0.2, 0.3, 0.4).flipped_x(0.0, 1.0)
        assert rect == Rect(0.7, 0.2, 0.9, 0.4)

    def test_flipped_x_is_involution(self):
        rect = Rect(0.1, 0.2, 0.3, 0.4)
        twice = rect.flipped_x(0.0, 1.0).flipped_x(0.0, 1.0)
        assert twice.as_tuple() == pytest.approx(rect.as_tuple())

    def test_clipped(self):
        bounds = Rect(0.0, 0.0, 1.0, 1.0)
        assert Rect(-1.0, -1.0, 0.5, 0.5).clipped(bounds) == Rect(0.0, 0.0, 0.5, 0.5)
        assert Rect(2.0, 2.0, 3.0, 3.0).clipped(bounds) is None


# ----------------------------------------------------------------------
# MBR helpers
# ----------------------------------------------------------------------

class TestMbrHelpers:
    def test_mbr_of_rects(self):
        result = mbr_of_rects(
            [Rect(0.0, 0.0, 1.0, 1.0), Rect(2.0, -1.0, 3.0, 0.5)]
        )
        assert result == Rect(0.0, -1.0, 3.0, 1.0)

    def test_mbr_of_rects_empty_raises(self):
        with pytest.raises(ValueError):
            mbr_of_rects([])

    def test_mbr_of_points(self):
        result = mbr_of_points([Point(0.0, 5.0), Point(2.0, 1.0)])
        assert result == Rect(0.0, 1.0, 2.0, 5.0)

    def test_mbr_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            mbr_of_points([])

    def test_total_overlap_counts_each_pair_once(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        c = Rect(10.0, 10.0, 11.0, 11.0)
        assert total_overlap([a, b, c]) == 1.0
        assert total_overlap([a]) == 0.0
        assert total_overlap([]) == 0.0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a)
        assert union.contains(b)

    @given(rects(), rects())
    def test_intersection_symmetric(self, a, b):
        assert a.intersection_area(b) == b.intersection_area(a)
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_within_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains(overlap)
            assert b.contains(overlap)

    @given(rects(), rects())
    def test_intersection_area_consistent_with_rect(self, a, b):
        overlap = a.intersection(b)
        area = a.intersection_area(b)
        if overlap is None:
            assert area == 0.0
        else:
            assert math.isclose(area, overlap.area, rel_tol=1e-9, abs_tol=1e-12)

    @given(rects())
    def test_area_margin_nonnegative(self, rect):
        assert rect.area >= 0.0
        assert rect.margin >= 0.0

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= 0.0

    @given(rects(), points())
    def test_min_distance_zero_iff_contained(self, rect, point):
        distance = rect.min_distance_to_point(point)
        assert (distance == 0.0) == rect.contains_point(point)

    @given(st.lists(rects(), min_size=1, max_size=8))
    def test_mbr_of_rects_is_tight(self, rect_list):
        mbr = mbr_of_rects(rect_list)
        for rect in rect_list:
            assert mbr.contains(rect)
        assert mbr.x_min == min(r.x_min for r in rect_list)
        assert mbr.x_max == max(r.x_max for r in rect_list)
        assert mbr.y_min == min(r.y_min for r in rect_list)
        assert mbr.y_max == max(r.y_max for r in rect_list)
