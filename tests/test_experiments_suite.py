"""Tests for the one-call reproduction suite."""

from __future__ import annotations

import pytest

from repro.experiments.figures import make_setup
from repro.experiments.suite import (
    ALL_ABLATIONS,
    ReproductionRun,
    run_reproduction,
)


@pytest.fixture(scope="module")
def tiny_setup():
    return make_setup(
        n_objects_db1=2_000,
        n_objects_db2=1_500,
        n_places=120,
        n_queries=20,
        seed=4,
    )


class TestSuite:
    def test_figures_only(self, tiny_setup, tmp_path):
        run = run_reproduction(
            tiny_setup, output_dir=tmp_path, include_ablations=False
        )
        assert run.succeeded, run.errors
        assert len(run.results) == 9  # figures 4-9, 12-14
        assert (tmp_path / "REPORT.md").exists()
        assert (tmp_path / "figure_13.txt").exists()

    def test_progress_callback(self, tiny_setup):
        seen: list[str] = []
        run_reproduction(
            tiny_setup, include_ablations=False, progress=seen.append
        )
        assert "figure_04" in seen
        assert len(seen) == 9

    def test_markdown_contains_every_result(self, tiny_setup):
        run = run_reproduction(tiny_setup, include_ablations=False)
        markdown = run.to_markdown()
        for result in run.results.values():
            assert result.title in markdown

    def test_errors_are_captured_not_raised(self, tiny_setup, monkeypatch):
        from repro.experiments import suite

        def boom(setup):
            raise RuntimeError("injected")

        monkeypatch.setitem(suite.ALL_FIGURES, "figure_04", boom)
        run = run_reproduction(tiny_setup, include_ablations=False)
        assert "figure_04" in run.errors
        assert "injected" in run.errors["figure_04"]
        assert not run.succeeded
        assert "Errors" in run.to_markdown()

    def test_ablation_registry_complete(self):
        # Every public ablation function is registered in the suite.
        from repro.experiments import ablations as module

        public = {
            name
            for name in dir(module)
            if name.startswith("ablation_")
        }
        registered = set(ALL_ABLATIONS) | {"ablation_updates"}
        # moving objects shares the updates function under its own label.
        assert public <= registered | {"ablation_updates"}

    def test_empty_run(self, tiny_setup):
        run = run_reproduction(
            tiny_setup, include_figures=False, include_ablations=False
        )
        assert run.results == {}
        assert isinstance(run, ReproductionRun)
