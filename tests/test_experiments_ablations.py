"""Tiny-scale smoke tests for every ablation experiment.

The benches run the ablations at full scale; these tests verify structure
and basic sanity at a scale that keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    ablation_adaptive_buffers,
    ablation_baselines,
    ablation_build_method,
    ablation_drifting_hotspot,
    ablation_io_time,
    ablation_join,
    ablation_knn,
    ablation_multiclient,
    ablation_object_pages,
    ablation_opt_gap,
    ablation_overflow_size,
    ablation_partitioned_buffer,
    ablation_pinned_levels,
    ablation_sams,
    ablation_step_size,
    ablation_updates,
)
from repro.experiments.figures import FigureResult, make_setup


@pytest.fixture(scope="module")
def tiny_setup():
    return make_setup(
        n_objects_db1=2_500,
        n_objects_db2=1_500,
        n_places=150,
        n_queries=30,
        seed=3,
    )


def check(result: FigureResult):
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.to_text()
    assert result.title in text
    return result


class TestDeprecatedAlias:
    def test_ablations_module_warns_and_reexports(self):
        import importlib
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.experiments.ablations as legacy

        with pytest.warns(DeprecationWarning, match="repro.experiments.ablation"):
            legacy = importlib.reload(legacy)
        from repro.experiments import ablation

        assert legacy.ablation_overflow_size is ablation.ablation_overflow_size
        assert legacy.ABLATION_SETS == ablation.ABLATION_SETS


class TestAblationsRun:
    def test_overflow_size(self, tiny_setup):
        result = check(ablation_overflow_size(tiny_setup))
        assert len(result.headers) == 6  # query set + 5 fractions

    def test_step_size(self, tiny_setup):
        check(ablation_step_size(tiny_setup))

    def test_sams(self, tiny_setup):
        result = check(ablation_sams(tiny_setup))
        indexes = {row[0] for row in result.rows}
        assert indexes == {"quadtree", "z-b+tree", "gridfile"}

    def test_baselines(self, tiny_setup):
        check(ablation_baselines(tiny_setup))

    def test_io_time(self, tiny_setup):
        result = check(ablation_io_time(tiny_setup))
        assert any("ms" in str(row[-1]) for row in result.rows)

    def test_adaptive_buffers(self, tiny_setup):
        result = check(ablation_adaptive_buffers(tiny_setup))
        assert "ASB" in result.headers

    def test_object_pages(self, tiny_setup):
        result = check(ablation_object_pages(tiny_setup, n_objects=2_000))
        policies = {row[0] for row in result.rows}
        assert "LRU-T" in policies

    def test_partitioned_buffer(self, tiny_setup):
        result = check(
            ablation_partitioned_buffer(tiny_setup, n_objects=2_000)
        )
        layouts = {row[0] for row in result.rows}
        assert "shared LRU" in layouts
        assert "split A/LRU" in layouts

    def test_updates(self, tiny_setup):
        result = check(
            ablation_updates(tiny_setup, n_updates=60, n_queries=30)
        )
        assert result.rows[0][0] == "LRU"
        # reads + writebacks = total in every row
        for row in result.rows:
            assert row[1] + row[2] == row[3]

    def test_updates_moving(self, tiny_setup):
        result = check(
            ablation_updates(tiny_setup, n_updates=60, n_queries=30, moving=True)
        )
        assert "moving" in result.title

    def test_join(self, tiny_setup):
        result = check(ablation_join(tiny_setup, n_left=1_500, n_right=1_500))
        algorithms = {row[0] for row in result.rows}
        assert algorithms == {"sync-traversal", "nested-loop"}

    def test_drifting_hotspot(self, tiny_setup):
        result = check(ablation_drifting_hotspot(tiny_setup, n_queries=50))
        assert result.rows[0][0] == "LRU"

    def test_knn(self, tiny_setup):
        result = check(ablation_knn(tiny_setup, k_values=(1, 5)))
        assert len(result.rows) == 2

    def test_opt_gap(self, tiny_setup):
        result = check(ablation_opt_gap(tiny_setup, sets=("U-W-100",)))
        assert result.rows[0][1] > 0  # OPT misses are positive

    def test_pinned_levels(self, tiny_setup):
        result = check(ablation_pinned_levels(tiny_setup, sets=("U-W-100",)))
        strategies = [row[0] for row in result.rows]
        assert strategies[0] == "LRU"
        assert strategies[-1] == "LRU-P"

    def test_multiclient(self, tiny_setup):
        result = check(
            ablation_multiclient(tiny_setup, client_sets=("U-W-100", "S-W-100"))
        )
        assert result.rows[0][0] == "LRU"

    def test_build_method(self, tiny_setup):
        result = check(ablation_build_method(tiny_setup, n_objects=1_200))
        builds = [row[0] for row in result.rows]
        assert builds == ["str", "hilbert", "insert"]
