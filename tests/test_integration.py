"""Cross-module integration tests: tree + buffer + policies + workloads."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies import (
    ARC,
    ASB,
    FIFO,
    LFU,
    LRU,
    LRUK,
    LRUP,
    LRUT,
    MRU,
    SLRU,
    Clock,
    DomainSeparation,
    GClock,
    RandomPolicy,
    SpatialPolicy,
    TwoQ,
)
from repro.geometry.rect import Rect
from repro.sam.quadtree import Quadtree
from repro.sam.zbtree import ZBTree
from repro.storage.disk import DiskError

ALL_POLICY_FACTORIES = {
    "LRU": LRU,
    "FIFO": FIFO,
    "CLOCK": Clock,
    "LFU": LFU,
    "MRU": MRU,
    "RANDOM": lambda: RandomPolicy(seed=9),
    "LRU-T": LRUT,
    "LRU-P": LRUP,
    "LRU-2": lambda: LRUK(k=2),
    "LRU-3": lambda: LRUK(k=3),
    "A": lambda: SpatialPolicy("A"),
    "EA": lambda: SpatialPolicy("EA"),
    "M": lambda: SpatialPolicy("M"),
    "EM": lambda: SpatialPolicy("EM"),
    "EO": lambda: SpatialPolicy("EO"),
    "SLRU": lambda: SLRU(candidate_fraction=0.25),
    "ASB": ASB,
    "2Q": TwoQ,
    "ARC": ARC,
    "GCLOCK": GClock,
    "DOMAIN": DomainSeparation,
}


class TestPolicyTransparency:
    """Replacement policies must never change query *results* — only costs."""

    @pytest.mark.parametrize("name", sorted(ALL_POLICY_FACTORIES))
    def test_query_results_independent_of_policy(self, name, small_database):
        database = small_database
        query_set = database.query_set("S-W-100", 25)
        reference = [sorted(query.run(database.tree)) for query in query_set]
        buffer = BufferManager(
            database.tree.pagefile.disk, 16, ALL_POLICY_FACTORIES[name]()
        )
        for query, expected in zip(query_set, reference):
            with buffer.query_scope():
                assert sorted(query.run(database.tree, buffer)) == expected

    @pytest.mark.parametrize("name", sorted(ALL_POLICY_FACTORIES))
    def test_capacity_respected_on_real_workload(self, name, small_database):
        database = small_database
        query_set = database.query_set("U-W-33", 25)
        buffer = BufferManager(
            database.tree.pagefile.disk, 12, ALL_POLICY_FACTORIES[name]()
        )
        for query in query_set:
            with buffer.query_scope():
                query.run(database.tree, buffer)
            assert len(buffer) <= 12
        assert buffer.stats.misses > 0


class TestBufferAcrossSams:
    def test_quadtree_through_buffer(self, small_dataset):
        tree = Quadtree(small_dataset.space, capacity=16)
        for i, rect in enumerate(small_dataset.rects[:800]):
            tree.insert(rect, i)
        buffer = BufferManager(tree.pagefile.disk, 16, ASB())
        window = Rect(0.3, 0.3, 0.6, 0.6)
        with buffer.query_scope():
            buffered = sorted(tree.window_query(window, buffer))
        assert buffered == sorted(tree.window_query(window))
        assert buffer.stats.misses > 0

    def test_zbtree_through_buffer(self, small_dataset):
        tree = ZBTree(small_dataset.space, max_entries=16)
        points = [rect for rect in small_dataset.rects[:800] if rect.area == 0]
        tree.bulk_load([(rect, i) for i, rect in enumerate(points)])
        buffer = BufferManager(tree.pagefile.disk, 16, SpatialPolicy("A"))
        window = Rect(0.3, 0.3, 0.6, 0.6)
        with buffer.query_scope():
            buffered = sorted(set(tree.window_query(window, buffer)))
        assert buffered == sorted(set(tree.window_query(window)))

    def test_pinning_tree_root_keeps_it_resident(self, small_database):
        tree = small_database.tree
        buffer = BufferManager(tree.pagefile.disk, 12, LRU())
        buffer.fetch(tree.root_id)
        buffer.pin(tree.root_id)
        query_set = small_database.query_set("U-W-33", 20)
        for query in query_set:
            with buffer.query_scope():
                query.run(tree, buffer)
        assert buffer.contains(tree.root_id)


class TestHitAccountingAgainstDisk:
    def test_misses_equal_disk_reads_for_every_policy(self, small_database):
        database = small_database
        query_set = database.query_set("INT-W-100", 20)
        for name, factory in sorted(ALL_POLICY_FACTORIES.items()):
            disk = database.tree.pagefile.disk
            before = disk.stats.reads
            buffer = BufferManager(disk, 16, factory())
            for query in query_set:
                with buffer.query_scope():
                    query.run(database.tree, buffer)
            assert disk.stats.reads - before == buffer.stats.misses, name


class TestFailureInjection:
    def test_disk_error_propagates_and_buffer_stays_consistent(self, small_database):
        tree = small_database.tree
        disk = tree.pagefile.disk
        buffer = BufferManager(disk, 8, LRU())
        # STR allocates bottom-up, so the smallest id is a leaf (the root
        # is allocated last); make sure we do not break the root itself.
        leaf_id = min(tree.all_page_ids())
        assert leaf_id != tree.root_id
        disk.fail_reads.add(leaf_id)
        try:
            with pytest.raises(DiskError):
                buffer.fetch(leaf_id)
            assert not buffer.contains(leaf_id)
            # The buffer keeps working afterwards.
            buffer.fetch(tree.root_id)
            assert buffer.contains(tree.root_id)
        finally:
            disk.fail_reads.discard(leaf_id)

    def test_writeback_failure_surfaces(self, small_database):
        tree = small_database.tree
        disk = tree.pagefile.disk
        buffer = BufferManager(disk, 1, LRU())
        page_ids = tree.all_page_ids()
        buffer.fetch(page_ids[0])
        buffer.mark_dirty(page_ids[0])
        disk.fail_writes.add(page_ids[0])
        try:
            with pytest.raises(DiskError):
                buffer.fetch(page_ids[1])  # triggers eviction + write-back
        finally:
            disk.fail_writes.discard(page_ids[0])
            buffer.frames[page_ids[0]].dirty = False
