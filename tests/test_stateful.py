"""Stateful property tests (hypothesis rule-based state machines).

Two machines drive the core stateful components through arbitrary
interleavings of operations, checking invariants after every step:

* :class:`BufferMachine` — fetch/pin/unpin/dirty/flush/clear against a
  buffer manager with a randomly chosen policy, with an independent model
  of what must be resident;
* :class:`RStarMachine` — insert/delete against an R*-tree, with a dict
  model of the live objects; window queries must always agree with the
  model and the structural invariants must hold.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.buffer.manager import BufferManager
from repro.buffer.policies import ARC, ASB, LRU, LRUK, SpatialPolicy, TwoQ
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.sam.rstar import RStarTree

N_PAGES = 16
CAPACITY = 5

POLICY_FACTORIES = [
    LRU,
    lambda: LRUK(k=2),
    lambda: SpatialPolicy("A"),
    ASB,
    TwoQ,
    ARC,
]


class BufferMachine(RuleBasedStateMachine):
    """Drives one buffer manager and checks its universal invariants."""

    @initialize(policy_index=st.integers(min_value=0, max_value=len(POLICY_FACTORIES) - 1))
    def setup(self, policy_index):
        disk = SimulatedDisk()
        for page_id in range(N_PAGES):
            page = Page(page_id=page_id, page_type=PageType.DATA)
            side = float(page_id + 1)
            page.entries.append(
                PageEntry(mbr=Rect(0, 0, side, side), payload=page_id)
            )
            disk.store(page)
        self.buffer = BufferManager(
            disk, CAPACITY, POLICY_FACTORIES[policy_index]()
        )
        self.pinned: set[int] = set()
        self.dirty: set[int] = set()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def fetch(self, page_id):
        if len(self.pinned) >= CAPACITY and page_id not in self.pinned:
            return  # would legitimately raise BufferFullError
        page = self.buffer.fetch(page_id)
        assert page.page_id == page_id

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def fetch_in_scope(self, page_id):
        if len(self.pinned) >= CAPACITY and page_id not in self.pinned:
            return
        with self.buffer.query_scope():
            self.buffer.fetch(page_id)

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def pin_if_resident(self, page_id):
        if self.buffer.contains(page_id):
            self.buffer.pin(page_id)
            self.pinned.add(page_id)

    @rule()
    def unpin_one(self):
        if self.pinned:
            page_id = sorted(self.pinned)[0]
            self.buffer.unpin(page_id)
            if not self.buffer.frames[page_id].pinned:
                self.pinned.discard(page_id)

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def dirty_if_resident(self, page_id):
        if self.buffer.contains(page_id):
            self.buffer.mark_dirty(page_id)
            self.dirty.add(page_id)

    @rule()
    def flush(self):
        self.buffer.flush()
        self.dirty.clear()

    @precondition(lambda self: not self.pinned)
    @rule()
    def clear(self):
        self.buffer.clear()
        self.dirty.clear()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def capacity_respected(self):
        assert len(self.buffer) <= CAPACITY

    @invariant()
    def pinned_pages_resident(self):
        for page_id in self.pinned:
            assert self.buffer.contains(page_id)

    @invariant()
    def accounting_consistent(self):
        stats = self.buffer.stats
        assert stats.hits + stats.misses == stats.requests
        assert stats.hits >= 0 and stats.misses >= 0

    @invariant()
    def no_lost_dirty_pages(self):
        """A dirty page is resident-dirty or was already written back."""
        for page_id in self.dirty:
            if self.buffer.contains(page_id):
                # Either still dirty or flushed by an eviction+reload cycle.
                assert isinstance(self.buffer.frames[page_id].dirty, bool)


class RStarMachine(RuleBasedStateMachine):
    """Drives an R*-tree through inserts and deletes against a dict model."""

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed):
        self.tree = RStarTree(max_dir_entries=5, max_data_entries=5)
        self.model: dict[int, Rect] = {}
        self.counter = 0
        self.rng = random.Random(seed)

    @rule(
        x=st.floats(min_value=0.0, max_value=0.95),
        y=st.floats(min_value=0.0, max_value=0.95),
        w=st.floats(min_value=0.0, max_value=0.05),
        h=st.floats(min_value=0.0, max_value=0.05),
    )
    def insert(self, x, y, w, h):
        rect = Rect(x, y, x + w, y + h)
        self.tree.insert(rect, self.counter)
        self.model[self.counter] = rect
        self.counter += 1

    @rule()
    def delete_one(self):
        if not self.model:
            return
        payload = self.rng.choice(sorted(self.model))
        rect = self.model.pop(payload)
        assert self.tree.delete(rect, payload)

    @rule()
    def delete_missing_is_noop(self):
        assert not self.tree.delete(Rect(0.99, 0.99, 1.0, 1.0), -1)

    @invariant()
    def structure_valid(self):
        self.tree.validate()

    @invariant()
    def full_scan_matches_model(self):
        found = sorted(self.tree.window_query(Rect(0.0, 0.0, 1.0, 1.0)))
        assert found == sorted(self.model)


TestBufferMachine = BufferMachine.TestCase
TestBufferMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

TestRStarMachine = RStarMachine.TestCase
TestRStarMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
