"""Tests for the admission controller: bounds, quotas, timeouts, events."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.events import TraceRecorder
from repro.server.admission import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
)
from repro.server.protocol import RetryReason


def run(coroutine):
    return asyncio.run(coroutine)


class TestInflightBound:
    def test_admits_up_to_the_limit(self):
        async def scenario():
            controller = AdmissionController(max_inflight=3, max_queued=0)
            for client in range(3):
                await controller.acquire(client)
            assert controller.inflight == 3
            with pytest.raises(AdmissionRejected) as excinfo:
                await controller.acquire(9)
            assert excinfo.value.reason == RetryReason.QUEUE_FULL
            assert controller.rejected_queue_full == 1

        run(scenario())

    def test_release_grants_the_next_waiter_fifo(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queued=4)
            await controller.acquire(1)
            order: list[int] = []

            async def waiter(client_id: int) -> None:
                await controller.acquire(client_id)
                order.append(client_id)

            tasks = [asyncio.ensure_future(waiter(i)) for i in (2, 3, 4)]
            await asyncio.sleep(0)
            assert controller.queue_depth == 3
            controller.release(1)
            await asyncio.sleep(0)
            controller.release(2)
            await asyncio.sleep(0)
            controller.release(3)
            await asyncio.gather(*tasks)
            assert order == [2, 3, 4]
            assert controller.peak_queued == 3

        run(scenario())

    def test_queue_overflow_rejects_not_queues(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queued=1)
            await controller.acquire(1)
            task = asyncio.ensure_future(controller.acquire(2))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejected) as excinfo:
                await controller.acquire(3)
            assert excinfo.value.reason == RetryReason.QUEUE_FULL
            assert excinfo.value.hint_ms > 0
            controller.release(1)
            await task
            controller.release(2)

        run(scenario())


class TestClientQuota:
    def test_quota_bounces_the_greedy_client_only(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=8, max_queued=8, per_client_limit=2
            )
            await controller.acquire(1)
            await controller.acquire(1)
            with pytest.raises(AdmissionRejected) as excinfo:
                await controller.acquire(1)
            assert excinfo.value.reason == RetryReason.CLIENT_QUOTA
            # Another client is unaffected.
            await controller.acquire(2)
            assert controller.rejected_quota == 1
            # Releasing frees the quota slot.
            controller.release(1)
            await controller.acquire(1)

        run(scenario())

    def test_quota_counts_queued_requests_too(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=1, max_queued=8, per_client_limit=2
            )
            await controller.acquire(1)
            task = asyncio.ensure_future(controller.acquire(1))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejected) as excinfo:
                await controller.acquire(1)
            assert excinfo.value.reason == RetryReason.CLIENT_QUOTA
            controller.release(1)
            await task

        run(scenario())


class TestQueueTimeout:
    def test_stale_waiter_times_out(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=1, max_queued=4, queue_timeout=0.02
            )
            await controller.acquire(1)
            with pytest.raises(AdmissionTimeout):
                await controller.acquire(2)
            assert controller.timeouts == 1
            assert controller.queue_depth == 0
            # The timed-out waiter's quota slot was returned.
            controller.release(1)
            await controller.acquire(2)

        run(scenario())

    def test_timed_out_waiter_is_skipped_at_grant_time(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=1, max_queued=4, queue_timeout=0.02
            )
            await controller.acquire(1)
            stale = asyncio.ensure_future(controller.acquire(2))
            live_started = asyncio.Event()

            async def live() -> None:
                # Joins the queue after the stale waiter; no timeout races
                # because the slot frees before this waits that long.
                await controller.acquire(3)
                live_started.set()

            await asyncio.sleep(0.05)  # let the stale waiter expire
            with pytest.raises(AdmissionTimeout):
                await stale
            task = asyncio.ensure_future(live())
            await asyncio.sleep(0)
            controller.release(1)
            await asyncio.wait_for(live_started.wait(), 1.0)
            await task

        run(scenario())


class TestShutdown:
    def test_reject_all_queued_fails_waiters_with_shutting_down(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queued=4)
            await controller.acquire(1)
            tasks = [
                asyncio.ensure_future(controller.acquire(client))
                for client in (2, 3)
            ]
            await asyncio.sleep(0)
            assert controller.reject_all_queued() == 2
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, AdmissionRejected) for r in results)
            assert all(
                r.reason == RetryReason.SHUTTING_DOWN for r in results
            )

        run(scenario())


class TestObservability:
    def test_admission_events_land_in_the_sink(self):
        async def scenario():
            recorder = TraceRecorder()
            controller = AdmissionController(
                max_inflight=1, max_queued=1, observer=recorder
            )
            await controller.acquire(1)
            task = asyncio.ensure_future(controller.acquire(2))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejected):
                await controller.acquire(3)
            controller.release(1)
            await task
            kinds = [event.kind for event in recorder.events]
            assert kinds == [
                "req_admitted",
                "req_queued",
                "req_rejected",
                "req_admitted",
            ]
            clocks = [event.clock for event in recorder.events]
            assert clocks == sorted(clocks)

        run(scenario())

    def test_snapshot_reports_counters(self):
        async def scenario():
            controller = AdmissionController(max_inflight=2, max_queued=2)
            await controller.acquire(1)
            await controller.acquire(2)
            snapshot = controller.snapshot()
            assert snapshot["inflight"] == 2
            assert snapshot["admitted"] == 2
            assert snapshot["peak_inflight"] == 2

        run(scenario())
