"""Unit tests for the cluster node building blocks (repro.cluster.node).

Covers the LSN-floor discipline of :class:`ReplicaStore` and
:class:`FarBuffer` (the invariant the zero-stale-read guarantee leans
on), the :class:`FarProbeDisk` miss-path wrapper, the
:class:`EvictOfferSink` supply side, the five cluster-plane opcodes on a
live :class:`ClusterPageServer`, and the STATS ``node`` block.  The base
:class:`PageServer` must answer every cluster opcode with
``ERROR/UNKNOWN_OP`` — clients use that to tell a plain node from a
cluster node.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import BufferSystem
from repro.client import AsyncPageClient, ServerError
from repro.cluster import (
    ClusterNodeConfig,
    ClusterPageServer,
    EvictOfferSink,
    FarBuffer,
    FarProbeDisk,
    ReplicaStore,
)
from repro.cluster.ring import ClusterMap
from repro.experiments.servebench import make_seed_page
from repro.obs.events import BufferEvent
from repro.server import ServerThread
from repro.server.protocol import (
    CLUSTER_OPS,
    ErrorCode,
    Op,
    pack_page_lsn,
    pack_page_lsn_blob,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.serialization import encode_page

PAGE_SIZE = 512


class TestReplicaStoreFloors:
    def test_put_then_get_round_trips(self):
        store = ReplicaStore()
        assert store.put(7, 3, b"v3")
        assert store.get(7) == (3, b"v3")
        assert len(store) == 1

    def test_invalidation_raises_a_floor_late_pushes_cannot_pass(self):
        store = ReplicaStore()
        store.invalidate(7, 5)
        assert not store.put(7, 4, b"stale")  # lost the race: below floor
        assert store.get(7) is None
        assert store.rejected_puts == 1

    def test_push_exactly_at_the_floor_is_the_new_version(self):
        # The invalidation's LSN is the one the owner stamped on the new
        # bytes; a push tagged exactly there must land, or written pages
        # would be permanently barred from the replica tier.
        store = ReplicaStore()
        store.invalidate(7, 5)
        assert store.put(7, 5, b"v5")
        assert store.get(7) == (5, b"v5")

    def test_invalidate_drops_older_keeps_current(self):
        store = ReplicaStore()
        store.put(7, 5, b"v5")
        assert not store.invalidate(7, 5)  # entry is already current
        assert store.get(7) == (5, b"v5")
        assert store.invalidate(7, 6)  # strictly newer: drop
        assert store.get(7) is None

    def test_put_never_regresses_an_entry(self):
        store = ReplicaStore()
        store.put(7, 5, b"v5")
        assert not store.put(7, 4, b"v4")
        assert not store.put(7, 5, b"again")
        assert store.get(7) == (5, b"v5")


class TestFarBuffer:
    def test_capacity_bound_evicts_least_recently_touched(self):
        far = FarBuffer(capacity=2)
        far.put(1, 1, b"a")
        far.put(2, 1, b"b")
        assert far.get_exact(1, 1) == b"a"  # touch 1: now 2 is coldest
        far.put(3, 1, b"c")
        assert far.evictions == 1
        assert far.get_exact(2, 1) is None
        assert far.get_exact(1, 1) == b"a"
        assert far.get_exact(3, 1) == b"c"

    def test_fetch_is_exact_lsn_only(self):
        far = FarBuffer(capacity=4)
        far.put(9, 3, b"v3")
        assert far.get_exact(9, 2) is None  # stale ask
        assert far.get_exact(9, 4) is None  # future ask
        assert far.get_exact(9, 3) == b"v3"
        assert (far.hits, far.misses) == (1, 2)

    def test_floor_discipline_is_inherited(self):
        far = FarBuffer(capacity=4)
        far.invalidate(9, 5)
        assert not far.put(9, 4, b"stale")
        assert far.put(9, 5, b"fresh")
        assert far.get_exact(9, 5) == b"fresh"

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            FarBuffer(capacity=0)


class TestFarProbeDisk:
    def seed_disk(self) -> SimulatedDisk:
        disk = SimulatedDisk()
        disk.store(make_seed_page(1, 11, PAGE_SIZE))
        return disk

    def test_unbound_probe_reads_through(self):
        disk = self.seed_disk()
        wrapped = FarProbeDisk(disk)
        assert wrapped.read(1).page_id == 1
        assert wrapped.stats is disk.stats  # attribute proxying

    def test_probe_hit_skips_the_disk(self):
        disk = self.seed_disk()
        wrapped = FarProbeDisk(disk)
        far_page = make_seed_page(1, 99, PAGE_SIZE)
        blob = encode_page(far_page, PAGE_SIZE)
        wrapped.bind_probe(lambda page_id: blob if page_id == 1 else None)
        reads_before = disk.stats.reads
        page = wrapped.read(1)
        assert disk.stats.reads == reads_before
        assert page.entries[0].payload == far_page.entries[0].payload

    def test_probe_miss_and_unbind_fall_through(self):
        disk = self.seed_disk()
        wrapped = FarProbeDisk(disk)
        wrapped.bind_probe(lambda page_id: None)
        assert wrapped.read(1).page_id == 1
        wrapped.unbind_probe()
        assert wrapped.read(1).page_id == 1


class TestEvictOfferSink:
    def evict(self, page_id: int, dirty: bool) -> BufferEvent:
        return BufferEvent(kind="evict", clock=1, page_id=page_id, dirty=dirty)

    def test_captures_clean_evictions_only(self):
        sink = EvictOfferSink()
        sink.emit(self.evict(1, dirty=False))
        sink.emit(self.evict(2, dirty=True))
        sink.emit(BufferEvent(kind="miss", clock=3, page_id=3))
        assert sink.drain() == [1]

    def test_drain_respects_the_limit_and_preserves_order(self):
        sink = EvictOfferSink()
        for page_id in range(5):
            sink.emit(self.evict(page_id, dirty=False))
        assert sink.drain(limit=3) == [0, 1, 2]
        assert sink.drain() == [3, 4]
        assert sink.drain() == []

    def test_forwards_everything_to_the_inner_sink(self):
        class Recorder:
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

        inner = Recorder()
        sink = EvictOfferSink(inner)
        sink.emit(self.evict(1, dirty=False))
        sink.emit(self.evict(2, dirty=True))
        assert [event.page_id for event in inner.events] == [1, 2]


def far_node_server() -> tuple[BufferSystem, ClusterPageServer]:
    """A running far node ("far") in a 1-data-node map."""
    cluster_map = ClusterMap.build(["node-0"], far_node="far")
    system = BufferSystem.build(
        policy="LRU", capacity=8, shards=1, page_size=PAGE_SIZE
    )
    config = ClusterNodeConfig(
        node_id="far", cluster_map=cluster_map, far_capacity=16
    )
    return system, ClusterPageServer(system, config, page_size=PAGE_SIZE)


def data_node_server() -> tuple[BufferSystem, ClusterPageServer]:
    cluster_map = ClusterMap.build(["node-0"])
    system = BufferSystem.build(
        policy="LRU", capacity=8, shards=1, page_size=PAGE_SIZE
    )
    for page_id in range(16):
        system.disk.store(make_seed_page(page_id, page_id, PAGE_SIZE))
    config = ClusterNodeConfig(node_id="node-0", cluster_map=cluster_map)
    return system, ClusterPageServer(system, config, page_size=PAGE_SIZE)


def loop_call(server_thread: ServerThread, coroutine_factory):
    async def scenario():
        client = await AsyncPageClient.connect(
            server_thread.host, server_thread.port, page_size=PAGE_SIZE
        )
        try:
            return await coroutine_factory(client)
        finally:
            await client.close()

    return asyncio.run(scenario())


class TestClusterOpcodes:
    def test_ownership_returns_the_shared_map(self):
        system, server = data_node_server()
        with ServerThread(server=server) as thread:
            body = loop_call(thread, lambda c: c._request(Op.OWNERSHIP))
            shipped = ClusterMap.from_json(body.decode("utf-8"))
            assert shipped.epoch == server.cluster_map.epoch
            assert shipped.data_nodes == ("node-0",)
            # The map ships the *bound* address filled in at start-up.
            assert shipped.address("node-0") == (thread.host, thread.port)

    def test_replicate_and_invalidate_drive_the_replica_store(self):
        system, server = data_node_server()
        with ServerThread(server=server) as thread:
            async def scenario(client):
                await client._request(
                    Op.REPLICATE, pack_page_lsn_blob(5, 2, b"bytes")
                )
                await client._request(Op.INVALIDATE, pack_page_lsn(5, 3))

            loop_call(thread, scenario)
            assert server.replica_store.get(5) is None
            assert server.replica_store.invalidations == 1

    def test_offer_then_fetch_far_round_trips_at_the_exact_lsn(self):
        system, server = far_node_server()
        with ServerThread(server=server) as thread:
            async def scenario(client):
                await client._request(
                    Op.OFFER_FAR, pack_page_lsn_blob(3, 7, b"payload")
                )
                hit = await client._request(Op.FETCH_FAR, pack_page_lsn(3, 7))
                with pytest.raises(ServerError) as excinfo:
                    await client._request(Op.FETCH_FAR, pack_page_lsn(3, 6))
                return hit, excinfo.value.code

            hit, miss_code = loop_call(thread, scenario)
            assert hit == b"payload"
            assert miss_code == ErrorCode.NOT_FOUND

    def test_far_opcodes_on_a_data_node_are_unknown(self):
        system, server = data_node_server()
        with ServerThread(server=server) as thread:
            async def scenario(client):
                with pytest.raises(ServerError) as excinfo:
                    await client._request(
                        Op.OFFER_FAR, pack_page_lsn_blob(3, 7, b"x")
                    )
                return excinfo.value.code

            assert loop_call(thread, scenario) == ErrorCode.UNKNOWN_OP

    def test_stats_reports_the_node_block(self):
        system, server = data_node_server()
        with ServerThread(server=server) as thread:
            stats = loop_call(thread, lambda c: c.stats())
            node = stats["node"]
            assert node["node_id"] == "node-0"
            assert node["epoch"] == 0
            assert node["owned_slots"] == server.cluster_map.slots
            assert node["is_far_node"] is False

    def test_base_page_server_rejects_every_cluster_opcode(self):
        system = BufferSystem.build(
            policy="LRU", capacity=8, page_size=PAGE_SIZE
        )
        system.disk.store(make_seed_page(1, 1, PAGE_SIZE))
        with ServerThread(system, page_size=PAGE_SIZE) as thread:
            async def scenario(client):
                codes = []
                for operation in sorted(CLUSTER_OPS):
                    payload = (
                        pack_page_lsn_blob(1, 1, b"x")
                        if operation in (Op.REPLICATE, Op.OFFER_FAR)
                        else pack_page_lsn(1, 1)
                    )
                    if operation is Op.OWNERSHIP:
                        payload = b""
                    with pytest.raises(ServerError) as excinfo:
                        await client._request(operation, payload)
                    codes.append(excinfo.value.code)
                # The connection survives all five rejections.
                assert (await client.fetch(1)).page_id == 1
                return codes

            codes = loop_call(thread, scenario)
            assert codes == [ErrorCode.UNKNOWN_OP] * len(CLUSTER_OPS)
