"""Tests for binary page serialization, FileDisk, and tree save/load."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.buffer.manager import BufferManager
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Rect
from repro.storage.disk import DiskError
from repro.storage.page import Page, PageEntry, PageType
from repro.storage.serialization import (
    FileDisk,
    decode_page,
    encode_page,
    load_tree,
    max_entries_for,
    save_tree,
)


def sample_page(page_id=3, entries=5):
    page = Page(page_id=page_id, page_type=PageType.DIRECTORY, level=2)
    for index in range(entries):
        page.entries.append(
            PageEntry(
                mbr=Rect(index * 0.1, 0.0, index * 0.1 + 0.05, 0.5),
                child=index * 7,
                payload=None if index % 2 else index,
            )
        )
    return page


class TestPageCodec:
    def test_roundtrip(self):
        page = sample_page()
        clone = decode_page(encode_page(page), page.page_id)
        assert clone.page_type is page.page_type
        assert clone.level == page.level
        assert len(clone.entries) == len(page.entries)
        for original, copied in zip(page.entries, clone.entries):
            assert copied.mbr == original.mbr
            assert copied.child == original.child
            assert copied.payload == original.payload

    def test_fixed_size(self):
        assert len(encode_page(sample_page(), page_size=4096)) == 4096

    def test_empty_page_roundtrip(self):
        page = Page(page_id=0, page_type=PageType.DATA, level=0)
        clone = decode_page(encode_page(page), 0)
        assert clone.entries == []
        assert clone.page_type is PageType.DATA

    def test_overfull_page_rejected(self):
        page = Page(page_id=0, page_type=PageType.DATA)
        for index in range(max_entries_for(256) + 1):
            page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=index))
        with pytest.raises(ValueError):
            encode_page(page, page_size=256)

    def test_non_integer_payload_rejected(self):
        page = Page(page_id=0, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload="name"))
        with pytest.raises(ValueError):
            encode_page(page)

    def test_corrupt_magic_rejected(self):
        blob = bytearray(encode_page(sample_page()))
        blob[0] = 0xFF
        with pytest.raises(ValueError):
            decode_page(bytes(blob), 3)

    def test_truncated_blob_rejected(self):
        blob = encode_page(sample_page())
        with pytest.raises(ValueError):
            decode_page(blob[:3], 3)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=10),
                st.integers(min_value=0, max_value=2**40),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, raw_entries):
        page = Page(page_id=1, page_type=PageType.DATA, level=0)
        for x, y, w, h, payload in raw_entries:
            page.entries.append(
                PageEntry(mbr=Rect(x, y, x + w, y + h), payload=payload)
            )
        clone = decode_page(encode_page(page), 1)
        assert [e.payload for e in clone.entries] == [
            e.payload for e in page.entries
        ]
        for original, copied in zip(page.entries, clone.entries):
            assert copied.mbr == original.mbr


class TestFileDisk:
    def test_store_read_roundtrip(self, tmp_path):
        with FileDisk(tmp_path / "pages.db") as disk:
            disk.store(sample_page(page_id=2))
            page = disk.read(2)
            assert page.page_id == 2
            assert len(page.entries) == 5
            assert disk.stats.reads == 1

    def test_missing_page_raises(self, tmp_path):
        with FileDisk(tmp_path / "pages.db") as disk:
            with pytest.raises(KeyError):
                disk.read(5)

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "pages.db"
        with FileDisk(path) as disk:
            disk.store(sample_page(page_id=0))
            disk.store(sample_page(page_id=4))
        with FileDisk(path) as reopened:
            assert reopened.page_ids() == [0, 4]
            assert len(reopened.read(4).entries) == 5

    def test_delete_frees_slot(self, tmp_path):
        path = tmp_path / "pages.db"
        with FileDisk(path) as disk:
            disk.store(sample_page(page_id=1))
            disk.delete(1)
            assert 1 not in disk
        with FileDisk(path) as reopened:
            assert 1 not in reopened

    def test_failure_injection(self, tmp_path):
        with FileDisk(tmp_path / "pages.db") as disk:
            disk.store(sample_page(page_id=1))
            disk.fail_reads.add(1)
            with pytest.raises(DiskError):
                disk.read(1)

    def test_sequential_detection(self, tmp_path):
        with FileDisk(tmp_path / "pages.db") as disk:
            for page_id in range(3):
                disk.store(sample_page(page_id=page_id))
            disk.read(0)
            disk.read(1)
            disk.read(2)
            assert disk.stats.sequential_reads == 2

    def test_page_size_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FileDisk(tmp_path / "pages.db", page_size=8)

    def test_buffer_manager_on_file_disk(self, tmp_path):
        with FileDisk(tmp_path / "pages.db") as disk:
            for page_id in range(6):
                disk.store(sample_page(page_id=page_id))
            buffer = BufferManager(disk, 3, LRU())
            for page_id in [0, 1, 2, 0, 3, 4, 0, 5]:
                buffer.fetch(page_id)
            assert buffer.stats.misses == disk.stats.reads
            assert len(buffer) <= 3


class TestTreeSaveLoad:
    def test_saved_tree_answers_identically(self, small_tree, tmp_path):
        path = tmp_path / "tree.db"
        save_tree(small_tree, path)
        loaded = load_tree(path)
        try:
            window = Rect(0.35, 0.35, 0.6, 0.6)
            assert sorted(loaded.window_query(window)) == sorted(
                small_tree.window_query(window)
            )
            assert loaded.height == small_tree.height
            assert loaded.entry_count == small_tree.entry_count
        finally:
            loaded.pagefile.disk.close()

    def test_loaded_tree_queryable_through_buffer(self, small_tree, tmp_path):
        path = tmp_path / "tree.db"
        save_tree(small_tree, path)
        loaded = load_tree(path)
        try:
            buffer = BufferManager(loaded.pagefile.disk, 16, ASB())
            window = Rect(0.4, 0.4, 0.55, 0.55)
            with buffer.query_scope():
                results = loaded.window_query(window, buffer)
            assert sorted(results) == sorted(small_tree.window_query(window))
            assert buffer.stats.misses > 0
        finally:
            loaded.pagefile.disk.close()

    def test_mutable_load_supports_updates(self, small_tree, tmp_path):
        path = tmp_path / "tree.db"
        save_tree(small_tree, path)
        loaded = load_tree(path, mutable=True)
        loaded.insert(Rect(0.01, 0.01, 0.02, 0.02), 999_999)
        loaded.validate()
        assert 999_999 in loaded.window_query(Rect(0.0, 0.0, 0.05, 0.05))

    def test_save_overwrites_existing_file(self, small_tree, tmp_path):
        path = tmp_path / "tree.db"
        save_tree(small_tree, path)
        save_tree(small_tree, path)  # must not accumulate stale pages
        loaded = load_tree(path)
        try:
            assert len(loaded.all_page_ids()) == len(small_tree.all_page_ids())
        finally:
            loaded.pagefile.disk.close()
