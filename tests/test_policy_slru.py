"""Tests for SLRU, the static LRU + spatial combination (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.slru import SLRU, select_from_candidates
from repro.buffer.policies.spatial import SpatialPolicy
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def square_disk(sizes):
    """Page i holds one square entry of the given area."""
    disk = SimulatedDisk()
    for page_id, area in enumerate(sizes):
        side = area**0.5
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, side, side), payload=page_id))
        disk.store(page)
    return disk


class TestConstruction:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            SLRU(candidate_fraction=0.0)
        with pytest.raises(ValueError):
            SLRU(candidate_fraction=1.5)

    def test_unknown_criterion_raises(self):
        with pytest.raises(ValueError):
            SLRU(criterion="Q")

    def test_name_shows_fraction(self):
        assert SLRU(candidate_fraction=0.25).name == "SLRU 25%"
        assert SLRU(candidate_fraction=0.5).name == "SLRU 50%"

    def test_candidate_count_scales_with_capacity(self):
        policy = SLRU(candidate_fraction=0.25)
        BufferManager(square_disk([1.0] * 20), 8, policy)
        assert policy.candidate_count() == 2


class TestVictimRule:
    def test_victim_is_smallest_in_lru_candidate_set(self):
        # Capacity 4, fraction 0.5 -> candidate set = 2 LRU-oldest pages.
        disk = square_disk([100.0, 1.0, 50.0, 2.0, 3.0])
        policy = SLRU(candidate_fraction=0.5)
        buffer = BufferManager(disk, 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        # LRU order: 0, 1, 2, 3.  Candidates = {0 (area 100), 1 (area 1)}.
        # The spatial criterion picks page 1, although page 0 is older.
        buffer.fetch(4)
        assert not buffer.contains(1)
        assert buffer.contains(0)

    def test_small_page_outside_candidates_is_safe(self):
        # Candidate set of 1 degenerates to plain LRU.
        disk = square_disk([100.0, 1.0, 50.0, 2.0, 3.0])
        policy = SLRU(candidate_fraction=0.25)
        buffer = BufferManager(disk, 4, policy)
        for page_id in range(4):
            buffer.fetch(page_id)
        buffer.fetch(4)  # candidate set = {0}; evict 0 despite its size
        assert not buffer.contains(0)
        assert buffer.contains(1)

    def test_fraction_one_equals_pure_spatial(self):
        sizes = [9.0, 4.0, 25.0, 1.0, 16.0, 36.0]
        accesses = [0, 1, 2, 0, 3, 4, 1, 5, 2, 0, 4, 3, 5]

        def run(policy):
            buffer = BufferManager(square_disk(sizes), 3, policy)
            for page_id in accesses:
                buffer.fetch(page_id)
            return buffer.resident_ids(), buffer.stats.misses

        assert run(SLRU(candidate_fraction=1.0)) == run(SpatialPolicy("A"))

    def test_tiny_candidate_set_equals_lru(self):
        sizes = [9.0, 4.0, 25.0, 1.0, 16.0, 36.0]
        accesses = [0, 1, 2, 0, 3, 4, 1, 5, 2, 0, 4, 3, 5]

        def run(policy):
            buffer = BufferManager(square_disk(sizes), 3, policy)
            for page_id in accesses:
                buffer.fetch(page_id)
            return buffer.resident_ids(), buffer.stats.misses

        # fraction small enough that ceil(f * capacity) == 1
        assert run(SLRU(candidate_fraction=0.01)) == run(LRU())


class TestSelectFromCandidates:
    def test_helper_orders_by_recency_then_criterion(self):
        disk = square_disk([100.0, 1.0, 50.0])
        buffer = BufferManager(disk, 3, LRU())
        for page_id in range(3):
            buffer.fetch(page_id)
        frames = list(buffer.frames.values())
        victim = select_from_candidates(frames, candidate_count=2, criterion="A")
        assert victim.page_id == 1  # smaller of the two oldest

    def test_candidate_count_clamped(self):
        disk = square_disk([4.0, 9.0])
        buffer = BufferManager(disk, 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        frames = list(buffer.frames.values())
        victim = select_from_candidates(frames, candidate_count=99, criterion="A")
        assert victim.page_id == 0  # smallest area overall
        victim = select_from_candidates(frames, candidate_count=0, criterion="A")
        assert victim.page_id == 0  # clamped to 1 -> LRU-oldest
