"""Tests for the observability subsystem (repro.obs).

Covers the event model and sinks, the manager/policy emission contract
(kinds, ordering, zero-cost-when-disabled), windowed metrics, the
partitioned buffer's observer propagation, and JSON-lines trace
persistence with deterministic replay.
"""

from __future__ import annotations

import random

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.partitioned import PartitionedBufferManager
from repro.buffer.policies import ASB, LRU, SpatialPolicy
from repro.geometry.rect import Rect
from repro.obs import (
    EVENT_KINDS,
    BufferEvent,
    EvictionAgeHistogram,
    Fanout,
    LevelHitCounters,
    RecordedTrace,
    RollingHitRatio,
    TraceRecorder,
    WindowedMetrics,
    record_run,
    replay_recorded,
)
from repro.obs.trace import disk_from_catalogue
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def make_disk(n_pages=10, levels=False):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        level = (page_id % 3) if levels else 0
        page_type = PageType.DIRECTORY if level > 0 else PageType.DATA
        page = Page(page_id=page_id, page_type=page_type, level=level)
        side = float(page_id + 1)
        page.entries.append(
            PageEntry(mbr=Rect(0, 0, side, side), payload=page_id)
        )
        disk.store(page)
    return disk


def workload(n_requests=200, n_pages=10, seed=3):
    """A deterministic (page_id, query) stream with a hot set."""
    rng = random.Random(seed)
    requests = []
    query = 0
    for position in range(n_requests):
        if position % 5 == 0:
            query += 1
        if rng.random() < 0.7:
            page_id = rng.randrange(max(1, n_pages // 3))
        else:
            page_id = rng.randrange(n_pages)
        requests.append((page_id, query))
    return requests


class TestEventModel:
    def test_kinds_are_closed_set(self):
        assert EVENT_KINDS == (
            "fetch", "hit", "miss", "evict", "writeback", "promote", "adapt",
            "wal_append", "wal_fsync", "bg_flush", "checkpoint", "recover",
            "req_queued", "req_admitted", "req_rejected", "req_timeout",
            "tune_epoch", "tune_retune", "tune_switch",
            "cluster_route", "cluster_invalidate", "far_hit",
        )

    def test_to_dict_drops_none_fields(self):
        event = BufferEvent(kind="fetch", clock=3, page_id=7, query=1)
        assert event.to_dict() == {
            "kind": "fetch", "clock": 3, "page_id": 7, "query": 1,
        }

    def test_dict_roundtrip(self):
        event = BufferEvent(
            kind="evict", clock=9, page_id=2, dirty=False, age=5
        )
        assert BufferEvent.from_dict(event.to_dict()) == event

    def test_recorder_filters_kinds(self):
        recorder = TraceRecorder(kinds=("evict",))
        recorder.emit(BufferEvent(kind="fetch", clock=1, page_id=0))
        recorder.emit(BufferEvent(kind="evict", clock=2, page_id=0, age=1))
        assert len(recorder) == 1
        assert recorder.events[0].kind == "evict"

    def test_fanout_feeds_all_sinks_in_order(self):
        first, second = TraceRecorder(), TraceRecorder()
        Fanout(first, second).emit(BufferEvent(kind="fetch", clock=1))
        assert len(first) == 1 and len(second) == 1


class TestManagerEmission:
    def test_disabled_by_default(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        assert buffer.observer is None
        buffer.fetch(0)  # must not fail without a sink

    def test_hit_and_miss_events(self):
        recorder = TraceRecorder()
        buffer = BufferManager(make_disk(), 2, LRU(), observer=recorder)
        buffer.fetch(0)
        buffer.fetch(0)
        kinds = [event.kind for event in recorder.events]
        assert kinds == ["fetch", "miss", "fetch", "hit"]
        hit = recorder.events[-1]
        assert hit.page_id == 0
        assert hit.correlated is False  # unscoped requests are uncorrelated
        assert hit.level == 0

    def test_correlated_flag_inside_query_scope(self):
        recorder = TraceRecorder()
        buffer = BufferManager(make_disk(), 2, LRU(), observer=recorder)
        with buffer.query_scope():
            buffer.fetch(0)
            buffer.fetch(0)
        hit = recorder.events[-1]
        assert hit.kind == "hit" and hit.correlated is True

    def test_eviction_order_writeback_then_evict(self):
        recorder = TraceRecorder()
        buffer = BufferManager(make_disk(), 1, LRU(), observer=recorder)
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.fetch(1)  # evicts dirty page 0
        kinds = [event.kind for event in recorder.events]
        assert kinds == ["fetch", "miss", "fetch", "miss", "writeback", "evict"]
        evict = recorder.events[-1]
        assert evict.page_id == 0
        assert evict.dirty is True
        assert evict.age == 1  # loaded at clock 1, evicted at clock 2

    def test_flush_emits_writebacks(self):
        recorder = TraceRecorder(kinds=("writeback",))
        buffer = BufferManager(make_disk(), 4, LRU(), observer=recorder)
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.mark_dirty(0)
        buffer.mark_dirty(1)
        buffer.flush()
        assert sorted(event.page_id for event in recorder.events) == [0, 1]

    def test_discard_emits_evict(self):
        recorder = TraceRecorder(kinds=("evict",))
        buffer = BufferManager(make_disk(), 4, LRU(), observer=recorder)
        buffer.fetch(0)
        buffer.discard(0)
        assert recorder.events[0].page_id == 0

    def test_clocks_are_monotonic(self):
        recorder = TraceRecorder()
        buffer = BufferManager(make_disk(), 3, LRU(), observer=recorder)
        for page_id, _ in workload(60):
            buffer.fetch(page_id)
        clocks = [event.clock for event in recorder.events]
        assert clocks == sorted(clocks)


class TestPolicyEmission:
    def test_asb_promote_and_adapt(self):
        recorder = TraceRecorder()
        disk = make_disk(12)
        policy = ASB(overflow_fraction=0.4)
        buffer = BufferManager(disk, 8, policy, observer=recorder)
        # Fill, overflow, then re-request a demoted page to force promotion.
        for page_id in range(12):
            buffer.fetch(page_id)
        for page_id in list(policy.overflow_ids()):
            buffer.fetch(page_id)
        promotes = [e for e in recorder.events if e.kind == "promote"]
        adapts = [e for e in recorder.events if e.kind == "adapt"]
        assert promotes, "overflow hits must emit promote events"
        assert len(adapts) == len(promotes)
        for event in adapts:
            assert 1 <= event.size <= policy.main_capacity
            assert event.delta in (-policy._step, 0, policy._step)

    def test_adapt_events_match_record_trace(self):
        """The event stream and the legacy record_trace knob agree."""
        recorder = TraceRecorder(kinds=("adapt",))
        policy = ASB(overflow_fraction=0.4, record_trace=True)
        buffer = BufferManager(make_disk(12), 8, policy, observer=recorder)
        for page_id, _ in workload(300, n_pages=12):
            buffer.fetch(page_id)
        assert [(e.clock, e.size) for e in recorder.events] == policy.trace


class TestWindowedMetrics:
    def test_rolling_hit_ratio_window(self):
        rolling = RollingHitRatio(window=4)
        for hit in [False, False, True, True, True, True]:
            rolling.emit(
                BufferEvent(kind="hit" if hit else "miss", clock=0, page_id=0)
            )
        assert rolling.ratio == 1.0  # last 4 were hits
        assert rolling.overall_ratio == pytest.approx(4 / 6)

    def test_rolling_ratio_empty_is_zero(self):
        assert RollingHitRatio().ratio == 0.0

    def test_rolling_window_must_be_positive(self):
        with pytest.raises(ValueError):
            RollingHitRatio(window=0)

    def test_eviction_age_buckets_are_power_of_two(self):
        histogram = EvictionAgeHistogram()
        for age in [1, 2, 3, 4, 5, 100]:
            histogram.emit(
                BufferEvent(kind="evict", clock=0, page_id=0, age=age)
            )
        assert histogram.total == 6
        buckets = dict(histogram.buckets())
        assert buckets[1] == 1      # age 1
        assert buckets[2] == 1      # age 2
        assert buckets[4] == 2      # ages 3, 4
        assert buckets[8] == 1      # age 5
        assert buckets[128] == 1    # age 100

    def test_level_hit_counters(self):
        counters = LevelHitCounters()
        recorder = Fanout(counters)
        buffer = BufferManager(make_disk(9, levels=True), 4, LRU(),
                               observer=recorder)
        for page_id, _ in workload(120, n_pages=9):
            buffer.fetch(page_id)
        assert counters.levels()
        for level in counters.levels():
            assert 0.0 <= counters.ratio(level) <= 1.0
        total = sum(counters.hits.values()) + sum(counters.misses.values())
        assert total == buffer.stats.requests

    def test_windowed_metrics_summary_matches_stats(self):
        metrics = WindowedMetrics(window=1_000)
        buffer = BufferManager(make_disk(), 3, LRU(), observer=metrics)
        for page_id, _ in workload(150):
            buffer.fetch(page_id)
        summary = metrics.summary()
        assert summary["overall_hit_ratio"] == pytest.approx(
            buffer.stats.hit_ratio
        )
        assert summary["rolling_hit_ratio"] == pytest.approx(
            buffer.stats.hit_ratio
        )  # window covers the whole run
        assert summary["evictions"] == buffer.stats.evictions


class TestPartitionedObserver:
    def _partitioned(self, observer=None):
        disk = SimulatedDisk()
        for page_id in range(6):
            page_type = PageType.DATA if page_id < 3 else PageType.DIRECTORY
            page = Page(page_id=page_id, page_type=page_type,
                        level=0 if page_id < 3 else 1)
            page.entries.append(
                PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id)
            )
            disk.store(page)
        return PartitionedBufferManager(
            disk,
            {
                PageType.DATA: (2, LRU()),
                PageType.DIRECTORY: (2, LRU()),
            },
            observer=observer,
        )

    def test_constructor_observer_reaches_all_partitions(self):
        recorder = TraceRecorder()
        buffers = self._partitioned(observer=recorder)
        buffers.fetch(0)  # data partition
        buffers.fetch(4)  # directory partition
        pages = {event.page_id for event in recorder.events}
        assert pages == {0, 4}

    def test_observer_setter_propagates(self):
        buffers = self._partitioned()
        assert buffers.observer is None
        recorder = TraceRecorder()
        buffers.observer = recorder
        buffers.fetch(1)
        buffers.fetch(5)
        assert {e.kind for e in recorder.events} == {"fetch", "miss"}
        buffers.observer = None
        buffers.fetch(1)
        assert len(recorder.events) == 4  # detached: nothing new


class TestRecordedTrace:
    def _recorded(self, policy=None, capacity=4):
        return record_run(
            workload(200), make_disk(), policy or LRU(), capacity
        )

    def test_requests_reproduce_the_input_stream(self):
        requests = workload(200)
        recorded = record_run(requests, make_disk(), LRU(), 4)
        assert recorded.requests() == requests

    def test_recording_does_not_touch_source_disk(self):
        disk = make_disk()
        record_run(workload(50), disk, LRU(), 4)
        assert disk.stats.reads == 0

    def test_jsonl_roundtrip(self, tmp_path):
        recorded = self._recorded()
        path = tmp_path / "trace.jsonl"
        recorded.save(path)
        loaded = RecordedTrace.load(path)
        assert loaded.policy == recorded.policy
        assert loaded.capacity == recorded.capacity
        assert loaded.events == recorded.events
        assert loaded.stats == recorded.stats
        assert loaded.catalogue == recorded.catalogue

    def test_header_is_first_line(self, tmp_path):
        recorded = self._recorded()
        path = tmp_path / "trace.jsonl"
        recorded.save(path)
        first = path.read_text(encoding="utf-8").splitlines()[0]
        assert '"format": "repro-obs-trace"' in first

    def test_rejects_foreign_files(self):
        with pytest.raises(ValueError):
            RecordedTrace.from_jsonl('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            RecordedTrace.from_jsonl("")

    def test_replay_is_deterministic(self):
        recorded = self._recorded()
        replayed = replay_recorded(recorded, LRU())
        assert replayed.events == recorded.events
        assert replayed.stats == recorded.stats

    def test_counterfactual_replay_other_policy(self):
        recorded = self._recorded()
        replayed = replay_recorded(recorded, SpatialPolicy("A"))
        assert replayed.requests() == recorded.requests()
        assert replayed.policy == "A"
        # Same requests, different decisions: stats may differ, the
        # request count may not.
        assert replayed.stats["requests"] == recorded.stats["requests"]

    def test_disk_from_catalogue_rebuilds_metadata(self):
        recorded = self._recorded()
        disk = disk_from_catalogue(recorded.catalogue)
        for page_id, (type_value, level, mbrs) in recorded.catalogue.items():
            page = disk.peek(page_id)
            assert page.page_type.value == type_value
            assert page.level == level
            assert len(page.entries) == len(mbrs)

    def test_events_of_filters(self):
        recorded = self._recorded()
        assert all(
            event.kind in ("hit", "miss")
            for event in recorded.events_of("hit", "miss")
        )
        fetches = recorded.events_of("fetch")
        assert len(fetches) == int(recorded.stats["requests"])
