"""Tests for the ``repro.api`` facade and the policy registry."""

from __future__ import annotations

import warnings

import pytest

from repro.api import BufferSystem, build_buffer_system
from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferManager
from repro.buffer.policies import make_policy, policy_names
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.slru import SLRU
from repro.geometry.rect import Rect
from repro.obs.events import TraceRecorder
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.wal.durable import DurableDisk
from repro.wal.manager import DurabilityManager

PAGE_SIZE = 512


def make_page(page_id: int, payload: int = 0) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=payload)
    )
    return page


def seeded_disk(pages: int = 32) -> SimulatedDisk:
    disk = SimulatedDisk()
    for page_id in range(pages):
        disk.write(make_page(page_id, payload=page_id))
    disk.stats.reset()
    return disk


#: A deterministic access pattern with rereferences and working-set drift.
ACCESS_PATTERN = [0, 1, 2, 0, 1, 3, 4, 5, 0, 6, 7, 8, 2, 9, 10, 0, 1, 11]


class TestMakePolicy:
    def test_every_registered_name_builds(self):
        for name in policy_names():
            policy = make_policy(name)
            assert policy is not None

    def test_name_is_case_insensitive(self):
        assert make_policy("asb").name == make_policy("ASB").name

    def test_aliases_resolve(self):
        assert make_policy("TWOQ").name == make_policy("2Q").name
        assert make_policy("DOMAIN-SEPARATION").name == make_policy("DOMAIN").name

    def test_parameterised_lru_k_names(self):
        assert isinstance(make_policy("LRU-2"), LRUK)
        seven = make_policy("LRU-7")
        assert isinstance(seven, LRUK)
        assert seven.k == 7

    def test_keywords_are_forwarded(self):
        policy = make_policy("SLRU", candidate_fraction=0.5)
        assert policy.candidate_fraction == 0.5

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="LRU"):
            make_policy("NOT-A-POLICY")

    def test_unknown_keyword_is_a_typeerror_naming_accepted(self):
        with pytest.raises(TypeError, match="candidate_fraction"):
            make_policy("SLRU", fractions=0.5)


class TestDeprecatedKeywords:
    def test_slru_fraction_keyword_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="candidate_fraction"):
            policy = SLRU(fraction=0.4)
        assert policy.candidate_fraction == 0.4

    def test_asb_initial_fraction_keyword_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="candidate_fraction"):
            policy = ASB(initial_fraction=0.3)
        assert policy.candidate_fraction == 0.3

    def test_deprecated_properties_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            slru = SLRU(candidate_fraction=0.25)
            asb = ASB()
        with pytest.warns(DeprecationWarning):
            assert slru.fraction == 0.25
        with pytest.warns(DeprecationWarning):
            assert asb.initial_fraction == asb.candidate_fraction

    def test_canonical_keywords_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SLRU(candidate_fraction=0.25)
            ASB(candidate_fraction=0.25)


class TestBuildDefaults:
    def test_default_build_is_a_sequential_buffer(self):
        system = BufferSystem.build()
        assert isinstance(system.buffer, BufferManager)
        assert not isinstance(system.buffer, ConcurrentBufferManager)
        assert isinstance(system.disk, SimulatedDisk)
        assert system.policy_name == "LRU"
        assert system.durability is None
        assert system.recorder is None
        assert not system.is_concurrent

    def test_default_build_matches_hand_wiring_event_for_event(self):
        """The facade default is bit-identical to the seed construction."""
        hand_recorder = TraceRecorder()
        hand = BufferManager(
            seeded_disk(), 4, LRU(), observer=hand_recorder
        )
        for page_id in ACCESS_PATTERN:
            hand.fetch(page_id)

        facade_recorder = TraceRecorder()
        system = BufferSystem.build(
            policy="LRU", capacity=4, disk=seeded_disk(), trace=facade_recorder
        )
        for page_id in ACCESS_PATTERN:
            system.fetch(page_id)

        assert facade_recorder.events == hand_recorder.events
        assert system.stats_snapshot() == hand.stats.snapshot()

    def test_module_level_alias(self):
        system = build_buffer_system(policy="FIFO", capacity=8)
        assert system.policy_name == "FIFO"
        assert system.capacity == 8


class TestBuildVariants:
    def test_policy_instance_and_factory(self):
        instance = ASB()
        assert BufferSystem.build(policy=instance).buffer.policy is instance
        system = BufferSystem.build(policy=ASB, capacity=8)
        assert system.policy_name == ASB().name

    def test_policy_kwargs_are_forwarded(self):
        system = BufferSystem.build(
            policy="SLRU", policy_kwargs={"candidate_fraction": 0.5}
        )
        assert system.buffer.policy.candidate_fraction == 0.5

    def test_policy_instance_rejected_for_sharded_builds(self):
        with pytest.raises(ValueError, match="factory"):
            BufferSystem.build(policy=LRU(), shards=4)

    def test_sharded_build_is_concurrent(self):
        system = BufferSystem.build(policy="LRU", capacity=16, shards=4)
        assert isinstance(system.buffer, ConcurrentBufferManager)
        assert system.is_concurrent

    def test_trace_true_attaches_a_recorder(self):
        system = BufferSystem.build(trace=True, disk=seeded_disk())
        system.fetch(0)
        assert system.recorder is not None
        assert len(system.recorder.events) > 0

    def test_durability_true_builds_a_durable_stack(self):
        system = BufferSystem.build(
            durability=True, page_size=PAGE_SIZE, capacity=8
        )
        assert isinstance(system.disk, DurableDisk)
        assert isinstance(system.durability, DurabilityManager)
        system.disk.store(make_page(0))
        system.fetch(0)
        system.install(make_page(0, payload=9))
        assert system.commit() > 0
        system.close()

    def test_durability_mapping_forwards_options(self):
        system = BufferSystem.build(
            durability={"group_window": 4}, page_size=PAGE_SIZE
        )
        assert system.durability.wal.group_window == 4

    def test_durability_mapping_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="group_window"):
            BufferSystem.build(durability={"window": 4})

    def test_durability_requires_a_durable_disk(self):
        with pytest.raises(TypeError, match="DurableDisk"):
            BufferSystem.build(durability=True, disk=SimulatedDisk())

    def test_ready_durability_manager_must_match_disk(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        manager = DurabilityManager(disk)
        system = BufferSystem.build(durability=manager, disk=disk)
        assert system.durability is manager
        other = DurableDisk(page_size=PAGE_SIZE)
        with pytest.raises(ValueError, match="different disk"):
            BufferSystem.build(durability=manager, disk=other)

    def test_context_manager_drains(self):
        with BufferSystem.build(disk=seeded_disk(), capacity=4) as system:
            system.fetch(0)
            system.mark_dirty(0)
        assert system.disk.stats.writes == 1

    def test_commit_without_durability_flushes(self):
        system = BufferSystem.build(disk=seeded_disk(), capacity=4)
        system.fetch(1)
        system.mark_dirty(1)
        assert system.commit() == 0
        assert system.disk.stats.writes == 1

    def test_accessor_delegation(self):
        system = BufferSystem.build(disk=seeded_disk(), capacity=4)
        with system.query_scope():
            with system.pinned(3) as page:
                assert page.page_id == 3
        system.pin(3)
        system.unpin(3)
        system.discard(3)
        assert 3 not in system.resident_ids()
        assert len(system) <= system.capacity


class TestCoalescingFlag:
    def test_default_keeps_coalescing_on(self):
        system = BufferSystem.build(capacity=16, shards=4)
        assert system.buffer.coalesce is True

    def test_coalescing_off_is_wired_through(self):
        system = BufferSystem.build(capacity=16, shards=4, coalescing=False)
        assert system.buffer.coalesce is False

    def test_coalescing_off_requires_shards(self):
        """The sequential buffer has no in-flight table to disable."""
        with pytest.raises(ValueError, match="sharded"):
            BufferSystem.build(capacity=16, coalescing=False)

    def test_uncoalesced_build_serves_pages(self):
        durable = DurableDisk(page_size=PAGE_SIZE)
        for page_id in range(8):
            durable.store(make_page(page_id, payload=page_id))
        system = BufferSystem.build(
            disk=durable, capacity=4, shards=2, coalescing=False
        )
        for page_id in ACCESS_PATTERN:
            system.fetch(page_id % 8)
        stats = system.buffer.stats
        assert stats.hits + stats.misses == stats.requests
        assert system.buffer.coalesced_misses == 0


class TestBackgroundWritebackFlag:
    def test_default_leaves_flush_interval_alone(self):
        system = BufferSystem.build(durability=True, page_size=PAGE_SIZE)
        assert system.durability.flush_interval == 0

    def test_true_uses_the_default_interval(self):
        from repro.api import DEFAULT_WRITEBACK_INTERVAL

        system = BufferSystem.build(
            durability=True, background_writeback=True, page_size=PAGE_SIZE
        )
        assert system.durability.flush_interval == DEFAULT_WRITEBACK_INTERVAL

    def test_integer_sets_the_interval(self):
        system = BufferSystem.build(
            durability={"group_window": 4},
            background_writeback=16,
            page_size=PAGE_SIZE,
        )
        assert system.durability.flush_interval == 16
        assert system.durability.wal.group_window == 4

    def test_false_disables_the_flusher(self):
        system = BufferSystem.build(
            durability=True, background_writeback=False, page_size=PAGE_SIZE
        )
        assert system.durability.flush_interval == 0

    def test_requires_durability(self):
        with pytest.raises(ValueError, match="requires durability"):
            BufferSystem.build(background_writeback=True)

    def test_false_without_durability_is_a_no_op(self):
        system = BufferSystem.build(background_writeback=False)
        assert system.durability is None

    def test_rejects_double_specification(self):
        with pytest.raises(ValueError, match="not both"):
            BufferSystem.build(
                durability={"flush_interval": 8},
                background_writeback=16,
                page_size=PAGE_SIZE,
            )

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError, match="non-negative"):
            BufferSystem.build(
                durability=True, background_writeback=-1, page_size=PAGE_SIZE
            )

    def test_rejects_ready_manager(self):
        disk = DurableDisk(page_size=PAGE_SIZE)
        manager = DurabilityManager(disk)
        with pytest.raises(ValueError, match="ready"):
            BufferSystem.build(
                durability=manager, disk=disk, background_writeback=8
            )


class TestAdmissionFlag:
    def test_default_attaches_no_controller(self):
        assert BufferSystem.build().admission is None

    def test_true_attaches_a_controller(self):
        from repro.server.admission import AdmissionController

        system = BufferSystem.build(admission=True)
        assert isinstance(system.admission, AdmissionController)

    def test_mapping_forwards_limits(self):
        system = BufferSystem.build(
            admission={"max_inflight": 3, "max_queued": 5}
        )
        assert system.admission.max_inflight == 3
        assert system.admission.max_queued == 5

    def test_mapping_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="max_parallel"):
            BufferSystem.build(admission={"max_parallel": 3})

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="admission"):
            BufferSystem.build(admission=7)

    def test_ready_controller_is_adopted(self):
        from repro.server.admission import AdmissionController

        controller = AdmissionController(max_inflight=2)
        system = BufferSystem.build(admission=controller)
        assert system.admission is controller

    def test_snapshot_includes_admission(self):
        system = BufferSystem.build(admission=True)
        assert "admission" in system.stats_snapshot()
        assert "admission" not in BufferSystem.build().stats_snapshot()

    def test_page_server_prefers_the_system_controller(self):
        from repro.server.core import PageServer

        system = BufferSystem.build(
            capacity=16, shards=2, admission={"max_inflight": 3}
        )
        server = PageServer(system, max_inflight=99)
        assert server.admission is system.admission
        assert server.admission.max_inflight == 3

    def test_page_server_builds_its_own_without_one(self):
        from repro.server.core import PageServer

        system = BufferSystem.build(capacity=16, shards=2)
        server = PageServer(system, max_inflight=99)
        assert server.admission is not None
        assert server.admission.max_inflight == 99
