"""Tests for pages, the simulated disk, and the page file."""

from __future__ import annotations

import pytest

from repro.geometry.rect import Rect
from repro.storage.disk import DiskError, LatencyModel, SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.storage.pagefile import PageFile


def make_page(page_id=0, page_type=PageType.DATA, level=0, rects=()):
    page = Page(page_id=page_id, page_type=page_type, level=level)
    for index, rect in enumerate(rects):
        page.entries.append(PageEntry(mbr=rect, payload=index))
    return page


class TestPageType:
    def test_type_ranks_order_eviction_preference(self):
        assert PageType.OBJECT.type_rank < PageType.DATA.type_rank
        assert PageType.DATA.type_rank < PageType.DIRECTORY.type_rank


class TestPage:
    def test_empty_page_has_no_mbr(self):
        assert make_page().mbr() is None

    def test_mbr_covers_entries(self):
        page = make_page(
            rects=[Rect(0.0, 0.0, 1.0, 1.0), Rect(2.0, 2.0, 3.0, 3.0)]
        )
        assert page.mbr() == Rect(0.0, 0.0, 3.0, 3.0)

    def test_entry_mbrs(self):
        rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(0.5, 0.5, 2.0, 2.0)]
        assert make_page(rects=rects).entry_mbrs() == rects

    def test_children_skips_payload_entries(self):
        page = make_page()
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), child=7))
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload="x"))
        assert page.children() == [7]

    def test_is_leaf(self):
        assert make_page(level=0).is_leaf
        assert not make_page(level=2).is_leaf

    def test_len(self):
        assert len(make_page(rects=[Rect(0, 0, 1, 1)])) == 1


class TestSimulatedDisk:
    def test_read_counts_access(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=1))
        assert disk.stats.reads == 0
        disk.read(1)
        assert disk.stats.reads == 1

    def test_peek_and_store_are_unaccounted(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=1))
        disk.peek(1)
        assert disk.stats.reads == 0
        assert disk.stats.writes == 0

    def test_write_counts_access(self):
        disk = SimulatedDisk()
        disk.write(make_page(page_id=1))
        assert disk.stats.writes == 1

    def test_missing_page_raises_keyerror(self):
        with pytest.raises(KeyError):
            SimulatedDisk().read(99)

    def test_sequential_vs_random_reads(self):
        disk = SimulatedDisk(LatencyModel(random_ms=10.0, sequential_ms=1.0))
        for page_id in (5, 6, 7, 3):
            disk.store(make_page(page_id=page_id))
        disk.read(5)  # random (first)
        disk.read(6)  # sequential
        disk.read(7)  # sequential
        disk.read(3)  # random
        assert disk.stats.sequential_reads == 2
        assert disk.stats.random_reads == 2
        assert disk.stats.elapsed_ms == pytest.approx(22.0)

    def test_failure_injection_read(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=1))
        disk.fail_reads.add(1)
        with pytest.raises(DiskError):
            disk.read(1)

    def test_failure_injection_write(self):
        disk = SimulatedDisk()
        disk.fail_writes.add(2)
        with pytest.raises(DiskError):
            disk.write(make_page(page_id=2))

    def test_contains_len_and_ids(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=3))
        disk.store(make_page(page_id=1))
        assert 3 in disk
        assert 99 not in disk
        assert len(disk) == 2
        assert disk.page_ids() == [1, 3]

    def test_delete(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=1))
        disk.delete(1)
        assert 1 not in disk

    def test_stats_reset(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=1))
        disk.read(1)
        disk.stats.reset()
        assert disk.stats.reads == 0
        assert disk.stats.elapsed_ms == 0.0

    def test_accesses_totals_reads_and_writes(self):
        disk = SimulatedDisk()
        disk.store(make_page(page_id=1))
        disk.read(1)
        disk.write(make_page(page_id=2))
        assert disk.stats.accesses == 2


class TestPageFile:
    def test_allocate_assigns_dense_ids(self):
        pagefile = PageFile()
        a = pagefile.allocate(PageType.DATA)
        b = pagefile.allocate(PageType.DIRECTORY, level=1)
        assert (a.page_id, b.page_id) == (0, 1)
        assert b.page_type is PageType.DIRECTORY
        assert b.level == 1

    def test_free_reuses_ids(self):
        pagefile = PageFile()
        a = pagefile.allocate(PageType.DATA)
        pagefile.free(a.page_id)
        b = pagefile.allocate(PageType.DATA)
        assert b.page_id == a.page_id

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            PageFile().free(5)

    def test_page_count(self):
        pagefile = PageFile()
        pagefile.allocate(PageType.DATA)
        pagefile.allocate(PageType.DATA)
        assert pagefile.page_count == 2

    def test_allocated_pages_are_on_disk_unaccounted(self):
        pagefile = PageFile()
        page = pagefile.allocate(PageType.DATA)
        assert pagefile.disk.stats.writes == 0
        assert pagefile.disk.peek(page.page_id) is page
