"""Regression tests for the free/discard interaction (PageFile + buffer).

The bug class: freeing a page whose frame is still resident (and possibly
dirty) leaves a stale frame behind.  When the id is reused by a later
allocation, the old frame shadows the new page's content — and if the old
frame was dirty, its eventual write-back clobbers the new page on disk.
``PageFile.free`` now discards the resident frame through the attached
accessor before releasing the id.
"""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Rect
from repro.storage.page import PageEntry, PageType
from repro.storage.pagefile import PageFile
from repro.sam.rstar import RStarTree


def entry(payload: int) -> PageEntry:
    return PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=payload)


class TestFreeDiscardsResidentFrame:
    def make_rig(self, capacity=4):
        pagefile = PageFile()
        buffer = BufferManager(pagefile.disk, capacity, LRU())
        pagefile.attach_accessor(buffer)
        return pagefile, buffer

    def test_freed_then_reused_id_serves_the_new_page(self):
        pagefile, buffer = self.make_rig()
        old = pagefile.allocate(PageType.DATA)
        old.entries.append(entry(111))
        fetched = buffer.fetch(old.page_id)
        fetched.entries.append(entry(222))
        buffer.mark_dirty(old.page_id)
        pagefile.free(old.page_id)
        reused = pagefile.allocate(PageType.DATA, level=1)
        assert reused.page_id == old.page_id
        served = buffer.fetch(reused.page_id)
        # Without the discard hook this served the stale (dirty) frame.
        assert served.level == 1
        assert served.entries == []

    def test_free_drops_dirty_frame_without_writeback(self):
        pagefile, buffer = self.make_rig()
        page = pagefile.allocate(PageType.DATA)
        buffer.fetch(page.page_id)
        buffer.mark_dirty(page.page_id)
        pagefile.free(page.page_id)
        assert not buffer.contains(page.page_id)
        assert buffer.stats.writebacks == 0  # dead content is not written
        assert pagefile.disk.stats.writes == 0

    def test_free_without_accessor_still_works(self):
        pagefile = PageFile()
        page = pagefile.allocate(PageType.DATA)
        pagefile.free(page.page_id)
        assert pagefile.page_count == 0

    def test_free_unknown_page_raises(self):
        pagefile, _ = self.make_rig()
        with pytest.raises(KeyError):
            pagefile.free(99)

    def test_detach_restores_old_behaviour(self):
        pagefile, buffer = self.make_rig()
        page = pagefile.allocate(PageType.DATA)
        buffer.fetch(page.page_id)
        pagefile.detach_accessor()
        pagefile.free(page.page_id)
        assert buffer.contains(page.page_id)  # no accessor, no discard


class TestViaAttachesAccessor:
    def test_via_scope_wires_the_pagefile(self):
        tree = RStarTree(max_dir_entries=4, max_data_entries=4)
        tree.bulk_load(
            (Rect(i / 10, 0.0, i / 10 + 0.05, 0.05), i) for i in range(30)
        )
        buffer = BufferManager(tree.pagefile.disk, 8, LRU())
        assert tree.pagefile._accessor is None
        with tree.via(buffer):
            assert tree.pagefile._accessor is buffer
        assert tree.pagefile._accessor is None
