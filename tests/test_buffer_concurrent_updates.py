"""Multi-threaded *update* workloads through the concurrent buffer service.

The read-path tests (test_buffer_concurrent.py) cover hit/miss accounting;
these cover the write path under threads: every dirty eviction writes back
exactly once, the per-thread counters merge to exact identities, and a
threaded index update/query mix leaves the tree consistent.
"""

from __future__ import annotations

import random
import threading

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.policies.lru import LRU
from repro.datasets.synthetic import us_mainland_like
from repro.geometry.rect import Rect
from repro.sam.rstar import RStarTree
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.workloads.updates import update_stream


def run_threads(workers, timeout=30.0):
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn), daemon=True) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker deadlocked (join timed out)"
    if errors:
        raise errors[0]


def make_disk(n_pages=64):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


class TestThreadedUpdateAccounting:
    """Page-level update streams over disjoint id partitions.

    Each thread works a private slice of the page ids, so the workload is
    deterministic in aggregate and the exact identities below must hold.
    """

    N_PAGES = 64
    THREADS = 4
    OPS_PER_THREAD = 400

    def drive(self, shards):
        disk = make_disk(self.N_PAGES)
        service = ConcurrentBufferManager(
            disk, 16, LRU, shards=shards
        )
        span = self.N_PAGES // self.THREADS

        def worker(index):
            rng = random.Random(1000 + index)
            ids = range(index * span, (index + 1) * span)

            def work():
                for _ in range(self.OPS_PER_THREAD):
                    page_id = rng.choice(ids)
                    service.fetch(page_id)
                    if rng.random() < 0.5:
                        service.mark_dirty(page_id)

            return work

        run_threads([worker(i) for i in range(self.THREADS)])
        return disk, service

    def test_exact_identities_after_final_flush(self):
        for shards in (1, 4):
            disk, service = self.drive(shards)
            service.flush()
            stats = service.stats
            assert stats.requests == self.THREADS * self.OPS_PER_THREAD
            assert stats.hits + stats.misses == stats.requests
            # Coalescing cannot happen: threads touch disjoint pages.
            assert disk.stats.reads == stats.misses
            # Every dirty frame is written back exactly once — either at
            # its eviction or by the final flush; never twice, never lost.
            assert disk.stats.writes == stats.writebacks

    def test_per_thread_counters_merge_cleanly(self):
        disk, service = self.drive(shards=4)
        merged = service.stats
        per_thread = service._registry
        assert len(per_thread) == self.THREADS
        assert merged.requests == sum(c.requests for c in per_thread)
        assert merged.hits == sum(c.hits for c in per_thread)
        assert merged.misses == sum(c.misses for c in per_thread)
        assert all(
            c.requests == self.OPS_PER_THREAD for c in per_thread
        )

    def test_no_writeback_without_updates(self):
        disk = make_disk(16)
        service = ConcurrentBufferManager(disk, 4, LRU, shards=2)

        def worker(index):
            def work():
                rng = random.Random(index)
                for _ in range(200):
                    service.fetch(rng.randrange(16))

            return work

        run_threads([worker(i) for i in range(3)])
        service.flush()
        assert disk.stats.writes == 0
        assert service.stats.writebacks == 0


class TestThreadedIndexUpdates:
    """A real index under a threaded update/query mix.

    Thread interleavings make exact counts non-deterministic here, so the
    assertions are the structural identities that must hold regardless.
    """

    def test_updates_and_queries_interleaved(self):
        dataset = us_mainland_like(n_objects=1_500, seed=21)
        tree = RStarTree(max_dir_entries=8, max_data_entries=8)
        tree.bulk_load(dataset.items())
        disk = tree.pagefile.disk
        service = ConcurrentBufferManager(disk, 24, LRU, shards=4)
        # One updater: two independent update streams over the same base
        # objects would conflict (both track liveness privately).  Write
        # concurrency with exact identities is covered page-level above.
        stream = update_stream(dataset, 200, seed=31)
        lock = threading.Lock()

        def updater(stream):
            def work():
                for op in stream:
                    # The tree structure itself is not thread-safe; the
                    # lock serialises structural changes while page
                    # traffic still runs through the shared service.
                    with lock:
                        with tree.via(service):
                            op.apply(tree)

            return work

        def querier(seed):
            def work():
                rng = random.Random(seed)
                for _ in range(40):
                    x, y = rng.random(), rng.random()
                    window = Rect(x, y, x + 0.05, y + 0.05)
                    with lock:
                        with tree.via(service):
                            list(tree.window_query(window))

            return work

        run_threads([updater(stream), querier(91), querier(92)])
        service.flush()
        stats = service.stats
        assert stats.hits + stats.misses == stats.requests
        assert disk.stats.writes == stats.writebacks
        # The tree survives: a full-space query streams without error.
        with tree.via(service):
            results = list(tree.window_query(Rect(0.0, 0.0, 1.0, 1.0)))
        assert len(results) > 0
