"""Tests for the buffer manager (policy-independent behaviour)."""

from __future__ import annotations

import pytest

from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType


def make_disk(n_pages=10):
    disk = SimulatedDisk()
    for page_id in range(n_pages):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        page.entries.append(PageEntry(mbr=Rect(0, 0, 1, 1), payload=page_id))
        disk.store(page)
    return disk


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferManager(make_disk(), 0, LRU())

    def test_miss_then_hit(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.fetch(0)
        buffer.fetch(0)
        assert buffer.stats.misses == 1
        assert buffer.stats.hits == 1
        assert buffer.stats.requests == 2

    def test_miss_reads_from_disk(self):
        disk = make_disk()
        buffer = BufferManager(disk, 4, LRU())
        buffer.fetch(3)
        assert disk.stats.reads == 1
        buffer.fetch(3)
        assert disk.stats.reads == 1  # hit: no further disk access

    def test_never_exceeds_capacity(self):
        buffer = BufferManager(make_disk(), 3, LRU())
        for page_id in range(10):
            buffer.fetch(page_id)
            assert len(buffer) <= 3

    def test_eviction_counted(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        for page_id in range(3):
            buffer.fetch(page_id)
        assert buffer.stats.evictions == 1

    def test_policy_already_attached_elsewhere_raises(self):
        policy = LRU()
        BufferManager(make_disk(), 2, policy)
        with pytest.raises(RuntimeError):
            BufferManager(make_disk(), 2, policy)

    def test_contains_and_resident_ids(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.fetch(2)
        buffer.fetch(5)
        assert buffer.contains(2)
        assert not buffer.contains(9)
        assert buffer.resident_ids() == [2, 5]


class TestPinning:
    def test_pinned_pages_survive_pressure(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.pin(0)
        for page_id in range(1, 8):
            buffer.fetch(page_id)
        assert buffer.contains(0)

    def test_all_pinned_raises_buffer_full(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        buffer.pin(1)
        with pytest.raises(BufferFullError):
            buffer.fetch(2)

    def test_unpin_restores_evictability(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        buffer.unpin(0)
        buffer.fetch(2)  # must not raise
        assert len(buffer) == 2

    def test_unpin_unpinned_raises(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        with pytest.raises(ValueError):
            buffer.unpin(0)

    def test_pin_nonresident_raises(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        with pytest.raises(KeyError):
            buffer.pin(0)

    def test_nested_pins(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.pin(0)
        buffer.pin(0)
        buffer.unpin(0)
        assert buffer.frames[0].pinned  # still pinned once
        buffer.unpin(0)
        assert not buffer.frames[0].pinned

    def test_buffer_full_raised_before_policy_runs(self):
        """The manager itself must guarantee BufferFullError when every
        frame is pinned — even for a policy whose victim selection would
        die with an opaque ValueError (min() over an empty candidate
        list).  Regression test for the manager-level guard."""
        from repro.buffer.policies.base import ReplacementPolicy

        class NaiveMinPolicy(ReplacementPolicy):
            name = "naive-min"

            def select_victim(self):
                # No empty-guard: min() raises ValueError when everything
                # is pinned.  The manager must never let that escape.
                return min(
                    self.buffer.evictable_frames(),
                    key=lambda frame: frame.last_access,
                ).page_id

        buffer = BufferManager(make_disk(), 2, NaiveMinPolicy())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        buffer.pin(1)
        with pytest.raises(BufferFullError):
            buffer.fetch(2)
        # Releasing one pin makes the same request succeed.
        buffer.unpin(1)
        buffer.fetch(2)
        assert buffer.contains(2)
        assert not buffer.contains(1)

    def test_buffer_full_with_nested_pins_and_recovery(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        buffer.pin(0)  # nested: still one pinned frame
        buffer.pin(1)
        with pytest.raises(BufferFullError):
            buffer.fetch(2)
        buffer.unpin(0)  # outer pin remains -> still full
        with pytest.raises(BufferFullError):
            buffer.fetch(2)
        buffer.unpin(0)
        buffer.fetch(2)  # now evictable again
        assert buffer.contains(2)


class TestPinnedGuard:
    """The RAII pin guard: with buffer.pinned(page_id) as page."""

    def test_pins_inside_block_and_releases_after(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        with buffer.pinned(0) as page:
            assert page.page_id == 0
            assert buffer.frames[0].pinned
            for page_id in range(1, 6):
                buffer.fetch(page_id)
            assert buffer.contains(0)  # survived the pressure
        assert not buffer.frames[0].pinned

    def test_unpins_on_exception(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        with pytest.raises(RuntimeError, match="boom"):
            with buffer.pinned(0):
                raise RuntimeError("boom")
        assert not buffer.frames[0].pinned

    def test_guards_nest(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        with buffer.pinned(0):
            with buffer.pinned(0):
                assert buffer.frames[0].pin_count == 2
            assert buffer.frames[0].pin_count == 1
        assert buffer.frames[0].pin_count == 0

    def test_fetch_inside_guard_counts_normally(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        with buffer.pinned(0):
            buffer.fetch(0)
        assert buffer.stats.requests == 2
        assert buffer.stats.hits == 1

    def test_guard_survives_forced_clear(self):
        """clear(force=True) inside a guard must not make the guard's exit
        blow up — the pin is gone, and exit tolerates that."""
        buffer = BufferManager(make_disk(), 2, LRU())
        with buffer.pinned(0):
            with pytest.warns(RuntimeWarning):
                buffer.clear(force=True)
        assert len(buffer) == 0


class TestDirtyPages:
    def test_writeback_on_eviction(self):
        disk = make_disk()
        buffer = BufferManager(disk, 1, LRU())
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.fetch(1)  # evicts page 0
        assert disk.stats.writes == 1
        assert buffer.stats.writebacks == 1

    def test_clean_pages_not_written(self):
        disk = make_disk()
        buffer = BufferManager(disk, 1, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        assert disk.stats.writes == 0

    def test_flush_writes_dirty_without_evicting(self):
        disk = make_disk()
        buffer = BufferManager(disk, 4, LRU())
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.flush()
        assert disk.stats.writes == 1
        assert buffer.contains(0)
        buffer.flush()  # now clean: no second write
        assert disk.stats.writes == 1

    def test_mark_dirty_nonresident_raises(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        with pytest.raises(KeyError):
            buffer.mark_dirty(3)

    def test_mark_dirty_invalidates_criteria_cache(self):
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        frame = buffer.frames[0]
        frame.crit_cache["A"] = 123.0
        buffer.mark_dirty(0)
        assert frame.crit_cache == {}


class TestClear:
    def test_clear_empties_and_resets(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.mark_dirty(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.stats.requests == 0
        assert buffer.stats.misses == 0

    def test_clear_flushes_dirty_pages(self):
        disk = make_disk()
        buffer = BufferManager(disk, 4, LRU())
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.clear()
        assert disk.stats.writes == 1

    def test_clear_with_pinned_frames_raises(self):
        """clear() must not silently drop pinned frames — callers holding
        pins would be left with dangling references."""
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        with pytest.raises(BufferFullError):
            buffer.clear()
        # The refused clear left everything untouched.
        assert buffer.contains(0) and buffer.contains(1)
        assert buffer.frames[0].pinned

    def test_clear_refused_before_flushing(self):
        """A refused clear must not have flushed anything either."""
        disk = make_disk()
        buffer = BufferManager(disk, 2, LRU())
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.pin(0)
        with pytest.raises(BufferFullError):
            buffer.clear()
        assert disk.stats.writes == 0
        assert buffer.frames[0].dirty

    def test_clear_force_unpins_with_warning(self):
        """clear(force=True) drops the pins with a warning; the full-buffer
        guard must not keep counting them afterwards."""
        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        buffer.pin(0)
        buffer.pin(1)
        with pytest.warns(RuntimeWarning):
            buffer.clear(force=True)
        for page_id in range(5):
            buffer.fetch(page_id)  # must evict freely again
        assert len(buffer) == 2

    def test_clear_without_pins_does_not_warn(self):
        import warnings

        buffer = BufferManager(make_disk(), 2, LRU())
        buffer.fetch(0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            buffer.clear()
        assert len(buffer) == 0


class TestQueryScopes:
    def test_scope_assigns_one_query_id(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        with buffer.query_scope() as query_id:
            buffer.fetch(0)
            buffer.fetch(1)
        assert buffer.frames[0].last_query == query_id
        assert buffer.frames[1].last_query == query_id

    def test_scopes_get_distinct_ids(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        with buffer.query_scope() as first:
            pass
        with buffer.query_scope() as second:
            pass
        assert first != second
        assert buffer.stats.queries == 2

    def test_unscoped_accesses_are_uncorrelated(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.fetch(0)
        first = buffer.frames[0].last_query
        buffer.fetch(0)
        assert buffer.frames[0].last_query != first

    def test_clock_advances_per_request(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        start = buffer.clock
        buffer.fetch(0)
        buffer.fetch(0)
        assert buffer.clock == start + 2


class TestInstallAndDiscard:
    def test_install_charges_no_read(self):
        disk = make_disk()
        buffer = BufferManager(disk, 4, LRU())
        new_page = Page(page_id=99, page_type=PageType.DATA)
        disk.store(new_page)
        buffer.install(new_page)
        assert buffer.contains(99)
        assert disk.stats.reads == 0
        assert buffer.frames[99].dirty  # never written: must flush later

    def test_install_evicts_when_full(self):
        disk = make_disk()
        buffer = BufferManager(disk, 2, LRU())
        buffer.fetch(0)
        buffer.fetch(1)
        new_page = Page(page_id=99, page_type=PageType.DATA)
        disk.store(new_page)
        buffer.install(new_page)
        assert len(buffer) == 2
        assert buffer.contains(99)

    def test_discard_drops_without_writeback(self):
        disk = make_disk()
        buffer = BufferManager(disk, 4, LRU())
        buffer.fetch(0)
        buffer.mark_dirty(0)
        buffer.discard(0)
        assert not buffer.contains(0)
        assert disk.stats.writes == 0  # dead page: no write-back

    def test_discard_counts_as_eviction(self):
        """discard() emits an evict event, so the stats must agree —
        event-stream replays and BufferStats count the same evictions."""
        from repro.obs.events import TraceRecorder

        recorder = TraceRecorder(kinds=("evict",))
        buffer = BufferManager(make_disk(), 4, LRU(), observer=recorder)
        buffer.fetch(0)
        buffer.discard(0)
        assert buffer.stats.evictions == 1
        assert len(recorder.events) == 1

    def test_discard_nonresident_counts_nothing(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.discard(7)
        assert buffer.stats.evictions == 0

    def test_discard_nonresident_is_noop(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.discard(7)  # must not raise

    def test_discard_pinned_raises(self):
        buffer = BufferManager(make_disk(), 4, LRU())
        buffer.fetch(0)
        buffer.pin(0)
        with pytest.raises(RuntimeError):
            buffer.discard(0)

    def test_install_replaces_stale_frame_for_reused_id(self):
        """The deallocation bug regression: after free + id reuse, the
        buffer must serve the NEW page, not the stale frame."""
        disk = make_disk()
        buffer = BufferManager(disk, 4, LRU())
        old = buffer.fetch(0)
        buffer.discard(0)
        replacement = Page(page_id=0, page_type=PageType.DIRECTORY, level=2)
        disk.store(replacement)
        buffer.install(replacement)
        assert buffer.fetch(0) is replacement
        assert buffer.fetch(0) is not old
