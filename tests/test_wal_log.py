"""Unit tests for the write-ahead log and the durable page store."""

from __future__ import annotations

import pytest

from repro.geometry.rect import Rect
from repro.storage.page import Page, PageEntry, PageType
from repro.wal.bytestore import FileByteStore, MemoryByteStore
from repro.wal.crash import CrashError, CrashInjector
from repro.wal.log import (
    CHECKPOINT,
    COMMIT,
    FREE,
    PAGE_IMAGE,
    WriteAheadLog,
)

PAGE_SIZE = 256


def make_page(page_id: int, payload: int = 0) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=payload)
    )
    return page


class TestAppendAndScan:
    def test_records_round_trip(self):
        wal = WriteAheadLog()
        lsn1 = wal.append_page_image(make_page(3, payload=9), PAGE_SIZE)
        lsn2 = wal.append_free(5)
        lsn3 = wal.commit()
        wal.append_checkpoint()
        wal.sync()
        records = list(wal.records())
        assert [r.lsn for r in records] == [lsn1, lsn2, lsn3, lsn3 + 1]
        assert [r.kind for r in records] == [PAGE_IMAGE, FREE, COMMIT,
                                             CHECKPOINT]
        assert records[0].page_id == 3
        assert len(records[0].payload) == PAGE_SIZE
        assert records[1].page_id == 5

    def test_lsns_are_dense_and_increasing(self):
        wal = WriteAheadLog()
        lsns = [wal.append_free(i) for i in range(10)]
        assert lsns == list(range(1, 11))

    def test_pending_records_invisible_until_fsync(self):
        wal = WriteAheadLog()
        wal.append_free(1)
        assert wal.pending_records == 1
        assert list(wal.records()) == []
        assert wal.flushed_lsn == 0
        wal.sync()
        assert wal.pending_records == 0
        assert wal.flushed_lsn == 1
        assert len(list(wal.records())) == 1


class TestGroupCommit:
    def test_window_one_fsyncs_every_commit(self):
        wal = WriteAheadLog(group_window=1)
        for _ in range(5):
            wal.commit()
        assert wal.stats.fsyncs == 5
        assert wal.stats.commits_per_fsync == 1.0

    def test_window_batches_fsyncs(self):
        wal = WriteAheadLog(group_window=4)
        for _ in range(8):
            wal.commit()
        assert wal.stats.commits == 8
        assert wal.stats.fsyncs == 2
        assert wal.stats.commits_per_fsync == 4.0

    def test_commit_durable_only_after_window_fills(self):
        wal = WriteAheadLog(group_window=3)
        lsn = wal.commit()
        assert wal.flushed_lsn < lsn
        wal.commit()
        lsn3 = wal.commit()
        assert wal.flushed_lsn == lsn3

    def test_flush_to_forces_early_fsync(self):
        wal = WriteAheadLog(group_window=100)
        lsn = wal.append_free(1)
        wal.flush_to(lsn)
        assert wal.flushed_lsn >= lsn

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog(group_window=0)


class TestTornTail:
    def test_torn_fsync_truncates_scan(self):
        crash = CrashInjector()
        wal = WriteAheadLog(crash=crash)
        wal.append_free(1)
        wal.sync()
        wal.append_free(2)
        wal.append_free(3)
        crash.arm("wal.fsync.torn")
        with pytest.raises(CrashError):
            wal.sync()
        survivor = WriteAheadLog(store=MemoryByteStore(wal.store.image()))
        lsns = [r.lsn for r in survivor.records()]
        # A torn fsync persists a *proper prefix* of the batch: record 1
        # (previously durable) always survives, record 3 never does.
        assert lsns in ([1], [1, 2])

    def test_reopen_continues_after_valid_prefix(self):
        wal = WriteAheadLog()
        wal.append_free(1)
        wal.append_free(2)
        wal.sync()
        reopened = WriteAheadLog(store=MemoryByteStore(wal.store.image()))
        assert reopened.flushed_lsn == 2
        lsn = reopened.append_free(3)
        assert lsn == 3
        reopened.sync()
        assert [r.lsn for r in reopened.records()] == [1, 2, 3]

    def test_corrupted_record_stops_scan(self):
        wal = WriteAheadLog()
        wal.append_free(1)
        wal.append_free(2)
        wal.sync()
        image = bytearray(wal.store.image())
        image[-3] ^= 0xFF  # flip a bit inside the second record
        damaged = WriteAheadLog(store=MemoryByteStore(bytes(image)))
        assert [r.lsn for r in damaged.records()] == [1]


class TestFileByteStore:
    def test_log_survives_reopen_from_file(self, tmp_path):
        path = tmp_path / "wal.bin"
        with FileByteStore(path) as store:
            wal = WriteAheadLog(store=store)
            wal.append_free(7)
            wal.sync()
        with FileByteStore(path) as store:
            reopened = WriteAheadLog(store=store)
            records = list(reopened.records())
        assert [(r.lsn, r.page_id) for r in records] == [(1, 7)]
