"""Tests of the expert-ensemble tuning surface.

Covers the PR-9 additions end to end:

* :class:`~repro.tuning.EnsemblePolicy` — the weighted plurality vote,
  mixture validation, in-place ``retune(weights=...)``;
* the controller's ``mode="ensemble"`` — multiplicative-weights updates
  that concentrate on the right expert and propagate to every shard;
* :class:`~repro.tuning.TuningSpec` — the typed tuning surface, its
  validation, and the deprecation shims for the old ``True``/mapping
  spellings of ``BufferSystem.build(tuning=...)``;
* the offline fit (:func:`~repro.tuning.fit_weights`) and the
  ``repro-tuning-weights`` artifact round-trip, including loading fitted
  weights as a live ensemble's starting mixture;
* registry hygiene: every policy's ``ParamSpec`` defaults round-trip
  through :func:`make_policy`, aliases share the canonical parameter
  space, and unknown names raise :class:`UnknownPolicyError`.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import BufferSystem
from repro.buffer.manager import BufferManager
from repro.buffer.policies import (
    POLICY_REGISTRY,
    UnknownPolicyError,
    make_policy,
    policy_names,
    policy_param_space,
)
from repro.geometry.rect import Rect
from repro.obs.trace import record_run
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.tuning import (
    DEFAULT_EXPERTS,
    EnsemblePolicy,
    FittedWeights,
    TuningConfig,
    TuningController,
    TuningSpec,
    fit_weights,
    multiplicative_update,
)

N_PAGES = 18


def build_disk() -> SimulatedDisk:
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        side = float(page_id % 5 + 1)
        page.entries.append(
            PageEntry(mbr=Rect(0, 0, side, side), payload=page_id)
        )
        disk.store(page)
    return disk


# ----------------------------------------------------------------------
# EnsemblePolicy
# ----------------------------------------------------------------------


class TestEnsemblePolicy:
    def test_builds_default_panel_from_names(self):
        policy = EnsemblePolicy()
        assert policy.expert_specs == DEFAULT_EXPERTS
        assert len(policy.weights) == len(DEFAULT_EXPERTS)
        assert policy.weights == tuple(
            pytest.approx(1.0 / len(DEFAULT_EXPERTS)) for _ in DEFAULT_EXPERTS
        )

    def test_dominant_expert_dictates_the_victim(self):
        # LRU and MRU disagree maximally on a sequential fill: whoever
        # holds nearly all the weight must win the vote.
        disk = build_disk()
        buffer = BufferManager(
            disk,
            3,
            EnsemblePolicy(experts=("LRU", "MRU"), weights=(0.98, 0.02)),
        )
        for page_id in range(3):
            buffer.fetch(page_id)
        buffer.fetch(3)
        assert 0 not in buffer.frames          # LRU evicts the oldest
        buffer.policy.retune(weights=(0.02, 0.98))
        buffer.fetch(4)
        assert 3 not in buffer.frames          # MRU evicts the newest

    def test_single_expert_ensemble_matches_the_expert(self):
        disk = build_disk()
        plain = BufferManager(build_disk(), 4, make_policy("LRU"))
        wrapped = BufferManager(disk, 4, EnsemblePolicy(experts=("LRU",)))
        stream = [0, 1, 2, 3, 4, 1, 5, 0, 6, 2, 7, 1, 8, 3, 0]
        decisions = []
        for buffer in (plain, wrapped):
            seen = []
            for page_id in stream:
                seen.append(buffer.contains(page_id))
                buffer.fetch(page_id)
            decisions.append(seen)
        assert decisions[0] == decisions[1]
        assert set(plain.frames) == set(wrapped.frames)

    def test_retune_renormalises(self):
        policy = EnsemblePolicy(experts=("LRU", "MRU"))
        policy.retune(weights=(3.0, 1.0))
        assert policy.weights == (0.75, 0.25)

    def test_rejects_bad_mixtures(self):
        with pytest.raises(ValueError):
            EnsemblePolicy(experts=("LRU", "MRU"), weights=(1.0,))
        with pytest.raises(ValueError):
            EnsemblePolicy(experts=("LRU", "MRU"), weights=(1.0, -0.5))
        with pytest.raises(ValueError):
            EnsemblePolicy(experts=("LRU", "MRU"), weights=(0.0, 0.0))
        with pytest.raises(ValueError):
            EnsemblePolicy(experts=())

    def test_unknown_expert_name_raises(self):
        with pytest.raises(UnknownPolicyError):
            EnsemblePolicy(experts=("LRU", "NOPE"))


# ----------------------------------------------------------------------
# multiplicative_update
# ----------------------------------------------------------------------


class TestMultiplicativeUpdate:
    def test_equal_rates_leave_weights_alone(self):
        weights = (0.7, 0.2, 0.1)
        assert multiplicative_update(weights, (0.5, 0.5, 0.5)) == pytest.approx(
            weights
        )

    def test_winner_gains_loser_keeps_the_floor(self):
        new = multiplicative_update(
            (0.5, 0.5), (0.9, 0.1), eta=10.0, weight_floor=0.01
        )
        assert new[0] > 0.9
        # The floor is applied before the final renormalisation, so the
        # loser keeps (about) the floor share — never collapses to zero.
        assert new[1] == pytest.approx(0.01, rel=0.05)
        assert sum(new) == pytest.approx(1.0)

    def test_eta_zero_freezes_the_mixture(self):
        weights = (0.6, 0.3, 0.1)
        assert multiplicative_update(
            weights, (0.0, 1.0, 0.5), eta=0.0
        ) == pytest.approx(weights)


# ----------------------------------------------------------------------
# Controller, ensemble mode
# ----------------------------------------------------------------------


def ensemble_controller(capacity=4, epoch_length=12, **config_kwargs):
    disk = build_disk()
    buffer = BufferManager(
        disk, capacity, EnsemblePolicy(experts=("LRU", "MRU"))
    )
    config = TuningConfig(
        mode="ensemble", epoch_length=epoch_length, **config_kwargs
    )
    controller = TuningController(config)
    controller.attach_buffer(buffer, "ENSEMBLE")
    return buffer, controller


class TestEnsembleController:
    def test_requires_an_ensemble_live_policy(self):
        buffer = BufferManager(build_disk(), 4, make_policy("LRU"))
        controller = TuningController(TuningConfig(mode="ensemble"))
        with pytest.raises(TypeError, match="ENSEMBLE"):
            controller.attach_buffer(buffer, "LRU")

    def test_weights_concentrate_on_the_winning_expert(self):
        # Cyclic scan over capacity + 2 pages: LRU hits 0%, MRU retains
        # most of the loop — the mixture must tilt to MRU.
        buffer, controller = ensemble_controller()
        for step in range(240):
            buffer.fetch(step % 6)
        snapshot = controller.snapshot()
        assert snapshot["mode"] == "ensemble"
        assert snapshot["weight_updates"] >= 1
        assert controller.retunes == controller.weight_updates
        assert snapshot["weights"]["MRU"] > 0.8
        # The live policy carries the same mixture the controller holds.
        live = dict(zip(buffer.policy.expert_names, buffer.policy.weights))
        assert live["MRU"] == pytest.approx(snapshot["weights"]["MRU"])

    def test_eta_zero_observes_without_updating(self):
        buffer, controller = ensemble_controller(eta=0.0)
        for step in range(240):
            buffer.fetch(step % 6)
        assert controller.epochs >= 1
        assert controller.weight_updates == 0
        assert buffer.policy.weights == (0.5, 0.5)

    def test_no_control_ghost_in_ensemble_mode(self):
        _, controller = ensemble_controller()
        assert [ghost.name for ghost in controller.ghosts] == ["LRU", "MRU"]

    def test_sharded_mixture_converges_on_every_shard(self):
        system = BufferSystem.build(
            policy="ENSEMBLE",
            policy_kwargs={"experts": ("LRU", "MRU")},
            capacity=8,
            shards=2,
            tuning=TuningConfig(mode="ensemble", epoch_length=16),
        )
        seed_disk = build_disk()
        for page_id in range(N_PAGES):
            system.disk.store(seed_disk.read(page_id))
        for step in range(400):
            system.buffer.fetch(step % 12)
        assert system.tuner.weight_updates >= 1
        # Every shard converged on (at least almost) the controller's
        # mixture — a shard adopts pending updates on its next tapped
        # access, so near the fixed point it may trail by one update.
        mixtures = [
            manager.policy.weights
            for manager in system.buffer.shard_managers()
        ]
        for mixture in mixtures:
            assert mixture == pytest.approx(mixtures[0], abs=1e-6)
        assert mixtures[0][1] > 0.8            # MRU dominates on the scan
        stats = system.stats_snapshot()
        assert stats["tuning"]["mode"] == "ensemble"
        assert stats["hits"] + stats["misses"] == stats["requests"]


# ----------------------------------------------------------------------
# TuningSpec and the build(tuning=...) surface
# ----------------------------------------------------------------------


class TestTuningSpec:
    def test_defaults_build_a_select_config(self):
        config = TuningSpec().to_config()
        assert config.mode == "select"
        assert config.candidates is None

    def test_ensemble_fields_flow_into_the_config(self):
        spec = TuningSpec(
            mode="ensemble", epoch_length=64, eta=4.0, weight_floor=0.05
        )
        config = spec.to_config()
        assert config.mode == "ensemble"
        assert config.epoch_length == 64
        assert config.eta == 4.0
        assert config.weight_floor == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            TuningSpec(mode="vote")
        with pytest.raises(ValueError):
            TuningSpec(epoch_length=0)
        with pytest.raises(ValueError):
            TuningSpec(weights_path="w.json")       # needs ensemble mode
        with pytest.raises(TypeError):
            TuningSpec(mode="ensemble", experts=(make_policy("LRU"),))
        with pytest.raises(ValueError):
            TuningSpec(mode="ensemble", experts=())

    def test_from_mapping_names_unknown_keys(self):
        with pytest.raises(TypeError, match="epoch_len"):
            TuningSpec.from_mapping({"epoch_len": 100})

    def test_build_with_spec_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            system = BufferSystem.build(
                policy="LRU", capacity=8, tuning=TuningSpec(epoch_length=32)
            )
        assert system.tuner is not None
        assert system.tuner.config.epoch_length == 32

    def test_build_with_mapping_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="TuningSpec"):
            system = BufferSystem.build(
                policy="LRU", capacity=8, tuning={"epoch_length": 32}
            )
        assert system.tuner is not None
        assert system.tuner.config.epoch_length == 32

    def test_build_ensemble_folds_the_live_policy_into_the_panel(self):
        system = BufferSystem.build(
            policy="LRU",
            capacity=8,
            tuning=TuningSpec(mode="ensemble", experts=("ASB", "AWRP")),
        )
        policy = system.buffer.policy
        assert isinstance(policy, EnsemblePolicy)
        assert policy.expert_specs == ("LRU", "ASB", "AWRP")
        assert system.tuner.config.mode == "ensemble"

    def test_build_ensemble_rejects_instance_policy_with_experts(self):
        with pytest.raises(ValueError):
            BufferSystem.build(
                policy=make_policy("LRU"),
                capacity=8,
                tuning=TuningSpec(mode="ensemble", experts=("ASB",)),
            )


# ----------------------------------------------------------------------
# Offline fit + weights artifact
# ----------------------------------------------------------------------


def record_small_trace():
    # A looping stream with a hot head: enough structure for the fit to
    # produce non-degenerate epochs, small enough to stay instant.
    requests = []
    query = 0
    for round_ in range(12):
        query += 1
        for page_id in range(N_PAGES):
            requests.append((page_id, query))
            requests.append((page_id % 4, query))
    return record_run(requests, build_disk(), make_policy("LRU"), 6)


class TestOfflineFit:
    def test_fit_round_trips_through_the_artifact(self, tmp_path):
        trace = record_small_trace()
        fitted = fit_weights(trace, epoch_length=50)
        assert fitted.experts == DEFAULT_EXPERTS
        assert sum(fitted.weights) == pytest.approx(1.0)
        assert fitted.meta["epochs"] >= 1
        path = tmp_path / "weights.json"
        fitted.save(path)
        loaded = FittedWeights.load(path)
        assert loaded == fitted

    def test_weights_for_reorders_case_insensitively(self):
        fitted = FittedWeights(
            experts=("LRU", "ASB"),
            weights=(0.8, 0.2),
            epoch_length=100,
            eta=10.0,
            weight_floor=0.01,
        )
        assert fitted.weights_for(("asb", "lru")) == (0.2, 0.8)
        with pytest.raises(ValueError, match="refit"):
            fitted.weights_for(("LRU", "MRU"))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-weights.json"
        path.write_text('{"hello": "world"}', encoding="utf-8")
        with pytest.raises(ValueError):
            FittedWeights.load(path)

    def test_fitted_weights_seed_a_live_ensemble(self, tmp_path):
        trace = record_small_trace()
        fitted = fit_weights(trace, epoch_length=50)
        path = tmp_path / "weights.json"
        fitted.save(path)
        system = BufferSystem.build(
            policy="ENSEMBLE",
            capacity=8,
            tuning=TuningSpec(mode="ensemble", weights_path=str(path)),
        )
        policy = system.buffer.policy
        assert isinstance(policy, EnsemblePolicy)
        assert policy.weights == pytest.approx(fitted.weights)


# ----------------------------------------------------------------------
# Registry hygiene
# ----------------------------------------------------------------------


class TestRegistryMetadata:
    @pytest.mark.parametrize("name", policy_names())
    def test_param_defaults_round_trip_through_make_policy(self, name):
        space = policy_param_space(name)
        defaults = {
            pname: spec.default
            for pname, spec in space.items()
            if spec.default is not None
        }
        policy = make_policy(name, **defaults)
        assert policy.name

    def test_unknown_name_raises_named_error(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            policy_param_space("NOPE")
        assert excinfo.value.policy_name == "NOPE"
        assert isinstance(excinfo.value, ValueError)
        with pytest.raises(UnknownPolicyError):
            make_policy("NOPE")

    def test_aliases_share_the_canonical_param_space(self):
        for key, spec in POLICY_REGISTRY.items():
            for alias in spec.aliases:
                assert policy_param_space(alias) == policy_param_space(
                    spec.name
                )
                assert make_policy(alias).name == make_policy(spec.name).name
