"""Tests for the z-order curve."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import Point, Rect
from repro.geometry.zorder import (
    _deinterleave,
    _interleave,
    quantise,
    z_decode,
    z_encode,
    z_region_ranges,
)

SPACE = Rect(0.0, 0.0, 1.0, 1.0)


class TestInterleave:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_roundtrip(self, value):
        assert _deinterleave(_interleave(value, 16), 16) == value

    def test_known_values(self):
        assert _interleave(0b11, 2) == 0b0101
        assert _interleave(0b10, 2) == 0b0100


class TestQuantise:
    def test_bounds(self):
        assert quantise(0.0, 0.0, 1.0, bits=4) == 0
        assert quantise(1.0, 0.0, 1.0, bits=4) == 15

    def test_clamps_out_of_range(self):
        assert quantise(-5.0, 0.0, 1.0, bits=4) == 0
        assert quantise(5.0, 0.0, 1.0, bits=4) == 15

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            quantise(0.5, 1.0, 0.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_in_grid(self, value):
        cell = quantise(value, 0.0, 1.0, bits=8)
        assert 0 <= cell < 256


class TestEncodeDecode:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_decode_cell_contains_point(self, x, y):
        point = Point(x, y)
        code = z_encode(point, SPACE, bits=8)
        cell = z_decode(code, SPACE, bits=8)
        # The cell is a half-open grid box; tolerate the closed-boundary
        # convention of Rect by a tiny epsilon.
        assert cell.x_min - 1e-9 <= x <= cell.x_max + 1e-9
        assert cell.y_min - 1e-9 <= y <= cell.y_max + 1e-9

    def test_z_locality_of_origin(self):
        assert z_encode(Point(0.0, 0.0), SPACE, bits=8) == 0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_code_in_range(self, x, y):
        code = z_encode(Point(x, y), SPACE, bits=8)
        assert 0 <= code < (1 << 16)


class TestRegionRanges:
    def test_full_space_is_one_range(self):
        ranges = z_region_ranges(SPACE, SPACE, bits=8)
        assert ranges == [(0, (1 << 16) - 1)]

    def test_outside_space_is_empty(self):
        window = Rect(2.0, 2.0, 3.0, 3.0)
        assert z_region_ranges(window, SPACE, bits=8) == []

    def test_ranges_sorted_and_disjoint(self):
        window = Rect(0.1, 0.3, 0.4, 0.7)
        ranges = z_region_ranges(window, SPACE, bits=8)
        assert ranges
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert lo1 <= hi1
            assert hi1 + 1 < lo2  # merged ranges never touch

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.01, max_value=0.1),
    )
    def test_ranges_cover_window_points(self, x, y, size):
        """Soundness: every point of the window encodes into some range."""
        window = Rect(x, y, min(x + size, 1.0), min(y + size, 1.0))
        ranges = z_region_ranges(window, SPACE, bits=6)
        samples = [
            window.center,
            Point(window.x_min, window.y_min),
            Point(window.x_max, window.y_max),
        ]
        for sample in samples:
            code = z_encode(sample, SPACE, bits=6)
            assert any(lo <= code <= hi for lo, hi in ranges), (
                f"point {sample} (code {code}) escaped ranges {ranges}"
            )

    def test_budget_produces_coarser_ranges(self):
        window = Rect(0.05, 0.05, 0.95, 0.95)
        fine = z_region_ranges(window, SPACE, bits=8, max_ranges=64)
        coarse = z_region_ranges(window, SPACE, bits=8, max_ranges=4)
        assert len(coarse) <= len(fine)
        # Coarser decomposition must still cover everything the fine one does.
        covered = sum(hi - lo + 1 for lo, hi in coarse)
        fine_covered = sum(hi - lo + 1 for lo, hi in fine)
        assert covered >= fine_covered
