"""Stateful property test for the RAII pin-guard API.

A rule-based state machine interleaves ``pinned()`` guard entry/exit
(including nesting and exceptional exit), bare pin/unpin, discard and
clear against both the sequential :class:`BufferManager` and the
one-shard :class:`ConcurrentBufferManager`, with an independent model of
the outstanding pins.  Invariants checked after every step:

* a frame's ``pin_count`` equals the model's outstanding guards + bare
  pins for that page — guards never leak a pin and never double-release;
* pin counts never go negative, even across ``clear(force=True)`` which
  zeroes pins under live guards (the guard's exit must notice and not
  underflow);
* the manager's pinned-frame tally matches the frames.
"""

from __future__ import annotations

from contextlib import ExitStack

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.lru import LRU
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageType

N_PAGES = 12
CAPACITY = 5


def make_buffer(concurrent: bool):
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        disk.store(Page(page_id=page_id, page_type=PageType.DATA))
    if concurrent:
        return ConcurrentBufferManager(disk, CAPACITY, LRU, shards=1)
    return BufferManager(disk, CAPACITY, LRU())


class PinGuardMachine(RuleBasedStateMachine):
    """Interleaves guards, bare pins, discard and clear; models the pins."""

    @initialize(concurrent=st.booleans())
    def setup(self, concurrent):
        self.buffer = make_buffer(concurrent)
        # Open guards as a stack of (page_id, ExitStack) — exits must nest.
        self.guards: list[tuple[int, ExitStack]] = []
        self.bare_pins: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Model helpers
    # ------------------------------------------------------------------

    def model_pins(self) -> dict[int, int]:
        pins: dict[int, int] = dict(self.bare_pins)
        for page_id, _ in self.guards:
            pins[page_id] = pins.get(page_id, 0) + 1
        return {page_id: count for page_id, count in pins.items() if count}

    def frames(self):
        if isinstance(self.buffer, ConcurrentBufferManager):
            return self.buffer.shard_managers()[0].frames
        return self.buffer.frames

    def would_overflow(self, page_id) -> bool:
        pinned = set(self.model_pins())
        return len(pinned) >= CAPACITY and page_id not in pinned

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def enter_guard(self, page_id):
        if self.would_overflow(page_id):
            return  # a fetch could legitimately raise BufferFullError
        stack = ExitStack()
        page = stack.enter_context(self.buffer.pinned(page_id))
        assert page.page_id == page_id
        self.guards.append((page_id, stack))

    @rule()
    @precondition(lambda self: self.guards)
    def exit_guard(self):
        page_id, stack = self.guards.pop()
        stack.close()

    @rule()
    @precondition(lambda self: self.guards)
    def exit_guard_with_exception(self):
        page_id, stack = self.guards.pop()

        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            with stack:
                raise Boom()

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def bare_pin(self, page_id):
        if self.would_overflow(page_id):
            return
        self.buffer.fetch(page_id)
        self.buffer.pin(page_id)
        self.bare_pins[page_id] = self.bare_pins.get(page_id, 0) + 1

    @rule()
    @precondition(lambda self: self.bare_pins)
    def bare_unpin(self):
        page_id = sorted(self.bare_pins)[0]
        self.buffer.unpin(page_id)
        self.bare_pins[page_id] -= 1
        if not self.bare_pins[page_id]:
            del self.bare_pins[page_id]

    @rule(page_id=st.integers(min_value=0, max_value=N_PAGES - 1))
    def discard(self, page_id):
        if page_id in self.model_pins():
            with pytest.raises(RuntimeError):
                self.buffer.discard(page_id)
        else:
            self.buffer.discard(page_id)

    @rule()
    def clear(self):
        if self.model_pins():
            with pytest.raises(BufferFullError):
                self.buffer.clear()
        else:
            self.buffer.clear()

    @rule()
    @precondition(lambda self: self.model_pins())
    def force_clear_under_live_guards(self):
        """clear(force=True) zeroes pins under our feet; the open guards'
        exits must tolerate it (no underflow, no exception).  The model's
        bare pins are gone too."""
        with pytest.warns(RuntimeWarning):
            self.buffer.clear(force=True)
        self.bare_pins.clear()
        # Open guards stay open, but their pins were forcibly dropped; on
        # exit they must detect this and not unpin.  Mark them spent by
        # closing them now — their __exit__ runs against the post-clear
        # world, which is exactly the hazard under test.
        while self.guards:
            _, stack = self.guards.pop()
            stack.close()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def pins_match_model(self):
        model = self.model_pins()
        frames = self.frames()
        for page_id, count in model.items():
            assert page_id in frames, f"pinned page {page_id} not resident"
            assert frames[page_id].pin_count == count
        for page_id, frame in frames.items():
            assert frame.pin_count >= 0, "pin count underflow"
            if page_id not in model:
                assert frame.pin_count == 0

    @invariant()
    def pinned_tally_consistent(self):
        managers = (
            self.buffer.shard_managers()
            if isinstance(self.buffer, ConcurrentBufferManager)
            else [self.buffer]
        )
        for manager in managers:
            tally = sum(
                1 for frame in manager.frames.values() if frame.pin_count > 0
            )
            assert manager._pinned_frames == tally

    def teardown(self):
        while self.guards:
            _, stack = self.guards.pop()
            stack.close()


PinGuardMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestPinGuards = PinGuardMachine.TestCase
