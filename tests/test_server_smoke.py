"""Service smoke test: 8 concurrent clients against a live page server.

By default this runs a quick (~2 s) pass so the tier-1 suite stays fast;
the CI service-smoke job sets ``REPRO_SERVE_SMOKE_SECONDS=20`` to soak
the server for the full duration.  Whatever the length, the assertions
are the same: every client operation succeeds (or is a counted
``RETRY_AFTER`` that succeeds on retry), the buffer keeps its accounting
identity ``hits + misses == requests`` under concurrency, and shutdown
drains cleanly with nothing left in flight.
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro.api import BufferSystem
from repro.client import PageClient, RetryAfter
from repro.experiments.servebench import make_seed_page
from repro.server import ServerThread

PAGE_SIZE = 512
PAGES = 256
CLIENTS = 8


def smoke_seconds() -> float:
    return float(os.environ.get("REPRO_SERVE_SMOKE_SECONDS", "2"))


def client_loop(
    host: str,
    port: int,
    seed: int,
    deadline: float,
    results: dict,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    operations = 0
    retries = 0
    failures: list[str] = []
    try:
        with PageClient(host, port, page_size=PAGE_SIZE) as client:
            while time.time() < deadline:
                page_id = rng.randrange(PAGES)
                try:
                    roll = rng.random()
                    if roll < 0.8:
                        page = client.fetch(page_id)
                        assert page.page_id == page_id
                    elif roll < 0.95:
                        client.update(
                            make_seed_page(
                                page_id, rng.randrange(1 << 20), PAGE_SIZE
                            )
                        )
                    else:
                        client.commit()
                    operations += 1
                except RetryAfter as exc:
                    retries += 1
                    time.sleep(max(exc.hint_ms, 1) / 1000.0)
    except Exception as exc:  # noqa: BLE001 - reported via results
        failures.append(f"{type(exc).__name__}: {exc}")
    with lock:
        results["operations"] = results.get("operations", 0) + operations
        results["retries"] = results.get("retries", 0) + retries
        results.setdefault("failures", []).extend(failures)


def test_eight_concurrent_clients_smoke():
    system = BufferSystem.build(
        policy="LRU",
        capacity=64,
        shards=4,
        durability=True,
        page_size=PAGE_SIZE,
    )
    for page_id in range(PAGES):
        system.disk.store(make_seed_page(page_id, page_id, PAGE_SIZE))
    base_image = system.disk.image()

    results: dict = {}
    lock = threading.Lock()
    with ServerThread(
        system, max_inflight=16, max_queued=64, page_size=PAGE_SIZE
    ) as server:
        deadline = time.time() + smoke_seconds()
        threads = [
            threading.Thread(
                target=client_loop,
                args=(server.host, server.port, 100 + i, deadline, results, lock),
            )
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results.get("failures", []) == []
        assert results["operations"] > 0

        snapshot = server.server.stats_snapshot()
        buffer_stats = snapshot["buffer"]
        # The accounting identity must hold under full concurrency.
        assert buffer_stats["hits"] + buffer_stats["misses"] == (
            buffer_stats["requests"]
        )
        assert snapshot["server"]["responses_ok"] > 0

    # Clean shutdown: nothing in flight, nothing queued, nothing pinned.
    admission = server.server.admission
    assert admission.inflight == 0
    assert admission.queue_depth == 0
    assert system.buffer.pinned_count == 0
    # The drain flushed every dirty frame through the WAL: the durable
    # medium now equals a committed-prefix replay of the log.
    from repro.wal.bytestore import MemoryByteStore
    from repro.wal.log import WriteAheadLog
    from repro.wal.recovery import replay_durable_prefix

    wal = WriteAheadLog(
        store=MemoryByteStore(system.durability.wal.store.image())
    )
    assert system.disk.image() == replay_durable_prefix(
        wal, base_image, page_size=PAGE_SIZE
    )
