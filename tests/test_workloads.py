"""Tests for query objects, distributions and named query sets."""

from __future__ import annotations

import pytest

from repro.geometry.rect import Point, Rect
from repro.workloads.distributions import (
    identical_queries,
    independent_queries,
    intensified_queries,
    similar_queries,
    uniform_queries,
)
from repro.workloads.queries import PointQuery, WindowQuery
from repro.workloads.sets import (
    EX_VALUES,
    QUERY_SET_NAMES,
    QuerySet,
    make_query_set,
    parse_set_name,
)


class TestQueries:
    def test_point_query_region(self):
        query = PointQuery(Point(0.3, 0.4))
        assert query.region == Rect(0.3, 0.4, 0.3, 0.4)

    def test_window_query_region(self):
        window = Rect(0.1, 0.1, 0.2, 0.2)
        assert WindowQuery(window).region == window

    def test_queries_run_against_tree(self, small_tree):
        window = WindowQuery(Rect(0.4, 0.4, 0.6, 0.6))
        point = PointQuery(Point(0.5, 0.5))
        window_results = window.run(small_tree)
        point_results = point.run(small_tree)
        assert set(point_results).issubset(set(window_results))


class TestUniform:
    def test_point_variant(self, unit_space):
        queries = uniform_queries(unit_space, 50, ex=None, seed=1)
        assert len(queries) == 50
        assert all(isinstance(q, PointQuery) for q in queries)

    def test_window_extent(self, unit_space):
        queries = uniform_queries(unit_space, 50, ex=33, seed=2)
        for query in queries:
            assert isinstance(query, WindowQuery)
            # Clipping may shrink boundary windows, never enlarge them.
            assert query.window.width <= 1 / 33 + 1e-12
            assert query.window.height <= 1 / 33 + 1e-12

    def test_covers_empty_space_too(self, unit_space):
        """Uniform queries hit the corners where no data lives."""
        queries = uniform_queries(unit_space, 500, ex=None, seed=3)
        corner = Rect(0.0, 0.0, 0.1, 0.1)
        assert any(corner.contains_point(q.point) for q in queries)

    def test_deterministic(self, unit_space):
        a = uniform_queries(unit_space, 20, ex=100, seed=4)
        b = uniform_queries(unit_space, 20, ex=100, seed=4)
        assert a == b


class TestIdentical:
    def test_window_variant_reuses_object_mbrs(self, small_dataset):
        queries = identical_queries(small_dataset, 40, window=True, seed=5)
        rect_set = set(small_dataset.rects)
        assert all(q.window in rect_set for q in queries)

    def test_point_variant_uses_centers(self, small_dataset):
        queries = identical_queries(small_dataset, 40, window=False, seed=6)
        centers = {rect.center for rect in small_dataset.rects}
        assert all(q.point in centers for q in queries)


class TestPlaceDriven:
    def test_similar_locations_come_from_places(self, small_dataset, small_places):
        queries = similar_queries(
            small_places, small_dataset.space, 40, ex=None, seed=7
        )
        locations = {place.location for place in small_places}
        assert all(q.point in locations for q in queries)

    def test_intensified_prefers_big_places(self, small_dataset, small_places):
        queries = intensified_queries(
            small_places, small_dataset.space, 600, ex=None, seed=8
        )
        by_population = sorted(
            small_places, key=lambda p: p.population, reverse=True
        )
        top_locations = {p.location for p in by_population[:20]}
        top_hits = sum(1 for q in queries if q.point in top_locations)
        # 20 of 200 places uniformly would get ~60 of 600 queries; the
        # sqrt(population) weighting must concentrate clearly more there.
        assert top_hits > 120

    def test_independent_mirrors_x(self, small_dataset, small_places):
        space = small_dataset.space
        queries = independent_queries(small_places, space, 50, ex=None, seed=9)
        mirrored = {
            Point(space.x_min + (space.x_max - p.location.x), p.location.y)
            for p in small_places
        }
        assert all(q.point in mirrored for q in queries)

    def test_window_variants(self, small_dataset, small_places):
        for generator in (similar_queries, intensified_queries, independent_queries):
            queries = generator(small_places, small_dataset.space, 10, 100, 10)
            assert all(isinstance(q, WindowQuery) for q in queries)


class TestSetNames:
    def test_parse_point_sets(self):
        assert parse_set_name("U-P") == ("U", False, None)
        assert parse_set_name("INT-P") == ("INT", False, None)

    def test_parse_window_sets(self):
        assert parse_set_name("U-W-33") == ("U", True, 33)
        assert parse_set_name("IND-W-1000") == ("IND", True, 1000)

    def test_parse_id_w_has_no_ex(self):
        assert parse_set_name("ID-W") == ("ID", True, None)

    @pytest.mark.parametrize(
        "bad", ["X-P", "U", "U-Q", "U-W-", "U-W-abc", "U-W-0", "S-W"]
    )
    def test_malformed_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_set_name(bad)

    def test_registry_contains_paper_sets(self):
        assert "U-P" in QUERY_SET_NAMES
        assert "ID-W" in QUERY_SET_NAMES
        for ex in EX_VALUES:
            assert f"INT-W-{ex}" in QUERY_SET_NAMES

    @pytest.mark.parametrize("name", QUERY_SET_NAMES)
    def test_every_registered_set_builds(self, name, small_dataset, small_places):
        query_set = make_query_set(name, small_dataset, small_places, 5, seed=1)
        assert len(query_set) == 5
        assert query_set.name == name

    def test_place_sets_require_places(self, small_dataset):
        with pytest.raises(ValueError):
            make_query_set("S-P", small_dataset, None, 5)

    def test_sets_deterministic(self, small_dataset, small_places):
        a = make_query_set("INT-W-33", small_dataset, small_places, 10, seed=2)
        b = make_query_set("INT-W-33", small_dataset, small_places, 10, seed=2)
        assert a.queries == b.queries

    def test_different_sets_use_different_streams(self, small_dataset, small_places):
        similar = make_query_set("S-P", small_dataset, small_places, 20, seed=2)
        independent = make_query_set("IND-P", small_dataset, small_places, 20, seed=2)
        assert similar.queries != independent.queries

    def test_concat(self, small_dataset, small_places):
        a = make_query_set("U-P", small_dataset, small_places, 5, seed=1)
        b = make_query_set("S-P", small_dataset, small_places, 5, seed=1)
        mixed = QuerySet.concat("mixed", [a, b])
        assert len(mixed) == 10
        assert mixed.queries[:5] == a.queries
        assert mixed.queries[5:] == b.queries


class TestKnnQuery:
    def test_knn_query_runs(self, small_tree):
        from repro.workloads.queries import KnnQuery
        from repro.geometry.rect import Point

        query = KnnQuery(point=Point(0.5, 0.5), k=5)
        results = query.run(small_tree)
        assert len(results) == 5

    def test_knn_region_is_the_point(self):
        from repro.workloads.queries import KnnQuery
        from repro.geometry.rect import Point, Rect

        query = KnnQuery(point=Point(0.3, 0.4), k=3)
        assert query.region == Rect(0.3, 0.4, 0.3, 0.4)

    def test_knn_on_unsupported_index_raises(self, small_dataset):
        from repro.workloads.queries import KnnQuery
        from repro.geometry.rect import Point
        from repro.sam.quadtree import Quadtree

        tree = Quadtree(small_dataset.space)
        query = KnnQuery(point=Point(0.5, 0.5), k=3)
        with pytest.raises(TypeError):
            query.run(tree)

    def test_knn_through_buffer_defers_fetches(self, small_tree):
        """Best-first search must not read subtrees beyond the k-th hit."""
        from repro.buffer.manager import BufferManager
        from repro.buffer.policies.lru import LRU
        from repro.workloads.queries import KnnQuery
        from repro.geometry.rect import Point

        buffer = BufferManager(small_tree.pagefile.disk, 64, LRU())
        with buffer.query_scope():
            KnnQuery(point=Point(0.5, 0.5), k=1).run(small_tree, buffer)
        # A k=1 search touches roughly one root-to-leaf path; allow some
        # slack for sibling inspection but far less than the tree size.
        assert buffer.stats.requests < 0.2 * len(small_tree.all_page_ids())
