"""Spatial access methods (SAMs).

The paper evaluates replacement policies on an R*-tree; Section 2.3 notes
that page entries may equally be R-tree rectangles, quadtree cells, or
z-values in a B-tree.  This package provides all of them:

* :class:`RStarTree` — the paper's index (Beckmann et al. 1990), with
  forced reinsertion, the R* split, deletion, and STR bulk loading;
* :class:`RTree` — Guttman's original R-tree (linear/quadratic split) as a
  baseline SAM;
* :class:`Quadtree` — a bucket PR quadtree over buffered pages;
* :class:`ZBTree` — a B+-tree over z-order values;
* :class:`MqrTree` — the mqr-tree (Moreau & Osborn), whose 2-dimensional
  nodes organise entries by centroid relationships and keep equal-level
  node MBRs overlap-free for point data.

All indexes build through a :class:`~repro.storage.pagefile.PageFile`
(unaccounted) and answer queries through any page accessor — typically a
:class:`~repro.buffer.manager.BufferManager`, so every page touched during
a query passes through the replacement policy under study.
"""

from repro.sam.base import PageAccessor, SpatialIndex, TreeStats
from repro.sam.gridfile import GridFile
from repro.sam.mqr import MqrTree
from repro.sam.quadtree import Quadtree
from repro.sam.rstar import RStarTree
from repro.sam.rtree import RTree
from repro.sam.zbtree import ZBTree

__all__ = [
    "PageAccessor",
    "SpatialIndex",
    "TreeStats",
    "RStarTree",
    "RTree",
    "Quadtree",
    "ZBTree",
    "GridFile",
    "MqrTree",
]
