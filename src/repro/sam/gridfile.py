"""The grid file (Nievergelt, Hinterberger, Sevcik 1984).

A fifth spatial access method, structurally unlike the trees: a
*non-hierarchical* directory maps grid cells to data buckets, giving
two-disk-access point queries.  Included because its page-access profile
differs fundamentally from tree descent — every query touches directory
page(s) plus bucket pages directly, with no intermediate levels for LRU-P
to prioritise.

Layout on pages:

* **linear scales** (the split positions per axis) are index metadata kept
  in memory, as in the original design;
* the **directory** is a grid of bucket references, stored row-partitioned
  on DIRECTORY pages (one page per directory stripe);
* **buckets** are DATA pages holding object entries; several grid cells
  may share one bucket (the grid file's bucket-sharing property), and a
  bucket splits when full, refining a linear scale when necessary.

Objects are assigned to buckets by their MBR centre; window queries visit
all cells the window intersects and filter by actual MBR intersection, so
extended objects must also be checked in neighbouring cells — handled by
inserting objects into every cell their MBR overlaps (replication, like
the quadtree; results are de-duplicated).
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.geometry.rect import Point, Rect
from repro.sam.base import PageAccessor, SpatialIndex, TreeStats
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile

#: Number of directory cells per directory page stripe.
CELLS_PER_DIRECTORY_PAGE = 256


class GridFile(SpatialIndex):
    """A two-level grid file with bucket sharing and replication."""

    def __init__(
        self,
        space: Rect,
        pagefile: PageFile | None = None,
        bucket_capacity: int = 42,
        max_splits: int = 32,
    ) -> None:
        super().__init__(pagefile if pagefile is not None else PageFile())
        if bucket_capacity < 2:
            raise ValueError("bucket capacity must be at least 2")
        if max_splits < 1:
            raise ValueError("max_splits must be at least 1")
        self.space = space
        self.bucket_capacity = bucket_capacity
        self.max_splits = max_splits
        self.entry_count = 0
        self._page_ids: set[PageId] = set()
        # Linear scales: interior split positions per axis (sorted).
        self._x_scale: list[float] = []
        self._y_scale: list[float] = []
        # Directory: grid[cell_x][cell_y] -> bucket page id.
        first_bucket = self._new_bucket()
        self._grid: list[list[PageId]] = [[first_bucket.page_id]]
        # Directory pages mirror the grid for access accounting; rebuilt
        # whenever the directory geometry changes.
        self._directory_pages: list[Page] = []
        self._rebuild_directory_pages()

    # ------------------------------------------------------------------
    # Page helpers
    # ------------------------------------------------------------------

    def _new_bucket(self) -> Page:
        page = self.pagefile.allocate(PageType.DATA, level=0)
        self._page_ids.add(page.page_id)
        self._register_new_page(page)
        return page

    def _rebuild_directory_pages(self) -> None:
        """Re-pack the directory grid onto DIRECTORY pages.

        Each directory page covers a contiguous stripe of cells; its
        entries carry the cell regions (the complete, overlap-free
        partition the paper's Section 2.3 mentions) and the bucket ids.
        """
        for page in self._directory_pages:
            self._page_ids.discard(page.page_id)
            self._free_page(page.page_id)
        self._directory_pages = []
        cells: list[tuple[Rect, PageId]] = []
        for cell_x in range(len(self._grid)):
            for cell_y in range(len(self._grid[0])):
                cells.append(
                    (self._cell_region(cell_x, cell_y), self._grid[cell_x][cell_y])
                )
        for start in range(0, len(cells), CELLS_PER_DIRECTORY_PAGE):
            page = self.pagefile.allocate(PageType.DIRECTORY, level=1)
            self._page_ids.add(page.page_id)
            self._register_new_page(page)
            for region, bucket_id in cells[start : start + CELLS_PER_DIRECTORY_PAGE]:
                page.entries.append(PageEntry(mbr=region, child=bucket_id))
            self._directory_pages.append(page)

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------

    def _cell_region(self, cell_x: int, cell_y: int) -> Rect:
        x_bounds = [self.space.x_min, *self._x_scale, self.space.x_max]
        y_bounds = [self.space.y_min, *self._y_scale, self.space.y_max]
        return Rect(
            x_bounds[cell_x],
            y_bounds[cell_y],
            x_bounds[cell_x + 1],
            y_bounds[cell_y + 1],
        )

    def _cells_overlapping(self, rect: Rect) -> list[tuple[int, int]]:
        """Indexes of all grid cells the (closed) rectangle overlaps.

        Cells are closed at their boundaries like :class:`Rect`, so a
        coordinate lying exactly on a split line belongs to the cells on
        both sides — hence ``bisect_left`` for the lower end and
        ``bisect_right`` for the upper end.
        """
        x_lo = bisect.bisect_left(self._x_scale, rect.x_min)
        x_hi = bisect.bisect_right(self._x_scale, rect.x_max)
        y_lo = bisect.bisect_left(self._y_scale, rect.y_min)
        y_hi = bisect.bisect_right(self._y_scale, rect.y_max)
        return [
            (cell_x, cell_y)
            for cell_x in range(x_lo, x_hi + 1)
            for cell_y in range(y_lo, y_hi + 1)
        ]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, mbr: Rect, payload: Any) -> None:
        if not mbr.intersects(self.space):
            raise ValueError("object lies outside the grid file's space")
        self.entry_count += 1
        for cell in self._cells_overlapping(mbr):
            self._insert_into_cell(cell, mbr, payload)

    def _insert_into_cell(
        self, cell: tuple[int, int], mbr: Rect, payload: Any
    ) -> None:
        bucket = self._page(self._grid[cell[0]][cell[1]])
        if any(
            entry.payload == payload and entry.mbr == mbr
            for entry in bucket.entries
        ):
            return  # replica already present via a sharing bucket
        bucket.entries.append(PageEntry(mbr=mbr, payload=payload))
        self._mark_dirty(bucket)
        if len(bucket.entries) > self.bucket_capacity:
            self._split_bucket(bucket)

    def _split_bucket(self, bucket: Page) -> None:
        """Split an overflowing bucket, refining a scale if necessary."""
        cells = [
            (cell_x, cell_y)
            for cell_x in range(len(self._grid))
            for cell_y in range(len(self._grid[0]))
            if self._grid[cell_x][cell_y] == bucket.page_id
        ]
        if len(cells) > 1:
            # Bucket shared by several cells: split the cell group in two
            # along its longer side, no directory refinement needed.
            xs = sorted({cell_x for cell_x, _ in cells})
            ys = sorted({cell_y for _, cell_y in cells})
            sibling = self._new_bucket()
            if len(xs) >= len(ys):
                moved = {c for c in cells if c[0] >= xs[len(xs) // 2]}
            else:
                moved = {c for c in cells if c[1] >= ys[len(ys) // 2]}
            for cell_x, cell_y in moved:
                self._grid[cell_x][cell_y] = sibling.page_id
            self._redistribute(bucket, sibling)
            self._rebuild_directory_pages()
            return
        if len(self._x_scale) + len(self._y_scale) >= 2 * self.max_splits:
            return  # refinement budget exhausted: tolerate the overflow
        # Single cell: refine the directory by splitting the cell's longer
        # axis at its midpoint.
        (cell_x, cell_y) = cells[0]
        region = self._cell_region(cell_x, cell_y)
        sibling = self._new_bucket()
        if region.width >= region.height:
            split_at = region.center.x
            self._x_scale.insert(cell_x, split_at)
            self._grid.insert(cell_x + 1, list(self._grid[cell_x]))
            self._grid[cell_x + 1][cell_y] = sibling.page_id
        else:
            split_at = region.center.y
            self._y_scale.insert(cell_y, split_at)
            for column in self._grid:
                column.insert(cell_y + 1, column[cell_y])
            self._grid[cell_x][cell_y + 1] = sibling.page_id
        self._redistribute(bucket, sibling)
        self._rebuild_directory_pages()

    def _redistribute(self, bucket: Page, sibling: Page) -> None:
        """Re-home the two buckets' entries according to the new grid."""
        entries = bucket.entries + sibling.entries
        bucket.entries = []
        sibling.entries = []
        self._mark_dirty(bucket)
        self._mark_dirty(sibling)
        targets = {bucket.page_id: bucket, sibling.page_id: sibling}
        for entry in entries:
            placed: set[PageId] = set()
            for cell in self._cells_overlapping(entry.mbr):
                bucket_id = self._grid[cell[0]][cell[1]]
                target = targets.get(bucket_id)
                if target is not None and bucket_id not in placed:
                    placed.add(bucket_id)
                    target.entries.append(entry)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, mbr: Rect, payload: Any) -> bool:
        """Remove all replicas of an object (lazy: no grid coarsening)."""
        removed = False
        seen: set[PageId] = set()
        for cell in self._cells_overlapping(mbr):
            bucket_id = self._grid[cell[0]][cell[1]]
            if bucket_id in seen:
                continue
            seen.add(bucket_id)
            bucket = self._page(bucket_id)
            kept = [
                entry
                for entry in bucket.entries
                if not (entry.payload == payload and entry.mbr == mbr)
            ]
            if len(kept) != len(bucket.entries):
                bucket.entries = kept
                self._mark_dirty(bucket)
                removed = True
        if removed:
            self.entry_count -= 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _directory_page_for_cell(self, cell: tuple[int, int]) -> Page:
        columns = len(self._grid[0])
        flat_index = cell[0] * columns + cell[1]
        return self._directory_pages[flat_index // CELLS_PER_DIRECTORY_PAGE]

    def window_query(
        self, window: Rect, accessor: PageAccessor | None = None
    ) -> list[Any]:
        accessor = self._accessor_or_build(accessor)
        results: list[Any] = []
        seen_payloads: set[Any] = set()
        seen_buckets: set[PageId] = set()
        seen_directory: set[PageId] = set()
        for cell in self._cells_overlapping(window):
            directory_page = self._directory_page_for_cell(cell)
            if directory_page.page_id not in seen_directory:
                seen_directory.add(directory_page.page_id)
                accessor.fetch(directory_page.page_id)
            bucket_id = self._grid[cell[0]][cell[1]]
            if bucket_id in seen_buckets:
                continue
            seen_buckets.add(bucket_id)
            bucket = accessor.fetch(bucket_id)
            for entry in bucket.entries:
                if entry.mbr.intersects(window) and entry.payload not in seen_payloads:
                    seen_payloads.add(entry.payload)
                    results.append(entry.payload)
        return results

    def point_query(
        self, point: Point, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """The grid file's signature: directory access + one bucket access."""
        return self.window_query(point.as_rect(), accessor)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> TreeStats:
        directory = len(self._directory_pages)
        data = len(self._page_ids) - directory
        return TreeStats(
            page_count=len(self._page_ids),
            directory_pages=directory,
            data_pages=data,
            height=2,
            entry_count=self.entry_count,
        )

    def all_page_ids(self) -> list[PageId]:
        return sorted(self._page_ids)

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (len(self._grid), len(self._grid[0]))
