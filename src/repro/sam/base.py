"""Shared interfaces of the spatial access methods.

Indexes are *built* directly on their page file (tree construction happens
before the measured query phase; the paper clears the buffer before each
query set) and *queried* through a page accessor (see :mod:`repro.access`,
whose protocol and unbuffered accessors are re-exported here).  Any object
with a ``fetch(page_id) -> Page`` method qualifies — in the experiments
that is a buffer manager, so every page request of a query is a buffer
request.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.access import (
    BuildAccessor,
    DirectAccessor,
    FullPageAccessor,
    PageAccessor,
)
from repro.geometry.rect import Point, Rect
from repro.storage.page import Page, PageId
from repro.storage.pagefile import PageFile

__all__ = [
    "BuildAccessor",
    "DirectAccessor",
    "FullPageAccessor",
    "PageAccessor",
    "SpatialIndex",
    "TreeStats",
]


@dataclass(slots=True)
class TreeStats:
    """Structural statistics of a built index (cf. the paper's Section 3)."""

    page_count: int
    directory_pages: int
    data_pages: int
    height: int
    entry_count: int

    @property
    def directory_fraction(self) -> float:
        """Share of directory pages (paper: 2.84 % for DB 1, 2.87 % for DB 2)."""
        if self.page_count == 0:
            return 0.0
        return self.directory_pages / self.page_count


class SpatialIndex(abc.ABC):
    """Base class of all spatial access methods."""

    def __init__(self, pagefile: PageFile) -> None:
        self.pagefile = pagefile
        self._build_accessor = BuildAccessor(pagefile)
        self._live_accessor: PageAccessor | None = None

    # ------------------------------------------------------------------
    # Page access — honours the live accessor set by :meth:`via`
    # ------------------------------------------------------------------

    def _page(self, page_id: PageId) -> Page:
        """Read a page for an index operation.

        Outside :meth:`via` this is the unaccounted build path (the paper
        builds its trees before the measured phase); inside, every page
        request goes through the live accessor, so index *updates* are
        charged against the buffer like queries are.
        """
        if self._live_accessor is not None:
            return self._live_accessor.fetch(page_id)
        return self.pagefile.disk.peek(page_id)

    def _mark_dirty(self, page: Page) -> None:
        """Flag a page as modified when operating through a buffer.

        Pages mutated during an update must be written back on eviction.
        If the buffer already evicted the (then-clean) page, the write is
        charged immediately instead.
        """
        accessor = self._live_accessor
        mark = getattr(accessor, "mark_dirty", None)
        if mark is None:
            return
        try:
            mark(page.page_id)
        except KeyError:
            accessor.disk.write(page)  # type: ignore[union-attr]

    def _register_new_page(self, page: Page) -> None:
        """Announce a freshly allocated page to the live accessor.

        New pages are born in the buffer (no read charged); outside
        :meth:`via` this is a no-op.
        """
        install = getattr(self._live_accessor, "install", None)
        if install is not None:
            install(page)

    def _free_page(self, page_id: PageId) -> None:
        """Deallocate a page, invalidating any buffered copy first.

        Without the invalidation, a page id reused by a later allocation
        would be served from a stale frame — the classic deallocation bug
        of buffer managers.
        """
        discard = getattr(self._live_accessor, "discard", None)
        if discard is not None:
            discard(page_id)
        self.pagefile.free(page_id)

    @contextmanager
    def via(self, accessor: PageAccessor) -> Iterator[None]:
        """Route all index page accesses through ``accessor``.

        Used for the update experiments (the paper's future work #2/#3):
        inside the context, inserts and deletes fetch their pages through
        the buffer and dirty the pages they mutate.  The accessor is also
        attached to the page file, so any ``pagefile.free`` — including
        frees that bypass :meth:`_free_page` — invalidates residual
        buffered frames before the id becomes reusable.
        """
        if self._live_accessor is not None:
            raise RuntimeError("a live accessor is already installed")
        self._live_accessor = accessor
        self.pagefile.attach_accessor(accessor)
        try:
            yield
        finally:
            self._live_accessor = None
            self.pagefile.detach_accessor()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def insert(self, mbr: Rect, payload: Any) -> None:
        """Insert one object with the given MBR."""

    # ------------------------------------------------------------------
    # Queries — all page requests go through ``accessor``
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def window_query(
        self, window: Rect, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """Payloads of all objects whose MBR intersects ``window``."""

    def point_query(
        self, point: Point, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """Payloads of all objects whose MBR contains ``point``.

        By default a degenerate window query; indexes override it when they
        can do better.
        """
        return self.window_query(point.as_rect(), accessor)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def stats(self) -> TreeStats:
        """Structural statistics of the index."""

    @abc.abstractmethod
    def all_page_ids(self) -> list[PageId]:
        """Ids of every page belonging to the index."""

    def _accessor_or_build(self, accessor: PageAccessor | None) -> PageAccessor:
        if accessor is not None:
            return accessor
        if self._live_accessor is not None:
            return self._live_accessor
        return self._build_accessor
