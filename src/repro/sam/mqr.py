"""The mqr-tree (Moreau & Osborn, "mqr-tree: a 2-dimensional spatial
access method").

The mqr-tree abandons the R-tree's "pack k rectangles per node" layout
for a *two-dimensional node*: every node has five **locations** — NE,
SE, SW, NW and EQ — and an entry lives in the location given by the
spatial relationship between its centroid and the centroid of the
node's MBR.  Because placement follows geometry instead of a packing
heuristic, sibling subtrees occupy *disjoint* quadrants of their
parent's centroid, and node MBRs at equal levels of the tree do not
overlap (for point data; extended objects that straddle a centroid
reduce, rather than eliminate, overlap — exactly the paper's result).

Design notes of this implementation:

* One node is one :class:`~repro.storage.page.Page`.  Locations are
  **derived**, never stored: the location of an entry is recomputed from
  its MBR centroid and the node centroid whenever it is needed, so the
  on-page representation is the same ``PageEntry`` every other index
  uses and the whole storage / WAL / wire stack works unchanged.
* The five centroid relations partition the plane *totally and
  disjointly* (half-open quadrants)::

      EQ: x = cx and y = cy          NE: x >= cx and y > cy
      SE: x > cx and y <= cy         SW: x <= cx and y < cy
      NW: x < cx and y >= cy

* **Insertion** grows the node MBR first, then revalidates: if the
  centroid moved, every entry is re-derived against the new centroid and
  any subnode whose MBR no longer fits its quadrant region undergoes
  **partial extraction** — only the entries that crossed the moved
  centroid line are pulled out and re-placed; subtrees that still fit
  are kept whole.  Only then is the new object placed.
* A location holds at most one subnode.  Two objects colliding in one
  location are pushed into a fresh subnode when their centroids separate
  under the group's own centroid; inseparable groups (duplicate points,
  pathological extended objects) stay in the node as a small bucket, so
  recursion always terminates.
* **Queries** (window, point, kNN) traverse by MBR geometry only and
  request every page through the supplied accessor, so the index runs
  unmodified under any buffer manager, the WAL, the server and the
  tuner.  Updates inside :meth:`~repro.sam.base.SpatialIndex.via` are
  charged against the buffer like every other index.

Compared to the R*-tree the nodes are tiny (at most five locations), so
the same dataset produces many more, much smaller pages and a taller
tree — page-reference strings with a structure the R*-tree never
generates, which is what the policy × index experiments need.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable

from repro.geometry.rect import Point, Rect, mbr_of_rects
from repro.sam.base import PageAccessor, SpatialIndex, TreeStats
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile

#: The five spatial relationships between an entry centroid and the node
#: centroid.  The order is the paper's clockwise convention.
NE, SE, SW, NW, EQ = range(5)

LOCATION_NAMES = ("NE", "SE", "SW", "NW", "EQ")


def location_of(point: Point, center: Point) -> int:
    """The location of a centroid relative to a node centroid.

    The five relations are half-open so that they partition the plane:
    every centroid derives exactly one location.
    """
    if point.x == center.x and point.y == center.y:
        return EQ
    if point.x >= center.x and point.y > center.y:
        return NE
    if point.x > center.x and point.y <= center.y:
        return SE
    if point.x <= center.x and point.y < center.y:
        return SW
    return NW  # point.x < center.x and point.y >= center.y


def region_contains(location: int, center: Point, mbr: Rect) -> bool:
    """Does ``mbr`` lie fully inside the (half-open) quadrant region?

    The regions of the four compass locations are pairwise disjoint —
    not even boundaries are shared — so subnode MBRs that each fit their
    region cannot overlap at all.  EQ has no region: a subnode deriving
    EQ is always a violation.
    """
    if location == NE:
        return mbr.x_min >= center.x and mbr.y_min > center.y
    if location == SE:
        return mbr.x_min > center.x and mbr.y_max <= center.y
    if location == SW:
        return mbr.x_max <= center.x and mbr.y_max < center.y
    if location == NW:
        return mbr.x_max < center.x and mbr.y_min >= center.y
    return False


def _is_subnode(entry: PageEntry) -> bool:
    return entry.payload is None and entry.child is not None


def _loc(x: float, y: float, cx: float, cy: float) -> int:
    """:func:`location_of` on plain floats (the insertion hot path)."""
    if x == cx and y == cy:
        return EQ
    if x >= cx and y > cy:
        return NE
    if x > cx and y <= cy:
        return SE
    if x <= cx and y < cy:
        return SW
    return NW


def _region_holds(location: int, cx: float, cy: float, mbr: Rect) -> bool:
    """:func:`region_contains` on plain floats (the insertion hot path)."""
    if location == NE:
        return mbr.x_min >= cx and mbr.y_min > cy
    if location == SE:
        return mbr.x_min > cx and mbr.y_max <= cy
    if location == SW:
        return mbr.x_max <= cx and mbr.y_max < cy
    if location == NW:
        return mbr.x_max < cx and mbr.y_min >= cy
    return False


def _separable(entries: list[PageEntry]) -> bool:
    """Would these entries occupy more than one location of a fresh node?

    The test that guarantees termination of subnode creation: a group is
    pushed down only if it spreads over at least two locations under its
    own union centroid, so every recursion level strictly shrinks the
    groups.  Duplicate points (all EQ) and degenerate extended-object
    clusters stay bucketed in place.
    """
    union = mbr_of_rects(entry.mbr for entry in entries)
    cx = (union.x_min + union.x_max) * 0.5
    cy = (union.y_min + union.y_max) * 0.5
    first = -1
    for entry in entries:
        mbr = entry.mbr
        location = _loc(
            (mbr.x_min + mbr.x_max) * 0.5, (mbr.y_min + mbr.y_max) * 0.5, cx, cy
        )
        if first == -1:
            first = location
        elif location != first:
            return True
    return False


class MqrTree(SpatialIndex):
    """An mqr-tree over a page file."""

    def __init__(self, pagefile: PageFile | None = None) -> None:
        super().__init__(pagefile if pagefile is not None else PageFile())
        self.root_id: PageId | None = None
        self.entry_count = 0
        self._page_ids: set[PageId] = set()
        #: Authoritative node MBRs (always equal to the union of the
        #: node's entry MBRs; cached so insertion is O(1) per level).
        self._mbrs: dict[PageId, Rect] = {}
        #: Subtree heights (``Page.level`` mirrors this cache).
        self._levels: dict[PageId, int] = {}

    # ------------------------------------------------------------------
    # Page helpers
    # ------------------------------------------------------------------

    def _new_page(self) -> Page:
        page = self.pagefile.allocate(PageType.DATA, 0)
        self._page_ids.add(page.page_id)
        self._levels[page.page_id] = 0
        self._register_new_page(page)
        return page

    def _drop_page(self, page_id: PageId) -> None:
        self._page_ids.discard(page_id)
        self._mbrs.pop(page_id, None)
        self._levels.pop(page_id, None)
        self._free_page(page_id)

    def _refresh_meta(self, page: Page) -> None:
        """Recompute level (subtree height) and page type from the entries."""
        level = 0
        for entry in page.entries:
            if _is_subnode(entry):
                level = max(level, self._levels[entry.child] + 1)
        page.level = level
        self._levels[page.page_id] = level
        page.page_type = PageType.DATA if level == 0 else PageType.DIRECTORY

    def _slot_of(self, page: Page, location: int) -> list[PageEntry]:
        """The entries currently deriving ``location`` in this node."""
        node_mbr = self._mbrs[page.page_id]
        cx = (node_mbr.x_min + node_mbr.x_max) * 0.5
        cy = (node_mbr.y_min + node_mbr.y_max) * 0.5
        slot = []
        for entry in page.entries:
            mbr = entry.mbr
            if (
                _loc(
                    (mbr.x_min + mbr.x_max) * 0.5,
                    (mbr.y_min + mbr.y_max) * 0.5,
                    cx,
                    cy,
                )
                == location
            ):
                slot.append(entry)
        return slot

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, mbr: Rect, payload: Any) -> None:
        """Insert one object with the given MBR."""
        entry = PageEntry(mbr=mbr, payload=payload)
        self.entry_count += 1
        if self.root_id is None:
            root = self._new_page()
            root.entries.append(entry)
            self._mbrs[root.page_id] = mbr
            self.root_id = root.page_id
            self._mark_dirty(root)
            return
        self._insert_into(self.root_id, entry)

    def bulk_load(self, items: Iterable[tuple[Rect, Any]]) -> None:
        """Build the tree by repeated insertion (the mqr-tree has no
        packing algorithm; placement is fully determined by geometry)."""
        for mbr, payload in items:
            self.insert(mbr, payload)

    def _insert_into(self, page_id: PageId, entry: PageEntry) -> None:
        """Insert an object entry under the node ``page_id``.

        The paper's order of operations: grow the node MBR to include
        the object *first*, revalidate the existing entries against the
        moved centroid, and only then place the object.
        """
        page = self._page(page_id)
        old_mbr = self._mbrs[page_id]
        new_mbr = old_mbr.union(entry.mbr)
        if new_mbr != old_mbr:
            self._mbrs[page_id] = new_mbr
            if new_mbr.center != old_mbr.center:
                self._revalidate(page)
        self._place_object(page, entry)
        self._refresh_meta(page)
        self._mark_dirty(page)

    def _place_object(self, page: Page, entry: PageEntry) -> None:
        """Place an object entry in the location its centroid derives.

        Assumes the node MBR already covers the entry.  EQ is a plain
        bucket (objects whose centroid *is* the node centroid cannot be
        pushed down — a fresh subnode would reproduce the collision).
        """
        node_mbr = self._mbrs[page.page_id]
        cx = (node_mbr.x_min + node_mbr.x_max) * 0.5
        cy = (node_mbr.y_min + node_mbr.y_max) * 0.5
        mbr = entry.mbr
        location = _loc(
            (mbr.x_min + mbr.x_max) * 0.5, (mbr.y_min + mbr.y_max) * 0.5, cx, cy
        )
        if location == EQ:
            page.entries.append(entry)
            return
        slot = self._slot_of(page, location)
        for occupant in slot:
            if _is_subnode(occupant):
                # Route into the existing subnode of this quadrant.
                self._insert_into(occupant.child, entry)
                occupant.mbr = self._mbrs[occupant.child]
                return
        if not slot:
            page.entries.append(entry)
            return
        group = slot + [entry]
        if _separable(group):
            for occupant in slot:
                page.entries.remove(occupant)
            page.entries.append(self._build_node(group))
        else:
            page.entries.append(entry)  # inseparable: bucket in place

    def _build_node(self, objects: list[PageEntry]) -> PageEntry:
        """Build a subtree from a batch of object entries; return its entry.

        The node MBR is fixed to the union of the batch before any
        object is placed, so no revalidation can trigger mid-build and
        termination follows from :func:`_separable` alone.
        """
        page = self._new_page()
        union = mbr_of_rects(entry.mbr for entry in objects)
        self._mbrs[page.page_id] = union
        cx = (union.x_min + union.x_max) * 0.5
        cy = (union.y_min + union.y_max) * 0.5
        groups: dict[int, list[PageEntry]] = {}
        for entry in objects:
            mbr = entry.mbr
            location = _loc(
                (mbr.x_min + mbr.x_max) * 0.5,
                (mbr.y_min + mbr.y_max) * 0.5,
                cx,
                cy,
            )
            groups.setdefault(location, []).append(entry)
        for location, group in sorted(groups.items()):
            if location == EQ or len(group) == 1 or not _separable(group):
                page.entries.extend(group)
            else:
                page.entries.append(self._build_node(group))
        self._refresh_meta(page)
        self._mark_dirty(page)
        return PageEntry(mbr=union, child=page.page_id)

    def _revalidate(self, page: Page) -> None:
        """Re-derive every entry after the node centroid moved.

        Subnodes keep their place while their MBR still fits the quadrant
        region of their (re-derived) location.  A subnode that straddles
        the moved centroid undergoes *partial extraction*: only the
        entries of its subtree that crossed the centroid line are pulled
        out and re-placed, intact inner subtrees are pruned from the
        walk.  A subnode that derives EQ or collides with another
        subnode (possible only for extended objects) is dissolved
        entirely.  The node MBR is a fixed point during revalidation (no
        object leaves the node), so this never cascades upward.
        """
        node_mbr = self._mbrs[page.page_id]
        cx = (node_mbr.x_min + node_mbr.x_max) * 0.5
        cy = (node_mbr.y_min + node_mbr.y_max) * 0.5
        entries = page.entries
        page.entries = []
        objects: list[PageEntry] = []
        taken: set[int] = set()
        for entry in entries:
            if not _is_subnode(entry):
                objects.append(entry)
                continue
            mbr = entry.mbr
            location = _loc(
                (mbr.x_min + mbr.x_max) * 0.5,
                (mbr.y_min + mbr.y_max) * 0.5,
                cx,
                cy,
            )
            if location == EQ or location in taken:
                objects.extend(self._dissolve(entry))
                continue
            if not _region_holds(location, cx, cy, mbr):
                replacement = self._extract_outside(
                    entry, location, cx, cy, objects
                )
                if replacement is None:
                    continue
                entry = replacement
            taken.add(location)
            page.entries.append(entry)
        for entry in objects:
            self._place_object(page, entry)
        self._refresh_meta(page)
        self._mark_dirty(page)

    def _extract_outside(
        self,
        entry: PageEntry,
        location: int,
        cx: float,
        cy: float,
        extracted: list[PageEntry],
    ) -> "PageEntry | None":
        """Pull the entries outside ``region(location)`` out of a subtree.

        Appends the extracted object entries to ``extracted`` and returns
        the replacement entry for the (shrunken) subtree — ``None`` when
        nothing remains.  Subtrees already inside the region are kept
        without descending into them; the remaining union is inside the
        region by construction, because quadrant regions are closed
        under the union of contained boxes.
        """
        page = self._page(entry.child)
        kept: list[PageEntry] = []
        for child in page.entries:
            mbr = child.mbr
            if _region_holds(location, cx, cy, mbr):
                kept.append(child)
            elif _is_subnode(child):
                replacement = self._extract_outside(
                    child, location, cx, cy, extracted
                )
                if replacement is not None:
                    kept.append(replacement)
            else:
                extracted.append(child)
        if not kept:
            self._drop_page(page.page_id)
            return None
        if len(kept) == 1 and _is_subnode(kept[0]):
            self._drop_page(page.page_id)
            return kept[0]
        page.entries = kept
        old_mbr = self._mbrs[page.page_id]
        new_mbr = mbr_of_rects(child.mbr for child in kept)
        self._mbrs[page.page_id] = new_mbr
        if new_mbr.center != old_mbr.center:
            self._revalidate(page)
        else:
            self._refresh_meta(page)
            self._mark_dirty(page)
        return PageEntry(mbr=new_mbr, child=page.page_id)

    def _dissolve(self, entry: PageEntry) -> list[PageEntry]:
        """Collect all object entries of a subtree, freeing its pages."""
        collected: list[PageEntry] = []
        stack = [entry.child]
        while stack:
            page_id = stack.pop()
            page = self._page(page_id)
            for child in page.entries:
                if _is_subnode(child):
                    stack.append(child.child)
                else:
                    collected.append(child)
            self._drop_page(page_id)
        return collected

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, mbr: Rect, payload: Any) -> bool:
        """Remove the entry with this MBR and payload; True if found."""
        if self.root_id is None:
            return False
        result = self._delete_from(self.root_id, mbr, payload)
        if result is False:
            return False
        self.entry_count -= 1
        if result is None:
            self.root_id = None
        elif result.child != self.root_id:
            # The old root collapsed to a single subnode: hoist it.
            self.root_id = result.child
        return True

    def _delete_from(
        self, page_id: PageId, mbr: Rect, payload: Any
    ) -> "PageEntry | None | bool":
        """Delete under ``page_id``.

        Returns ``False`` when the entry is not in this subtree, ``None``
        when the subtree became empty (page freed), or the replacement
        entry for the subtree — the same node with a fresh MBR, or its
        single remaining subnode hoisted one level up.
        """
        page = self._page(page_id)
        found = False
        for index, entry in enumerate(page.entries):
            if not _is_subnode(entry) and entry.mbr == mbr and entry.payload == payload:
                del page.entries[index]
                found = True
                break
        if not found:
            for index, entry in enumerate(page.entries):
                if not _is_subnode(entry) or not entry.mbr.contains(mbr):
                    continue
                result = self._delete_from(entry.child, mbr, payload)
                if result is False:
                    continue
                if result is None:
                    del page.entries[index]
                else:
                    page.entries[index] = result
                found = True
                break
        if not found:
            return False
        if not page.entries:
            self._drop_page(page_id)
            return None
        old_mbr = self._mbrs[page_id]
        new_mbr = mbr_of_rects(entry.mbr for entry in page.entries)
        self._mbrs[page_id] = new_mbr
        if new_mbr.center != old_mbr.center:
            self._revalidate(page)
        self._refresh_meta(page)
        self._mark_dirty(page)
        if len(page.entries) == 1 and _is_subnode(page.entries[0]):
            hoisted = page.entries[0]
            self._drop_page(page_id)
            return hoisted
        return PageEntry(mbr=new_mbr, child=page_id)

    # ------------------------------------------------------------------
    # Queries — all page requests go through ``accessor``
    # ------------------------------------------------------------------

    def window_query(
        self, window: Rect, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """Payloads of all objects whose MBR intersects the window."""
        if self.root_id is None:
            return []
        accessor = self._accessor_or_build(accessor)
        results: list[Any] = []
        stack: list[PageId] = [self.root_id]
        while stack:
            page = accessor.fetch(stack.pop())
            for entry in page.entries:
                if not entry.mbr.intersects(window):
                    continue
                if _is_subnode(entry):
                    stack.append(entry.child)
                else:
                    results.append(entry.payload)
        return results

    def point_query(
        self, point: Point, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """Payloads of all objects whose MBR contains the point."""
        if self.root_id is None:
            return []
        accessor = self._accessor_or_build(accessor)
        results: list[Any] = []
        stack: list[PageId] = [self.root_id]
        while stack:
            page = accessor.fetch(stack.pop())
            for entry in page.entries:
                if not entry.mbr.contains_point(point):
                    continue
                if _is_subnode(entry):
                    stack.append(entry.child)
                else:
                    results.append(entry.payload)
        return results

    def knn(
        self, point: Point, k: int, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """The k objects with the smallest MINDIST to ``point``.

        Best-first search exactly as on the R*-tree; mqr-tree pages mix
        objects and subnodes, so the heap discriminates per entry.
        """
        if self.root_id is None or k < 1:
            return []
        accessor = self._accessor_or_build(accessor)
        counter = 0  # tie-breaker to keep heap entries comparable
        heap: list[tuple[float, int, bool, Any]] = [
            (0.0, counter, False, self.root_id)
        ]
        results: list[Any] = []
        while heap and len(results) < k:
            distance, _, is_object, item = heapq.heappop(heap)
            if is_object:
                results.append(item)
                continue
            page = accessor.fetch(item)
            for entry in page.entries:
                counter += 1
                entry_distance = entry.mbr.min_distance_to_point(point)
                if _is_subnode(entry):
                    heapq.heappush(
                        heap, (entry_distance, counter, False, entry.child)
                    )
                else:
                    heapq.heappush(
                        heap, (entry_distance, counter, True, entry.payload)
                    )
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> TreeStats:
        directory = 0
        data = 0
        for page_id in self._page_ids:
            if self._levels[page_id] > 0:
                directory += 1
            else:
                data += 1
        height = 0
        if self.root_id is not None:
            height = self._levels[self.root_id] + 1
        return TreeStats(
            page_count=directory + data,
            directory_pages=directory,
            data_pages=data,
            height=height,
            entry_count=self.entry_count,
        )

    def all_page_ids(self) -> list[PageId]:
        return sorted(self._page_ids)

    def validate(self, strict_regions: bool = False) -> None:
        """Check the structural invariants; raises AssertionError on damage.

        Always verified: cached node MBRs equal the union of the entries,
        parent entries carry their child's MBR, levels are exact subtree
        heights, page types match, every object is reachable exactly once.

        ``strict_regions`` additionally asserts the paper's organisation
        for point data: every subnode lies fully inside the (half-open)
        quadrant region of its derived location, at most one subnode per
        location, no subnode derives EQ — which together imply zero
        overlap between node MBRs at equal levels.
        """
        if self.root_id is None:
            assert self.entry_count == 0 and not self._page_ids
            return
        seen_objects = 0
        seen_pages: set[PageId] = set()
        stack: list[tuple[PageId, Rect]] = [
            (self.root_id, self._mbrs[self.root_id])
        ]
        while stack:
            page_id, expected_mbr = stack.pop()
            assert page_id not in seen_pages, f"page {page_id} reached twice"
            seen_pages.add(page_id)
            page = self._page(page_id)
            assert page.entries, f"page {page_id} is empty"
            union = mbr_of_rects(entry.mbr for entry in page.entries)
            assert union == expected_mbr == self._mbrs[page_id], (
                f"page {page_id}: MBR drift (union {union}, cached "
                f"{self._mbrs[page_id]}, expected {expected_mbr})"
            )
            center = union.center
            level = 0
            taken: set[int] = set()
            for entry in page.entries:
                if not _is_subnode(entry):
                    seen_objects += 1
                    continue
                level = max(level, self._levels[entry.child] + 1)
                stack.append((entry.child, entry.mbr))
                if strict_regions:
                    location = location_of(entry.mbr.center, center)
                    assert location != EQ, (
                        f"page {page_id}: subnode {entry.child} derives EQ"
                    )
                    assert location not in taken, (
                        f"page {page_id}: two subnodes in "
                        f"{LOCATION_NAMES[location]}"
                    )
                    taken.add(location)
                    assert region_contains(location, center, entry.mbr), (
                        f"page {page_id}: subnode {entry.child} outside its "
                        f"{LOCATION_NAMES[location]} region"
                    )
            assert self._levels[page_id] == level == page.level, (
                f"page {page_id}: level drift"
            )
            expected_type = PageType.DATA if level == 0 else PageType.DIRECTORY
            assert page.page_type is expected_type
        assert seen_pages == self._page_ids, "page-id set drift"
        assert seen_objects == self.entry_count, (
            f"object count mismatch: {seen_objects} reachable, "
            f"{self.entry_count} recorded"
        )
