"""Spatial join over two R-trees (synchronized tree traversal).

The paper's future work item #2 asks for "the influence of the strategies
on updates and spatial joins".  This module provides the join side: the
classic R-tree spatial join of Brinkhoff, Kriegel and Seeger (SIGMOD 1993)
— a synchronized depth-first traversal of two trees that only descends
into pairs of directory entries whose MBRs intersect, with the
search-space restriction to the intersection window.

Both trees fetch their pages through accessors (normally buffer managers),
so the join's page-access pattern — which alternates between the two
trees and revisits inner pages heavily — can be replayed against any
replacement policy.  Joins are the workload where buffering matters most:
each page of tree R may be paired with many pages of tree S.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry.rect import Rect
from repro.sam.base import PageAccessor
from repro.sam.rstar import RStarTree
from repro.storage.page import Page, PageEntry


def _matching_pairs(
    left: Page, right: Page, window: Rect | None
) -> Iterator[tuple[PageEntry, PageEntry]]:
    """Entry pairs with intersecting MBRs, restricted to ``window``.

    The search-space restriction of the original algorithm: an entry pair
    can only contribute results inside the intersection of the two page
    MBRs, so entries outside it are skipped before the quadratic pairing.
    """
    left_entries = left.entries
    right_entries = right.entries
    if window is not None:
        left_entries = [e for e in left_entries if e.mbr.intersects(window)]
        right_entries = [e for e in right_entries if e.mbr.intersects(window)]
    # Sort by x_min and sweep: avoids the full quadratic pairing on wide
    # pages (the plane-sweep order of the original paper).
    left_sorted = sorted(left_entries, key=lambda e: e.mbr.x_min)
    right_sorted = sorted(right_entries, key=lambda e: e.mbr.x_min)
    for left_entry in left_sorted:
        for right_entry in right_sorted:
            if right_entry.mbr.x_min > left_entry.mbr.x_max:
                break
            if left_entry.mbr.intersects(right_entry.mbr):
                yield left_entry, right_entry


def spatial_join(
    left_tree: RStarTree,
    right_tree: RStarTree,
    left_accessor: PageAccessor | None = None,
    right_accessor: PageAccessor | None = None,
) -> list[tuple[Any, Any]]:
    """All payload pairs whose MBRs intersect (MBR-filter step).

    Returns the *filter* result of a spatial join: candidate pairs by MBR
    intersection, the step whose I/O behaviour the buffer determines.  The
    refinement step (exact geometry) would fetch object pages and is out
    of scope of the paper's page-access study.

    The two accessors may be the same buffer manager (shared buffer, as in
    a real system) or distinct ones (per-relation buffers).
    """
    if left_tree.root_id is None or right_tree.root_id is None:
        return []
    left_accessor = left_tree._accessor_or_build(left_accessor)
    right_accessor = right_tree._accessor_or_build(right_accessor)
    results: list[tuple[Any, Any]] = []
    # The traversal stack holds (left page id, right page id, window).
    stack: list[tuple[int, int, Rect | None]] = [
        (left_tree.root_id, right_tree.root_id, None)
    ]
    while stack:
        left_id, right_id, window = stack.pop()
        left_page = left_accessor.fetch(left_id)
        right_page = right_accessor.fetch(right_id)
        if left_page.is_leaf and right_page.is_leaf:
            for left_entry, right_entry in _matching_pairs(
                left_page, right_page, window
            ):
                results.append((left_entry.payload, right_entry.payload))
        elif left_page.is_leaf:
            # Descend only the right tree; pair the left leaf with every
            # intersecting right child.
            left_mbr = left_page.mbr()
            for entry in right_page.entries:
                if left_mbr is not None and entry.mbr.intersects(left_mbr):
                    stack.append((left_id, entry.child, entry.mbr))
        elif right_page.is_leaf:
            right_mbr = right_page.mbr()
            for entry in left_page.entries:
                if right_mbr is not None and entry.mbr.intersects(right_mbr):
                    stack.append((entry.child, right_id, entry.mbr))
        else:
            for left_entry, right_entry in _matching_pairs(
                left_page, right_page, window
            ):
                sub_window = left_entry.mbr.intersection(right_entry.mbr)
                stack.append(
                    (left_entry.child, right_entry.child, sub_window)
                )
    return results


def nested_loop_join(
    left_tree: RStarTree,
    right_tree: RStarTree,
    left_accessor: PageAccessor | None = None,
    right_accessor: PageAccessor | None = None,
) -> list[tuple[Any, Any]]:
    """Baseline: index nested-loop join (one window query per left object).

    Scans the left tree's leaves and probes the right tree with each
    object's MBR.  Far more page requests than the synchronized traversal
    — the contrast makes the buffer's role visible and provides a
    correctness oracle for :func:`spatial_join`.
    """
    if left_tree.root_id is None or right_tree.root_id is None:
        return []
    left_accessor = left_tree._accessor_or_build(left_accessor)
    results: list[tuple[Any, Any]] = []
    stack = [left_tree.root_id]
    while stack:
        page = left_accessor.fetch(stack.pop())
        if page.is_leaf:
            for entry in page.entries:
                for right_payload in right_tree.window_query(
                    entry.mbr, right_accessor
                ):
                    results.append((entry.payload, right_payload))
        else:
            for entry in page.entries:
                stack.append(entry.child)  # type: ignore[arg-type]
    return results
