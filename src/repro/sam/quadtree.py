"""A bucket region quadtree over buffered pages.

Section 2.3 of the paper defines the spatial criteria for generic page
entries and names quadtree cells as one instance.  This quadtree partitions
the data space completely and without overlap — the configuration for which
the paper notes that criteria A and EA coincide on directory pages and EO
should not be applied.

Design: every node occupies one disk page.  A data (leaf) page holds up to
``capacity`` object entries; on overflow it is replaced by a directory page
with four quadrant children and its entries are redistributed, an entry
going to *every* quadrant it intersects (replication, as in the MMI
quadtree — query results are de-duplicated).  Subdivision stops at
``max_depth``; beyond it leaves may exceed capacity.

Page levels encode the LRU-P priority: a page at depth ``d`` has level
``max_depth - d``, so the root carries the highest level, like in the
R*-tree.
"""

from __future__ import annotations

from typing import Any

from repro.geometry.rect import Point, Rect
from repro.sam.base import PageAccessor, SpatialIndex, TreeStats
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile


class Quadtree(SpatialIndex):
    """Bucket quadtree with entry replication across quadrants."""

    def __init__(
        self,
        space: Rect,
        pagefile: PageFile | None = None,
        capacity: int = 42,
        max_depth: int = 12,
    ) -> None:
        super().__init__(pagefile if pagefile is not None else PageFile())
        if capacity < 4:
            raise ValueError("quadtree bucket capacity must be at least 4")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.space = space
        self.capacity = capacity
        self.max_depth = max_depth
        self.entry_count = 0
        self._page_ids: set[PageId] = set()
        # The region covered by each page, needed for subdivision; regions
        # are implicit in a quadtree (derivable from the path), kept here to
        # avoid re-deriving them on every insert.
        self._regions: dict[PageId, Rect] = {}
        self._depths: dict[PageId, int] = {}
        root = self._new_page(depth=0, leaf=True)
        self._regions[root.page_id] = space
        self.root_id: PageId = root.page_id

    # ------------------------------------------------------------------
    # Page helpers
    # ------------------------------------------------------------------

    def _new_page(self, depth: int, leaf: bool) -> Page:
        page_type = PageType.DATA if leaf else PageType.DIRECTORY
        page = self.pagefile.allocate(page_type, level=self.max_depth - depth)
        self._page_ids.add(page.page_id)
        self._depths[page.page_id] = depth
        self._register_new_page(page)
        return page

    @staticmethod
    def _quadrants(region: Rect) -> list[Rect]:
        center = region.center
        return [
            Rect(region.x_min, region.y_min, center.x, center.y),
            Rect(center.x, region.y_min, region.x_max, center.y),
            Rect(region.x_min, center.y, center.x, region.y_max),
            Rect(center.x, center.y, region.x_max, region.y_max),
        ]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, mbr: Rect, payload: Any) -> None:
        """Insert an object into every leaf quadrant its MBR intersects."""
        if not mbr.intersects(self.space):
            raise ValueError("object lies outside the quadtree's data space")
        self.entry_count += 1
        self._insert_into(self.root_id, mbr, payload)

    def _insert_into(self, page_id: PageId, mbr: Rect, payload: Any) -> None:
        stack = [page_id]
        while stack:
            current_id = stack.pop()
            page = self._page(current_id)
            if page.page_type is PageType.DIRECTORY:
                for entry in page.entries:
                    if entry.mbr.intersects(mbr):
                        stack.append(entry.child)  # type: ignore[arg-type]
                continue
            page.entries.append(PageEntry(mbr=mbr, payload=payload))
            self._mark_dirty(page)
            depth = self._depths[current_id]
            if len(page.entries) > self.capacity and depth < self.max_depth:
                self._subdivide(page, depth)

    def _subdivide(self, page: Page, depth: int) -> None:
        """Turn an overflowing leaf into a directory with four children."""
        region = self._regions[page.page_id]
        entries = page.entries
        page.entries = []
        children: list[PageEntry] = []
        for quadrant in self._quadrants(region):
            child = self._new_page(depth=depth + 1, leaf=True)
            self._regions[child.page_id] = quadrant
            child.entries = [e for e in entries if e.mbr.intersects(quadrant)]
            children.append(PageEntry(mbr=quadrant, child=child.page_id))
        # Convert the leaf into a directory page in place, so references
        # from the parent stay valid.
        page.page_type = PageType.DIRECTORY
        page.entries = children
        self._mark_dirty(page)
        # A child may itself overflow when all entries fall into the same
        # quadrant; subdivide recursively.
        for entry in children:
            child = self._page(entry.child)  # type: ignore[arg-type]
            if len(child.entries) > self.capacity and depth + 1 < self.max_depth:
                self._subdivide(child, depth + 1)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, mbr: Rect, payload: Any) -> bool:
        """Remove an object from every quadrant holding a replica.

        Returns ``True`` if at least one replica was removed.  Quadrants
        are not merged back after deletions (lazy deletion, the common
        practice for bucket quadtrees); re-inserting into sparse quadrants
        simply refills them.
        """
        removed = False
        stack = [self.root_id]
        while stack:
            page = self._page(stack.pop())
            if page.page_type is PageType.DIRECTORY:
                for entry in page.entries:
                    if entry.mbr.intersects(mbr):
                        stack.append(entry.child)  # type: ignore[arg-type]
                continue
            kept = [
                entry
                for entry in page.entries
                if not (entry.payload == payload and entry.mbr == mbr)
            ]
            if len(kept) != len(page.entries):
                page.entries = kept
                self._mark_dirty(page)
                removed = True
        if removed:
            self.entry_count -= 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def window_query(
        self, window: Rect, accessor: PageAccessor | None = None
    ) -> list[Any]:
        accessor = self._accessor_or_build(accessor)
        results: list[Any] = []
        seen: set[Any] = set()
        stack: list[PageId] = [self.root_id]
        while stack:
            page = accessor.fetch(stack.pop())
            if page.page_type is PageType.DIRECTORY:
                for entry in page.entries:
                    if entry.mbr.intersects(window):
                        stack.append(entry.child)  # type: ignore[arg-type]
                continue
            for entry in page.entries:
                if entry.mbr.intersects(window) and entry.payload not in seen:
                    seen.add(entry.payload)
                    results.append(entry.payload)
        return results

    def point_query(
        self, point: Point, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """Point queries never need de-duplication: quadrants are disjoint.

        (A point on a quadrant boundary may still visit two leaves, so the
        seen-set is kept for correctness.)
        """
        return self.window_query(point.as_rect(), accessor)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> TreeStats:
        directory = 0
        data = 0
        max_level = 0
        for page_id in self._page_ids:
            page = self._page(page_id)
            if page.page_type is PageType.DIRECTORY:
                directory += 1
            else:
                data += 1
            max_level = max(max_level, self._depths[page_id])
        return TreeStats(
            page_count=directory + data,
            directory_pages=directory,
            data_pages=data,
            height=max_level + 1,
            entry_count=self.entry_count,
        )

    def all_page_ids(self) -> list[PageId]:
        return sorted(self._page_ids)
