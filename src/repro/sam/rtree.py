"""Guttman's original R-tree (SIGMOD 1984), as a baseline SAM.

Differs from the R*-tree in exactly the places Guttman's paper defines:

* **ChooseLeaf** minimises area enlargement at every level (no overlap
  criterion);
* node splits use Guttman's **quadratic** (default) or **linear** algorithm
  instead of the R* margin/overlap split;
* there is **no forced reinsertion**.

Everything else — deletion with condensation, STR bulk loading, the query
algorithms, validation — is inherited from :class:`RStarTree`.
"""

from __future__ import annotations

import math

from repro.geometry.rect import Rect, mbr_of_rects
from repro.sam.rstar import RStarTree
from repro.storage.page import Page, PageEntry
from repro.storage.pagefile import PageFile


class RTree(RStarTree):
    """Guttman R-tree with quadratic or linear split."""

    def __init__(
        self,
        pagefile: PageFile | None = None,
        max_dir_entries: int = 51,
        max_data_entries: int = 42,
        min_fill: float = 0.4,
        split: str = "quadratic",
    ) -> None:
        if split not in ("quadratic", "linear"):
            raise ValueError("split must be 'quadratic' or 'linear'")
        super().__init__(
            pagefile,
            max_dir_entries=max_dir_entries,
            max_data_entries=max_data_entries,
            min_fill=min_fill,
            reinsert_fraction=0.0,  # Guttman trees never reinsert
        )
        self.split_algorithm = split

    # ------------------------------------------------------------------
    # Guttman's ChooseLeaf: least enlargement at every level
    # ------------------------------------------------------------------

    def _choose_subtree(self, node: Page, mbr: Rect) -> int:
        best_index = 0
        best_key: tuple[float, float] | None = None
        for i, candidate in enumerate(node.entries):
            key = (candidate.mbr.enlargement(mbr), candidate.mbr.area)
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        return best_index

    # ------------------------------------------------------------------
    # Guttman's splits
    # ------------------------------------------------------------------

    def _choose_split(
        self, entries: list[PageEntry], min_entries: int
    ) -> tuple[list[PageEntry], list[PageEntry]]:
        if self.split_algorithm == "quadratic":
            return self._quadratic_split(entries, min_entries)
        return self._linear_split(entries, min_entries)

    def _quadratic_split(
        self, entries: list[PageEntry], min_entries: int
    ) -> tuple[list[PageEntry], list[PageEntry]]:
        """PickSeeds by maximal dead area, PickNext by maximal preference."""
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds_quadratic(remaining)
        # Remove the later index first so the earlier one stays valid.
        for index in sorted((seed_a, seed_b), reverse=True):
            del remaining[index]
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = group_a[0].mbr
        mbr_b = group_b[0].mbr
        while remaining:
            # If one group must take all remaining entries to reach the
            # minimum fill, assign them wholesale (Guttman's rule).
            if len(group_a) + len(remaining) == min_entries:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == min_entries:
                group_b.extend(remaining)
                break
            index, prefer_a = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
        return group_a, group_b

    @staticmethod
    def _pick_seeds_quadratic(entries: list[PageEntry]) -> tuple[int, int]:
        """The pair wasting the most area when put in one node."""
        best = (0, 1)
        worst_waste = -math.inf
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                a = entries[i].mbr
                b = entries[j].mbr
                waste = a.union(b).area - a.area - b.area
                if waste > worst_waste:
                    worst_waste = waste
                    best = (i, j)
        return best

    @staticmethod
    def _pick_next(
        remaining: list[PageEntry], mbr_a: Rect, mbr_b: Rect
    ) -> tuple[int, bool]:
        """Entry with the strongest group preference, and that preference."""
        best_index = 0
        best_difference = -math.inf
        prefer_a = True
        for i, entry in enumerate(remaining):
            grow_a = mbr_a.enlargement(entry.mbr)
            grow_b = mbr_b.enlargement(entry.mbr)
            difference = abs(grow_a - grow_b)
            if difference > best_difference:
                best_difference = difference
                best_index = i
                if grow_a != grow_b:
                    prefer_a = grow_a < grow_b
                else:
                    prefer_a = mbr_a.area <= mbr_b.area
        return best_index, prefer_a

    def _linear_split(
        self, entries: list[PageEntry], min_entries: int
    ) -> tuple[list[PageEntry], list[PageEntry]]:
        """PickSeeds by greatest normalised separation, then greedy assign."""
        total_mbr = mbr_of_rects(e.mbr for e in entries)
        best_separation = -math.inf
        seeds = (0, 1)
        for axis in ("x", "y"):
            if axis == "x":
                width = total_mbr.width or 1.0
                highest_low = max(range(len(entries)), key=lambda i: entries[i].mbr.x_min)
                lowest_high = min(range(len(entries)), key=lambda i: entries[i].mbr.x_max)
                separation = (
                    entries[highest_low].mbr.x_min - entries[lowest_high].mbr.x_max
                ) / width
            else:
                height = total_mbr.height or 1.0
                highest_low = max(range(len(entries)), key=lambda i: entries[i].mbr.y_min)
                lowest_high = min(range(len(entries)), key=lambda i: entries[i].mbr.y_max)
                separation = (
                    entries[highest_low].mbr.y_min - entries[lowest_high].mbr.y_max
                ) / height
            if separation > best_separation and highest_low != lowest_high:
                best_separation = separation
                seeds = (lowest_high, highest_low)
        if seeds[0] == seeds[1]:  # all entries identical; force two groups
            seeds = (0, 1)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        mbr_a = group_a[0].mbr
        mbr_b = group_b[0].mbr
        rest = [e for i, e in enumerate(entries) if i not in seeds]
        for position, entry in enumerate(rest):
            left = len(rest) - position
            if len(group_a) + left == min_entries:
                group_a.extend(rest[position:])
                break
            if len(group_b) + left == min_entries:
                group_b.extend(rest[position:])
                break
            if mbr_a.enlargement(entry.mbr) <= mbr_b.enlargement(entry.mbr):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
        return group_a, group_b
