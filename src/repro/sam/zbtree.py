"""A B+-tree over z-order values (the PROBE approach, Orenstein/Manola).

The third flavour of spatial page entries named in Section 2.3: objects are
mapped onto a space-filling curve and stored in an ordinary B+-tree keyed by
their z-value.  Window queries decompose the window into z-ranges
(:func:`repro.geometry.zorder.z_region_ranges`) and scan the tree for each
range, filtering false positives against the actual object MBRs.

Entry MBRs are real geometry, not curve cells: a leaf entry carries the
object's MBR, an inner entry the MBR of its child's subtree.  The spatial
replacement criteria therefore work on this index exactly as on the
R-trees.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

from repro.geometry.rect import Point, Rect
from repro.geometry.zorder import DEFAULT_BITS, z_encode, z_region_ranges
from repro.sam.base import PageAccessor, SpatialIndex, TreeStats
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile


class ZBTree(SpatialIndex):
    """B+-tree on Morton codes of the objects.

    ``multi_cell=False`` (default) stores one entry per object, keyed by
    the Morton code of its MBR centre — compact, but extended objects are
    only found by queries overlapping their centre cell.  ``multi_cell=
    True`` follows the full PROBE approach: every object is stored once
    per z-curve cell range covering its MBR (bounded by ``cells_per_object``),
    so window and point queries are exact for extended objects at the cost
    of duplicated entries (results are de-duplicated).
    """

    def __init__(
        self,
        space: Rect,
        pagefile: PageFile | None = None,
        max_entries: int = 42,
        bits: int = DEFAULT_BITS,
        max_ranges: int = 48,
        multi_cell: bool = False,
        cells_per_object: int = 4,
    ) -> None:
        super().__init__(pagefile if pagefile is not None else PageFile())
        if max_entries < 4:
            raise ValueError("node capacity must be at least 4")
        if cells_per_object < 1:
            raise ValueError("cells_per_object must be positive")
        self.space = space
        self.max_entries = max_entries
        self.bits = bits
        self.max_ranges = max_ranges
        self.multi_cell = multi_cell
        self.cells_per_object = cells_per_object
        self.entry_count = 0
        self.height = 0
        self.root_id: PageId | None = None
        self._page_ids: set[PageId] = set()
        # Minimal z-key of every page's subtree, used as the B+-tree
        # separator (kept off-page: keys are search metadata, MBRs stay on
        # the page for the replacement policies).
        self._min_key: dict[PageId, int] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _key_of(self, mbr: Rect) -> int:
        return z_encode(mbr.center, self.space, self.bits)

    def _keys_of(self, mbr: Rect) -> list[int]:
        """All z-keys an object is stored under.

        In multi-cell mode the object's MBR is decomposed into at most
        ``cells_per_object`` curve ranges and the object is keyed by each
        range's lower end — the PROBE scheme of storing extended objects
        as several z-values.
        """
        if not self.multi_cell or mbr.area == 0.0:
            return [self._key_of(mbr)]
        ranges = z_region_ranges(
            mbr, self.space, self.bits, max_ranges=self.cells_per_object
        )
        if not ranges:
            return [self._key_of(mbr)]
        return [lo for lo, _hi in ranges]

    def _ancestor_keys(self, lo: int) -> list[int]:
        """The z-prefixes of coarser quadrants containing cell ``lo``.

        A stored multi-cell entry may be keyed by a quadrant *larger* than
        every query range; such entries are only reachable by looking up
        the query range's ancestor prefixes directly (at most ``bits`` of
        them) — the classic containment case of z-value indexing.
        """
        keys = []
        for level in range(1, self.bits + 1):
            mask = (1 << (2 * level)) - 1
            keys.append(lo & ~mask)
        return keys

    def _new_page(self, level: int) -> Page:
        page_type = PageType.DATA if level == 0 else PageType.DIRECTORY
        page = self.pagefile.allocate(page_type, level)
        self._page_ids.add(page.page_id)
        self._register_new_page(page)
        return page

    @staticmethod
    def _leaf_key(entry: PageEntry) -> int:
        """Leaf entries store (z_key, payload) in the payload slot."""
        return entry.payload[0]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, mbr: Rect, payload: Any) -> None:
        self.entry_count += 1
        for key in self._keys_of(mbr):
            self._insert_key(key, mbr, payload)

    def _insert_key(self, key: int, mbr: Rect, payload: Any) -> None:
        entry = PageEntry(mbr=mbr, payload=(key, payload))
        if self.root_id is None:
            root = self._new_page(level=0)
            root.entries.append(entry)
            self._min_key[root.page_id] = key
            self.root_id = root.page_id
            self.height = 1
            return
        split = self._insert_recursive(self._root(), key, entry)
        if split is not None:
            old_root = self._root()
            new_root = self._new_page(level=old_root.level + 1)
            old_mbr = old_root.mbr()
            assert old_mbr is not None
            new_root.entries.append(
                PageEntry(mbr=old_mbr, child=old_root.page_id)
            )
            new_root.entries.append(split)
            self._min_key[new_root.page_id] = self._min_key[old_root.page_id]
            self.root_id = new_root.page_id
            self.height += 1

    def _root(self) -> Page:
        assert self.root_id is not None
        return self._page(self.root_id)

    def _insert_recursive(
        self, node: Page, key: int, entry: PageEntry
    ) -> PageEntry | None:
        if node.is_leaf:
            keys = [self._leaf_key(e) for e in node.entries]
            index = bisect.bisect_right(keys, key)
            node.entries.insert(index, entry)
            self._mark_dirty(node)
            self._min_key[node.page_id] = self._leaf_key(node.entries[0])
        else:
            child_index = self._descend_index(node, key)
            child_entry = node.entries[child_index]
            child = self._page(child_entry.child)  # type: ignore[arg-type]
            split = self._insert_recursive(child, key, entry)
            child_mbr = child.mbr()
            assert child_mbr is not None
            node.entries[child_index] = PageEntry(
                mbr=child_mbr, child=child_entry.child
            )
            if split is not None:
                node.entries.insert(child_index + 1, split)
            self._mark_dirty(node)
            self._min_key[node.page_id] = self._min_key[
                node.entries[0].child  # type: ignore[index]
            ]
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _descend_index(self, node: Page, key: int) -> int:
        """Index of the child whose key range covers ``key``."""
        child_keys = [
            self._min_key[entry.child]  # type: ignore[index]
            for entry in node.entries
        ]
        index = bisect.bisect_right(child_keys, key) - 1
        return max(index, 0)

    def _split(self, node: Page) -> PageEntry:
        """Standard B+-tree midpoint split; returns the new sibling entry."""
        half = len(node.entries) // 2
        sibling = self._new_page(node.level)
        sibling.entries = node.entries[half:]
        node.entries = node.entries[:half]
        self._mark_dirty(node)
        if node.is_leaf:
            self._min_key[sibling.page_id] = self._leaf_key(sibling.entries[0])
        else:
            self._min_key[sibling.page_id] = self._min_key[
                sibling.entries[0].child  # type: ignore[index]
            ]
        sibling_mbr = sibling.mbr()
        assert sibling_mbr is not None
        return PageEntry(mbr=sibling_mbr, child=sibling.page_id)

    def delete(self, mbr: Rect, payload: Any) -> bool:
        """Remove the entry with this MBR and payload; True if found.

        Deletion is *lazy* (no merging of under-full leaves), the common
        choice for B+-trees in practice: page utilisation recovers through
        subsequent inserts, and empty leaves remain as valid range
        boundaries.
        """
        if self.root_id is None:
            return False
        removed_any = False
        for key in self._keys_of(mbr):
            if self._delete_key(key, mbr, payload):
                removed_any = True
        if removed_any:
            self.entry_count -= 1
        return removed_any

    def _delete_key(self, key: int, mbr: Rect, payload: Any) -> bool:
        max_key = (1 << (2 * self.bits)) - 1
        # Duplicate keys may span leaf boundaries, so search every leaf
        # whose (inclusive) key range covers the key, keeping the path for
        # the ancestor-MBR tightening afterwards.
        stack: list[list[Page]] = [[self._root()]]
        while stack:
            path = stack.pop()
            node = path[-1]
            if not node.is_leaf:
                children = node.entries
                for i, entry in enumerate(children):
                    child_lo = self._min_key[entry.child]  # type: ignore[index]
                    child_hi = (
                        self._min_key[children[i + 1].child]  # type: ignore[index]
                        if i + 1 < len(children)
                        else max_key
                    )
                    if child_lo <= key <= child_hi:
                        stack.append(path + [self._page(entry.child)])  # type: ignore[arg-type]
                continue
            for index, entry in enumerate(node.entries):
                if entry.payload == (key, payload) and entry.mbr == mbr:
                    del node.entries[index]
                    self._mark_dirty(node)
                    if node.entries:
                        self._min_key[node.page_id] = self._leaf_key(
                            node.entries[0]
                        )
                    child = node
                    for parent in reversed(path[:-1]):
                        child_mbr = child.mbr()
                        for position, parent_entry in enumerate(parent.entries):
                            if parent_entry.child == child.page_id:
                                parent.entries[position] = PageEntry(
                                    mbr=child_mbr
                                    if child_mbr is not None
                                    else parent_entry.mbr,
                                    child=parent_entry.child,
                                )
                                self._mark_dirty(parent)
                                break
                        child = parent
                    return True
        return False

    def bulk_load(self, items: Iterable[tuple[Rect, Any]]) -> None:
        """Build from scratch by sorted insertion (z-order presort)."""
        if self.root_id is not None:
            raise RuntimeError("bulk_load() requires an empty tree")
        expanded = [
            (key, mbr, payload)
            for mbr, payload in items
            for key in self._keys_of(mbr)
        ]
        expanded.sort(key=lambda item: item[0])
        for key, mbr, payload in expanded:
            self._insert_key(key, mbr, payload)
        # entry_count tracks objects, not cell replicas.
        self.entry_count = len({payload for _k, _m, payload in expanded})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def window_query(
        self, window: Rect, accessor: PageAccessor | None = None
    ) -> list[Any]:
        if self.root_id is None:
            return []
        accessor = self._accessor_or_build(accessor)
        ranges = z_region_ranges(window, self.space, self.bits, self.max_ranges)
        results: list[Any] = []
        for lo, hi in ranges:
            self._range_scan(accessor, lo, hi, window, results)
        if self.multi_cell:
            # Containment case: entries keyed by quadrants coarser than any
            # query range are found via the ranges' ancestor prefixes.
            ancestors: set[int] = set()
            for lo, _hi in ranges:
                ancestors.update(self._ancestor_keys(lo))
            for key in sorted(ancestors):
                self._range_scan(accessor, key, key, window, results)
            seen: set[Any] = set()
            unique: list[Any] = []
            for payload in results:
                if payload not in seen:
                    seen.add(payload)
                    unique.append(payload)
            return unique
        return results

    def _range_scan(
        self,
        accessor: PageAccessor,
        lo: int,
        hi: int,
        window: Rect,
        results: list[Any],
    ) -> None:
        """Collect window matches among leaf entries with keys in [lo, hi]."""
        stack: list[PageId] = [self.root_id]  # type: ignore[list-item]
        while stack:
            page = accessor.fetch(stack.pop())
            if page.is_leaf:
                for entry in page.entries:
                    key = self._leaf_key(entry)
                    if lo <= key <= hi and entry.mbr.intersects(window):
                        results.append(entry.payload[1])
                continue
            children = page.entries
            # The key range of child i is [min_key(i), min_key(i+1)]; the
            # upper bound is *inclusive* because duplicate keys may span a
            # leaf boundary (the next leaf's minimum equals the previous
            # leaf's maximum).
            for i, entry in enumerate(children):
                child_lo = self._min_key[entry.child]  # type: ignore[index]
                child_hi = (
                    self._min_key[children[i + 1].child]  # type: ignore[index]
                    if i + 1 < len(children)
                    else (1 << (2 * self.bits)) - 1
                )
                if child_lo <= hi and lo <= child_hi:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def point_query(
        self, point: Point, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """Objects whose MBR contains the point.

        In multi-cell mode the query is exact (delegates to the enriched
        window search).  In centre-keyed mode a z-curve index cannot answer
        containment from the key alone, so the query scans the point's cell
        and misses extended objects whose centre lies elsewhere — the
        documented trade-off of single-z-value indexing.
        """
        if self.multi_cell:
            return self.window_query(point.as_rect(), accessor)
        if self.root_id is None:
            return []
        accessor = self._accessor_or_build(accessor)
        # Extended objects may span many cells; search the whole data space
        # filtered by containment would touch everything, so use the window
        # machinery with the point window and accept that objects whose
        # centre is far away are missed — matching how z-indexed systems
        # store extended objects as multiple z-values (here: one per
        # object).  Degenerate window = the point itself.
        window = point.as_rect()
        results = []
        ranges = z_region_ranges(window, self.space, self.bits, self.max_ranges)
        for lo, hi in ranges:
            matches: list[Any] = []
            self._range_scan(accessor, lo, hi, window, matches)
            results.extend(matches)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> TreeStats:
        directory = 0
        data = 0
        for page_id in self._page_ids:
            page = self._page(page_id)
            if page.page_type is PageType.DIRECTORY:
                directory += 1
            else:
                data += 1
        return TreeStats(
            page_count=directory + data,
            directory_pages=directory,
            data_pages=data,
            height=self.height,
            entry_count=self.entry_count,
        )

    def all_page_ids(self) -> list[PageId]:
        return sorted(self._page_ids)

    def validate(self) -> None:
        """Check B+-tree ordering invariants (AssertionError on damage)."""
        if self.root_id is None:
            return
        stack: list[tuple[PageId, int]] = [(self.root_id, self.height - 1)]
        while stack:
            page_id, expected_level = stack.pop()
            page = self._page(page_id)
            assert page.level == expected_level
            if page.is_leaf:
                keys = [self._leaf_key(e) for e in page.entries]
                assert keys == sorted(keys), f"leaf {page_id} keys out of order"
                assert self._min_key[page_id] == keys[0]
                continue
            child_keys = [
                self._min_key[entry.child]  # type: ignore[index]
                for entry in page.entries
            ]
            assert child_keys == sorted(child_keys), (
                f"inner {page_id} separators out of order"
            )
            for entry in page.entries:
                stack.append((entry.child, expected_level - 1))  # type: ignore[arg-type]
