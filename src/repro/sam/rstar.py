"""The R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990).

The paper's databases are managed by R*-trees (maximum 51 entries per
directory page and 42 per data page for database 1), so this is the primary
spatial access method of the reproduction.  The implementation covers the
full algorithm suite:

* **ChooseSubtree** with minimum overlap enlargement at the leaf level and
  minimum area enlargement above it;
* **forced reinsertion** (30 % of the entries, once per level and insertion);
* the **R\\* split** (margin-driven axis choice, overlap-driven distribution
  choice);
* **deletion** with tree condensation and re-insertion of orphaned entries;
* **STR bulk loading** for building large trees quickly with a controlled
  storage utilisation (used by the experiment harness to build paper-scale
  trees in reasonable time).

Construction operates directly on the page file (unaccounted: the paper
clears the buffer before the measured query phase); queries request every
page through the supplied accessor, normally a buffer manager.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterable

from repro.geometry.rect import Point, Rect, mbr_of_rects
from repro.sam.base import PageAccessor, SpatialIndex, TreeStats
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile


try:  # optional acceleration; the library itself has no hard dependencies
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


def _choose_subtree_leaf_numpy(entries: list["PageEntry"], mbr: Rect) -> int | None:
    """Vectorised leaf-level ChooseSubtree; ``None`` without numpy.

    Computes, for every candidate entry, the summed overlap with all other
    entries before and after enlarging it by ``mbr`` — the same key the
    scalar loop builds, evaluated as matrix operations.
    """
    if _np is None:
        return None
    boxes = _np.array(
        [(e.mbr.x_min, e.mbr.y_min, e.mbr.x_max, e.mbr.y_max) for e in entries]
    )
    n = len(entries)
    enlarged = boxes.copy()
    enlarged[:, 0] = _np.minimum(enlarged[:, 0], mbr.x_min)
    enlarged[:, 1] = _np.minimum(enlarged[:, 1], mbr.y_min)
    enlarged[:, 2] = _np.maximum(enlarged[:, 2], mbr.x_max)
    enlarged[:, 3] = _np.maximum(enlarged[:, 3], mbr.y_max)

    def pairwise_overlap(lhs: "_np.ndarray") -> "_np.ndarray":
        width = _np.minimum(lhs[:, None, 2], boxes[None, :, 2]) - _np.maximum(
            lhs[:, None, 0], boxes[None, :, 0]
        )
        height = _np.minimum(lhs[:, None, 3], boxes[None, :, 3]) - _np.maximum(
            lhs[:, None, 1], boxes[None, :, 1]
        )
        overlap = _np.clip(width, 0.0, None) * _np.clip(height, 0.0, None)
        _np.fill_diagonal(overlap, 0.0)
        return overlap.sum(axis=1)

    overlap_before = pairwise_overlap(boxes)
    overlap_after = pairwise_overlap(enlarged)
    areas = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    enlarged_areas = (enlarged[:, 2] - enlarged[:, 0]) * (
        enlarged[:, 3] - enlarged[:, 1]
    )
    keys = list(
        zip(overlap_after - overlap_before, enlarged_areas - areas, areas)
    )
    best = min(range(n), key=lambda i: keys[i])
    return best


class RStarTree(SpatialIndex):
    """An R*-tree over a page file."""

    def __init__(
        self,
        pagefile: PageFile | None = None,
        max_dir_entries: int = 51,
        max_data_entries: int = 42,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ) -> None:
        super().__init__(pagefile if pagefile is not None else PageFile())
        if max_dir_entries < 4 or max_data_entries < 4:
            raise ValueError("R*-tree nodes need a capacity of at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.max_dir_entries = max_dir_entries
        self.max_data_entries = max_data_entries
        self.min_dir_entries = max(2, int(round(min_fill * max_dir_entries)))
        self.min_data_entries = max(2, int(round(min_fill * max_data_entries)))
        self.reinsert_fraction = reinsert_fraction
        self.root_id: PageId | None = None
        self.height = 0  # number of levels; 1 == a single leaf root
        self.entry_count = 0
        self._page_ids: set[PageId] = set()
        # Levels that already used forced reinsertion during the current
        # insertion ("the first overflow treatment on each level").
        self._reinserted_levels: set[int] = set()
        # Entries waiting for (re-)insertion as (entry, target_level) pairs.
        self._pending: list[tuple[PageEntry, int]] = []

    # ------------------------------------------------------------------
    # Page helpers
    # ------------------------------------------------------------------

    def _new_page(self, level: int) -> Page:
        page_type = PageType.DATA if level == 0 else PageType.DIRECTORY
        page = self.pagefile.allocate(page_type, level)
        self._page_ids.add(page.page_id)
        self._register_new_page(page)
        return page

    def _max_entries(self, level: int) -> int:
        return self.max_data_entries if level == 0 else self.max_dir_entries

    def _min_entries(self, level: int) -> int:
        return self.min_data_entries if level == 0 else self.min_dir_entries

    def _root(self) -> Page:
        if self.root_id is None:
            raise RuntimeError("the tree is empty")
        return self._page(self.root_id)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, mbr: Rect, payload: Any, object_page: PageId | None = None) -> None:
        """Insert one object.

        ``object_page`` optionally links the data entry to an object page
        holding the exact representation (Section 2.1's third category).
        """
        entry = PageEntry(mbr=mbr, child=object_page, payload=payload)
        self.entry_count += 1
        if self.root_id is None:
            root = self._new_page(level=0)
            root.entries.append(entry)
            self.root_id = root.page_id
            self.height = 1
            return
        self._reinserted_levels = set()
        self._pending = [(entry, 0)]
        while self._pending:
            pending_entry, target_level = self._pending.pop()
            self._insert_at_level(pending_entry, target_level)

    def _insert_at_level(self, entry: PageEntry, target_level: int) -> None:
        root = self._root()
        split = self._insert_recursive(root, root.level, entry, target_level)
        if split is not None:
            self._grow_root(split)

    def _grow_root(self, split_entry: PageEntry) -> None:
        old_root = self._root()
        new_root = self._new_page(level=old_root.level + 1)
        old_mbr = old_root.mbr()
        assert old_mbr is not None
        new_root.entries.append(PageEntry(mbr=old_mbr, child=old_root.page_id))
        new_root.entries.append(split_entry)
        self.root_id = new_root.page_id
        self.height += 1

    def _insert_recursive(
        self, node: Page, level: int, entry: PageEntry, target_level: int
    ) -> PageEntry | None:
        """Insert ``entry`` under ``node``; return a split entry if any."""
        if level == target_level:
            node.entries.append(entry)
            self._mark_dirty(node)
        else:
            index = self._choose_subtree(node, entry.mbr)
            child_entry = node.entries[index]
            child = self._page(child_entry.child)  # type: ignore[arg-type]
            split = self._insert_recursive(child, level - 1, entry, target_level)
            child_mbr = child.mbr()
            assert child_mbr is not None
            node.entries[index] = PageEntry(
                mbr=child_mbr, child=child_entry.child, payload=child_entry.payload
            )
            if split is not None:
                node.entries.append(split)
            self._mark_dirty(node)
        if len(node.entries) > self._max_entries(level):
            return self._overflow_treatment(node, level)
        return None

    def _choose_subtree(self, node: Page, mbr: Rect) -> int:
        """R* ChooseSubtree: index of the child entry to descend into."""
        entries = node.entries
        if node.level == 1:
            # Children are leaves: minimise overlap enlargement, resolve
            # ties by area enlargement, then by area.  The pairwise overlap
            # scan is O(M^2); with the paper's fanout of 51 it dominates
            # insertion cost, so a vectorised path is used when numpy is
            # available (pure-Python fallback below is exact-equivalent).
            if len(entries) >= 8:
                vectorised = _choose_subtree_leaf_numpy(entries, mbr)
                if vectorised is not None:
                    return vectorised
            best_index = 0
            best_key: tuple[float, float, float] | None = None
            for i, candidate in enumerate(entries):
                enlarged = candidate.mbr.union(mbr)
                overlap_before = 0.0
                overlap_after = 0.0
                for j, other in enumerate(entries):
                    if i == j:
                        continue
                    overlap_before += candidate.mbr.intersection_area(other.mbr)
                    overlap_after += enlarged.intersection_area(other.mbr)
                key = (
                    overlap_after - overlap_before,
                    enlarged.area - candidate.mbr.area,
                    candidate.mbr.area,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = i
            return best_index
        # Children are directory pages: minimise area enlargement, then area.
        best_index = 0
        best_key2: tuple[float, float] | None = None
        for i, candidate in enumerate(entries):
            key2 = (candidate.mbr.enlargement(mbr), candidate.mbr.area)
            if best_key2 is None or key2 < best_key2:
                best_key2 = key2
                best_index = i
        return best_index

    # ------------------------------------------------------------------
    # Overflow treatment: forced reinsert or split
    # ------------------------------------------------------------------

    def _overflow_treatment(self, node: Page, level: int) -> PageEntry | None:
        is_root = node.page_id == self.root_id
        first_on_level = level not in self._reinserted_levels
        if not is_root and first_on_level and self.reinsert_fraction > 0.0:
            self._reinserted_levels.add(level)
            self._force_reinsert(node, level)
            return None
        return self._split(node, level)

    def _force_reinsert(self, node: Page, level: int) -> None:
        """Remove the entries farthest from the node centre and re-queue them.

        R* reinserts p = 30 % of the M+1 entries, sorted by the distance of
        their centre from the centre of the node MBR; the farthest entries
        are removed and reinserted closest-first ("close reinsert").
        """
        count = max(1, int(round(self.reinsert_fraction * len(node.entries))))
        node_mbr = node.mbr()
        assert node_mbr is not None
        center = node_mbr.center
        by_distance = sorted(
            node.entries,
            key=lambda e: e.mbr.center.distance_to(center),
        )
        keep = by_distance[: len(node.entries) - count]
        reinsert = by_distance[len(node.entries) - count :]
        node.entries = keep
        self._mark_dirty(node)
        # Push farthest first so the pending stack pops closest first.
        for entry in reversed(reinsert):
            self._pending.append((entry, level))

    # ------------------------------------------------------------------
    # The R* split
    # ------------------------------------------------------------------

    def _split(self, node: Page, level: int) -> PageEntry:
        """Split an overflowing node in place; return the new sibling entry."""
        group_a, group_b = self._choose_split(node.entries, self._min_entries(level))
        sibling = self._new_page(level)
        node.entries = group_a
        sibling.entries = group_b
        self._mark_dirty(node)
        sibling_mbr = sibling.mbr()
        assert sibling_mbr is not None
        return PageEntry(mbr=sibling_mbr, child=sibling.page_id)

    def _choose_split(
        self, entries: list[PageEntry], min_entries: int
    ) -> tuple[list[PageEntry], list[PageEntry]]:
        """ChooseSplitAxis + ChooseSplitIndex of the R*-tree."""
        total = len(entries)
        # Distributions split after (m-1+k) entries with k = 1..(M-2m+2);
        # both groups then hold at least m entries (total = M+1).
        max_k = total - 2 * min_entries + 1
        if max_k < 1:
            # Degenerate capacity; fall back to an even split by x-order.
            ordered = sorted(entries, key=lambda e: (e.mbr.x_min, e.mbr.x_max))
            half = total // 2
            return ordered[:half], ordered[half:]

        def distributions(sort_key) -> Iterable[tuple[list[PageEntry], list[PageEntry]]]:
            ordered = sorted(entries, key=sort_key)
            for k in range(1, max_k + 1):
                split_at = min_entries - 1 + k
                yield ordered[:split_at], ordered[split_at:]

        sort_keys = {
            "x": [
                lambda e: (e.mbr.x_min, e.mbr.x_max),
                lambda e: (e.mbr.x_max, e.mbr.x_min),
            ],
            "y": [
                lambda e: (e.mbr.y_min, e.mbr.y_max),
                lambda e: (e.mbr.y_max, e.mbr.y_min),
            ],
        }
        # ChooseSplitAxis: minimise the summed margin over all distributions.
        best_axis = "x"
        best_margin_sum = math.inf
        for axis, keys in sort_keys.items():
            margin_sum = 0.0
            for key in keys:
                for group_a, group_b in distributions(key):
                    margin_sum += (
                        mbr_of_rects(e.mbr for e in group_a).margin
                        + mbr_of_rects(e.mbr for e in group_b).margin
                    )
            if margin_sum < best_margin_sum:
                best_margin_sum = margin_sum
                best_axis = axis
        # ChooseSplitIndex: minimise overlap, then total area.
        best_split: tuple[list[PageEntry], list[PageEntry]] | None = None
        best_key: tuple[float, float] | None = None
        for key_fn in sort_keys[best_axis]:
            for group_a, group_b in distributions(key_fn):
                mbr_a = mbr_of_rects(e.mbr for e in group_a)
                mbr_b = mbr_of_rects(e.mbr for e in group_b)
                candidate_key = (
                    mbr_a.intersection_area(mbr_b),
                    mbr_a.area + mbr_b.area,
                )
                if best_key is None or candidate_key < best_key:
                    best_key = candidate_key
                    best_split = (list(group_a), list(group_b))
        assert best_split is not None
        return best_split

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, mbr: Rect, payload: Any) -> bool:
        """Remove the entry with this MBR and payload; True if found."""
        if self.root_id is None:
            return False
        path = self._find_leaf_path(self._root(), mbr, payload)
        if path is None:
            return False
        leaf = path[-1][0]
        for i, entry in enumerate(leaf.entries):
            if entry.payload == payload and entry.mbr == mbr:
                del leaf.entries[i]
                break
        self._mark_dirty(leaf)
        self.entry_count -= 1
        self._condense(path)
        return True

    def _find_leaf_path(
        self, node: Page, mbr: Rect, payload: Any
    ) -> list[tuple[Page, int]] | None:
        """Path of (page, index-in-parent) ending at the leaf holding the entry.

        The root's parent index is -1.
        """
        stack: list[list[tuple[Page, int]]] = [[(node, -1)]]
        while stack:
            path = stack.pop()
            page, _ = path[-1]
            if page.is_leaf:
                for entry in page.entries:
                    if entry.payload == payload and entry.mbr == mbr:
                        return path
                continue
            for i, entry in enumerate(page.entries):
                if entry.mbr.contains(mbr):
                    child = self._page(entry.child)  # type: ignore[arg-type]
                    stack.append(path + [(child, i)])
        return None

    def _condense(self, path: list[tuple[Page, int]]) -> None:
        """CondenseTree: dissolve underfull nodes, re-insert their entries."""
        orphans: list[tuple[PageEntry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            page, parent_index = path[depth]
            parent = path[depth - 1][0]
            if len(page.entries) < self._min_entries(page.level):
                del parent.entries[parent_index]
                self._mark_dirty(parent)
                # Later siblings shifted left; fix indexes recorded deeper in
                # the path is unnecessary since we walk bottom-up and each
                # index refers to its own parent, captured before mutation.
                for entry in page.entries:
                    orphans.append((entry, page.level))
                self._page_ids.discard(page.page_id)
                self._free_page(page.page_id)
            else:
                child_mbr = page.mbr()
                assert child_mbr is not None
                old = parent.entries[parent_index]
                parent.entries[parent_index] = PageEntry(
                    mbr=child_mbr, child=old.child, payload=old.payload
                )
                self._mark_dirty(parent)
        self._shrink_root()
        if orphans:
            self._reinserted_levels = set(range(self.height))  # splits only
            for entry, level in orphans:
                self._pending.append((entry, level))
            while self._pending:
                entry, level = self._pending.pop()
                if level >= self.height:
                    # The tree shrank below the orphan's level; re-insert its
                    # descendants' data entries instead.
                    for data_entry in self._collect_data_entries(entry):
                        self._pending.append((data_entry, 0))
                    continue
                self._insert_at_level(entry, level)
        self._shrink_root()

    def _collect_data_entries(self, entry: PageEntry) -> list[PageEntry]:
        if entry.child is None or entry.payload is not None:
            return [entry]
        collected: list[PageEntry] = []
        stack = [entry]
        while stack:
            current = stack.pop()
            if current.child is not None and current.payload is None:
                page = self._page(current.child)
                if page.page_type is PageType.OBJECT:
                    collected.append(current)
                    continue
                stack.extend(page.entries)
                self._page_ids.discard(page.page_id)
                self._free_page(page.page_id)
            else:
                collected.append(current)
        return collected

    def _shrink_root(self) -> None:
        while self.root_id is not None:
            root = self._root()
            if root.is_leaf:
                if not root.entries:
                    self._page_ids.discard(root.page_id)
                    self._free_page(root.page_id)
                    self.root_id = None
                    self.height = 0
                return
            if len(root.entries) == 1:
                child_id = root.entries[0].child
                assert child_id is not None
                self._page_ids.discard(root.page_id)
                self._free_page(root.page_id)
                self.root_id = child_id
                self.height -= 1
            else:
                return

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------

    def bulk_load(
        self,
        items: Iterable[tuple[Rect, Any]],
        fill: float = 0.7,
        object_pages: dict[Any, PageId] | None = None,
        method: str = "str",
    ) -> None:
        """Build the tree bottom-up with STR or Hilbert packing.

        ``fill`` controls storage utilisation: the paper's database 1 holds
        1,641,079 entries in 56,745 data pages, i.e. ~69 % of the 42-entry
        capacity, so 0.7 is the default.  ``object_pages`` optionally maps
        payloads to the object pages holding their exact representation
        (see :mod:`repro.storage.objects`).  ``method`` selects the packing
        order: ``"str"`` (Sort-Tile-Recursive) or ``"hilbert"`` (Kamel &
        Faloutsos' Hilbert packing).  Only valid on an empty tree.
        """
        if self.root_id is not None:
            raise RuntimeError("bulk_load() requires an empty tree")
        if not 0.0 < fill <= 1.0:
            raise ValueError("fill must be in (0, 1]")
        if method not in ("str", "hilbert"):
            raise ValueError("method must be 'str' or 'hilbert'")
        item_list = list(items)
        if not item_list:
            return
        self.entry_count = len(item_list)
        links = object_pages or {}
        entries = [
            PageEntry(mbr=mbr, payload=payload, child=links.get(payload))
            for mbr, payload in item_list
        ]
        level = 0
        while True:
            capacity = max(2, int(self._max_entries(level) * fill))
            if method == "hilbert":
                pages = self._hilbert_pack(entries, level, capacity)
            else:
                pages = self._str_pack(entries, level, capacity)
            if len(pages) == 1:
                self.root_id = pages[0].page_id
                self.height = level + 1
                return
            entries = []
            for page in pages:
                page_mbr = page.mbr()
                assert page_mbr is not None
                entries.append(PageEntry(mbr=page_mbr, child=page.page_id))
            level += 1

    def _str_pack(
        self, entries: list[PageEntry], level: int, capacity: int
    ) -> list[Page]:
        """Pack entries into pages of one level using Sort-Tile-Recursive."""
        page_count = math.ceil(len(entries) / capacity)
        slab_count = math.ceil(math.sqrt(page_count))
        per_slab = slab_count * capacity
        by_x = sorted(entries, key=lambda e: (e.mbr.center.x, e.mbr.center.y))
        pages: list[Page] = []
        for slab_start in range(0, len(by_x), per_slab):
            slab = by_x[slab_start : slab_start + per_slab]
            slab.sort(key=lambda e: (e.mbr.center.y, e.mbr.center.x))
            for page_start in range(0, len(slab), capacity):
                page = self._new_page(level)
                page.entries = slab[page_start : page_start + capacity]
                pages.append(page)
        self._rebalance_tail(pages, level)
        return pages

    def _hilbert_pack(
        self, entries: list[PageEntry], level: int, capacity: int
    ) -> list[Page]:
        """Pack entries into pages of one level in Hilbert-curve order."""
        from repro.geometry.hilbert import hilbert_encode

        space = mbr_of_rects(e.mbr for e in entries)
        if space.area == 0.0:
            space = Rect(
                space.x_min, space.y_min, space.x_min + 1.0, space.y_min + 1.0
            )
        ordered = sorted(
            entries, key=lambda e: hilbert_encode(e.mbr.center, space)
        )
        pages: list[Page] = []
        for start in range(0, len(ordered), capacity):
            page = self._new_page(level)
            page.entries = ordered[start : start + capacity]
            pages.append(page)
        self._rebalance_tail(pages, level)
        return pages

    def _rebalance_tail(self, pages: list[Page], level: int) -> None:
        """Redistribute trailing entries so no page violates the minimum fill.

        STR packing can leave a short tail page (e.g. 12 directory entries
        packed 5+5+2 with a minimum of 3).  Pool pages from the end until an
        even redistribution satisfies the minimum, then re-chunk.
        """
        min_entries = self._min_entries(level)
        if len(pages) < 2 or len(pages[-1].entries) >= min_entries:
            return
        pooled_pages = [pages.pop()]
        pooled: list[PageEntry] = list(pooled_pages[0].entries)
        while pages and len(pooled) < min_entries * len(pooled_pages):
            donor = pages.pop()
            pooled_pages.append(donor)
            pooled = list(donor.entries) + pooled
        chunk_count = len(pooled_pages)
        base = len(pooled) // chunk_count
        remainder = len(pooled) % chunk_count
        position = 0
        # Refill the pooled pages in their original (front-to-back) order.
        for index, page in enumerate(reversed(pooled_pages)):
            size = base + (1 if index < remainder else 0)
            page.entries = pooled[position : position + size]
            position += size
            pages.append(page)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def window_query(
        self,
        window: Rect,
        accessor: PageAccessor | None = None,
        fetch_objects: bool = False,
    ) -> list[Any]:
        """Payloads of all objects whose MBR intersects the window."""
        if self.root_id is None:
            return []
        accessor = self._accessor_or_build(accessor)
        results: list[Any] = []
        stack: list[PageId] = [self.root_id]
        while stack:
            page = accessor.fetch(stack.pop())
            if page.is_leaf:
                for entry in page.entries:
                    if entry.mbr.intersects(window):
                        results.append(entry.payload)
                        if fetch_objects and entry.child is not None:
                            accessor.fetch(entry.child)
            else:
                for entry in page.entries:
                    if entry.mbr.intersects(window):
                        stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def point_query(
        self,
        point: Point,
        accessor: PageAccessor | None = None,
        fetch_objects: bool = False,
    ) -> list[Any]:
        """Payloads of all objects whose MBR contains the point."""
        if self.root_id is None:
            return []
        accessor = self._accessor_or_build(accessor)
        results: list[Any] = []
        stack: list[PageId] = [self.root_id]
        while stack:
            page = accessor.fetch(stack.pop())
            if page.is_leaf:
                for entry in page.entries:
                    if entry.mbr.contains_point(point):
                        results.append(entry.payload)
                        if fetch_objects and entry.child is not None:
                            accessor.fetch(entry.child)
            else:
                for entry in page.entries:
                    if entry.mbr.contains_point(point):
                        stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def knn(
        self, point: Point, k: int, accessor: PageAccessor | None = None
    ) -> list[Any]:
        """The k objects with the smallest MINDIST to ``point``.

        Best-first search (Hjaltason/Samet): the priority queue holds
        *deferred* page references ordered by MINDIST; a page is fetched
        only when its queue entry is popped, so subtrees farther than the
        k-th best object are never read.
        """
        if self.root_id is None or k < 1:
            return []
        accessor = self._accessor_or_build(accessor)
        counter = 0  # tie-breaker to keep heap entries comparable
        # Heap items: (distance, counter, is_object, payload-or-page-id).
        heap: list[tuple[float, int, bool, Any]] = [
            (0.0, counter, False, self.root_id)
        ]
        results: list[Any] = []
        while heap and len(results) < k:
            distance, _, is_object, item = heapq.heappop(heap)
            if is_object:
                results.append(item)
                continue
            page = accessor.fetch(item)
            for entry in page.entries:
                counter += 1
                entry_distance = entry.mbr.min_distance_to_point(point)
                if page.is_leaf:
                    heapq.heappush(
                        heap, (entry_distance, counter, True, entry.payload)
                    )
                else:
                    heapq.heappush(
                        heap, (entry_distance, counter, False, entry.child)
                    )
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> TreeStats:
        directory = 0
        data = 0
        for page_id in self._page_ids:
            page = self._page(page_id)
            if page.page_type is PageType.DIRECTORY:
                directory += 1
            else:
                data += 1
        return TreeStats(
            page_count=directory + data,
            directory_pages=directory,
            data_pages=data,
            height=self.height,
            entry_count=self.entry_count,
        )

    def all_page_ids(self) -> list[PageId]:
        return sorted(self._page_ids)

    def validate(self) -> None:
        """Check the structural invariants; raises AssertionError on damage.

        Verified invariants: every directory entry's MBR equals its child's
        MBR; levels decrease by one on the way down; leaves are at level 0;
        nodes except the root respect the minimum fill; the recorded entry
        count matches the leaves.
        """
        if self.root_id is None:
            assert self.height == 0 and self.entry_count == 0
            return
        seen_entries = 0
        stack: list[tuple[PageId, int]] = [(self.root_id, self.height - 1)]
        while stack:
            page_id, expected_level = stack.pop()
            page = self._page(page_id)
            assert page.level == expected_level, (
                f"page {page_id}: level {page.level} != expected {expected_level}"
            )
            if page.page_id != self.root_id:
                assert len(page.entries) >= self._min_entries(page.level), (
                    f"page {page_id} under-full: {len(page.entries)} entries"
                )
            assert len(page.entries) <= self._max_entries(page.level), (
                f"page {page_id} over-full: {len(page.entries)} entries"
            )
            if page.is_leaf:
                seen_entries += len(page.entries)
                continue
            for entry in page.entries:
                assert entry.child is not None
                child = self._page(entry.child)
                child_mbr = child.mbr()
                assert child_mbr == entry.mbr, (
                    f"page {page_id}: stale MBR for child {entry.child}"
                )
                stack.append((entry.child, expected_level - 1))
        assert seen_entries == self.entry_count, (
            f"entry count mismatch: {seen_entries} in leaves, "
            f"{self.entry_count} recorded"
        )
