"""Buffer statistics.

The paper's experiments report disk accesses; hit/miss counts are the
buffer-side view of the same events (every miss is one disk read).  The
stats object also tracks eviction counts and the policy's auxiliary memory
(LRU-K's retained history), so the memory argument of Section 4.3 — ASB
needs no per-evicted-page state, LRU-K does — can be reproduced as data.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class BufferStats:
    """Counters kept by a :class:`~repro.buffer.manager.BufferManager`."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    queries: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the buffer (0.0 if unused)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def disk_reads(self) -> int:
        """Disk reads caused by buffer misses (the paper's metric)."""
        return self.misses

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.queries = 0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view, convenient for reports and assertions."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "queries": self.queries,
            "hit_ratio": self.hit_ratio,
        }
