"""A partitioned buffer: one sub-buffer per page category.

The paper's experimental setup keeps object pages "in separate files and
buffers" (Section 3); real systems likewise often run separate pools for
index and data pages.  :class:`PartitionedBufferManager` provides that
architecture: page requests are routed by page category to independent
:class:`~repro.buffer.manager.BufferManager` instances, each with its own
capacity and replacement policy.

Routing needs the category of a page *before* it is read.  In a real
system the category follows from the file a page belongs to; the simulator
resolves it through an unaccounted catalogue lookup on the shared disk.

The partitioned manager satisfies the page-accessor protocol, so indexes
and queries use it exactly like a flat buffer manager.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from typing import Iterator, Mapping

from repro.buffer.manager import BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.stats import BufferStats
from repro.obs.events import EventSink
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId, PageType


class PartitionedBufferManager:
    """Independent buffer pools per page category over one shared disk."""

    def __init__(
        self,
        disk: SimulatedDisk,
        partitions: Mapping[PageType, tuple[int, ReplacementPolicy]],
        observer: EventSink | None = None,
    ) -> None:
        if not partitions:
            raise ValueError("at least one partition is required")
        self.disk = disk
        self.buffers: dict[PageType, BufferManager] = {
            page_type: BufferManager(disk, capacity, policy, observer=observer)
            for page_type, (capacity, policy) in partitions.items()
        }
        self._observer = observer

    # ------------------------------------------------------------------
    # Page requests
    # ------------------------------------------------------------------

    def _route(self, page_id: PageId) -> BufferManager:
        page_type = self.disk.peek(page_id).page_type  # catalogue lookup
        buffer = self.buffers.get(page_type)
        if buffer is None:
            raise KeyError(
                f"no buffer partition for {page_type.value} pages "
                f"(page {page_id})"
            )
        return buffer

    def fetch(self, page_id: PageId) -> Page:
        return self._route(page_id).fetch(page_id)

    def mark_dirty(self, page_id: PageId) -> None:
        self._route(page_id).mark_dirty(page_id)

    def install(self, page: Page) -> None:
        """Place a freshly allocated page into its category's partition."""
        buffer = self.buffers.get(page.page_type)
        if buffer is None:
            raise KeyError(
                f"no buffer partition for {page.page_type.value} pages "
                f"(page {page.page_id})"
            )
        buffer.install(page)

    def discard(self, page_id: PageId) -> None:
        """Drop a deallocated page from whichever partition holds it.

        Routed by residency, not by catalogue: the page may already be
        gone from the disk when its buffered copy is invalidated.
        """
        for buffer in self.buffers.values():
            if buffer.contains(page_id):
                buffer.discard(page_id)
                return

    def pin(self, page_id: PageId) -> None:
        self._route(page_id).pin(page_id)

    def unpin(self, page_id: PageId) -> None:
        self._route(page_id).unpin(page_id)

    @contextmanager
    def pinned(self, page_id: PageId) -> Iterator[Page]:
        """RAII pin guard (see :meth:`BufferManager.pinned`)."""
        with self._route(page_id).pinned(page_id) as page:
            yield page

    # ------------------------------------------------------------------
    # Scopes and maintenance
    # ------------------------------------------------------------------

    @contextmanager
    def query_scope(self) -> Iterator[None]:
        """Bracket one query across all partitions."""
        with ExitStack() as stack:
            for buffer in self.buffers.values():
                stack.enter_context(buffer.query_scope())
            yield

    def flush(self) -> None:
        for buffer in self.buffers.values():
            buffer.flush()

    def clear(self, force: bool = False) -> None:
        """Clear all partitions; refuses atomically if any holds pins.

        The pinned check runs across every partition before any is
        cleared, so a refused clear leaves all of them untouched.
        """
        if not force:
            pinned = sum(
                buffer._pinned_frames for buffer in self.buffers.values()
            )
            if pinned:
                from repro.buffer.manager import BufferFullError

                raise BufferFullError(
                    f"clear() with {pinned} pinned frame(s) resident would "
                    "dangle their pins; unpin first or pass force=True"
                )
        for buffer in self.buffers.values():
            buffer.clear(force=force)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def observer(self) -> EventSink | None:
        """The event sink shared by all partitions (see :mod:`repro.obs`).

        Each partition keeps its own logical clock, so events from
        different pools interleave in emission order; consumers that need
        the partition can route by the event's page id.
        """
        return self._observer

    @observer.setter
    def observer(self, sink: EventSink | None) -> None:
        self._observer = sink
        for buffer in self.buffers.values():
            buffer.observer = sink

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total frames across all partitions."""
        return sum(buffer.capacity for buffer in self.buffers.values())

    @property
    def stats(self) -> BufferStats:
        """Aggregated statistics over all partitions (a fresh snapshot)."""
        total = BufferStats()
        for buffer in self.buffers.values():
            total.requests += buffer.stats.requests
            total.hits += buffer.stats.hits
            total.misses += buffer.stats.misses
            total.evictions += buffer.stats.evictions
            total.writebacks += buffer.stats.writebacks
        # Queries are counted once per scope, not once per partition.
        any_buffer = next(iter(self.buffers.values()))
        total.queries = any_buffer.stats.queries
        return total

    def contains(self, page_id: PageId) -> bool:
        return any(buffer.contains(page_id) for buffer in self.buffers.values())

    def __len__(self) -> int:
        return sum(len(buffer) for buffer in self.buffers.values())
