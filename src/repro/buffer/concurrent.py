"""A thread-safe buffer service over the single-threaded core.

The paper's ASB is motivated by servers where "different queries ... are
processed concurrently"; this module provides the execution path that lets
the reproduction actually *run* concurrent clients instead of simulating
interleavings.  :class:`ConcurrentBufferManager` implements the full page
accessor protocol (see :mod:`repro.access`), so indexes, queries and
workload drivers written against the protocol run on it unchanged.

Design
======

**Sharded locks.**  The frame pool is split into ``shards`` independent
sub-pools, each a plain single-threaded
:class:`~repro.buffer.manager.BufferManager` (frame table + its own policy
instance) guarded by one lock.  Pages route to shards by id, so threads
touching disjoint pages contend only on their shard, and the classical
one-big-latch bottleneck (the contention point buffer-management surveys
engineer around) shrinks by the shard count.  Because each shard runs the
unmodified sequential core, every policy's documented invariants hold
per shard — a policy never observes concurrent mutation.

**Lock-free statistics.**  The hot-path counters (requests, hits, misses,
coalesced waits, query scopes) go to per-thread counter records registered
once per thread; reading :attr:`stats` merges the records.  No counter
update takes a lock, and no thread writes another thread's record.

**Miss coalescing.**  Concurrent misses on the same page would each issue
the identical disk read.  A per-shard in-flight table makes the first
misser the *loader* (it reads the disk outside the shard lock, then admits
the page); later missers wait on the loader's event and are then served
from the frame it installed.  Exactly one disk read per coalesced group —
waiters count as hits on the loaded frame, with the wait recorded in the
``coalesced`` counter.

**Query correlation.**  Scope ids come from one process-wide counter, and
the current scope travels in a ``threading.local``: each thread's scope
brackets *its* queries, so two clients' concurrent queries are never
correlated (the multi-client semantics LRU-K needs), while one client's
page accesses within a query still are.

Logical clocks are per shard.  Single-threaded replays through a
one-shard service behave exactly like a plain :class:`BufferManager`;
with several shards, event streams interleave in emission order and each
shard ticks independently — consumers that need a total order get the
lock-acquisition order of the (thread-safe) observer.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.buffer.manager import BufferManager
from repro.buffer.stats import BufferStats
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

if TYPE_CHECKING:
    from repro.buffer.policies.base import ReplacementPolicy
    from repro.obs.events import EventSink
    from repro.wal.manager import DurabilityManager

#: A fresh policy per shard — policy instances bind to one buffer manager.
PolicyFactory = Callable[[], "ReplacementPolicy"]


class _ThreadCounters:
    """One thread's private slice of the service statistics."""

    __slots__ = ("requests", "hits", "misses", "coalesced", "queries")

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.queries = 0


class _InFlight:
    """One in-progress disk read that concurrent missers wait on."""

    __slots__ = ("event", "error", "superseded")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.error: BaseException | None = None
        #: Set by install()/discard() while the read is in flight: the
        #: bytes being loaded may describe an older version of the page
        #: than what just went through the buffer, so the loader must not
        #: admit them (see the retry loop in fetch()).
        self.superseded = False


class _Shard:
    """One lock-protected sub-pool: a sequential core plus coalescing state."""

    __slots__ = ("lock", "manager", "inflight", "mutations")

    def __init__(self, manager: BufferManager) -> None:
        self.lock = threading.RLock()
        self.manager = manager
        self.inflight: dict[PageId, _InFlight] = {}
        #: Bumped by every install()/discard(); the uncoalesced fetch path
        #: (which has no in-flight entry to flag) re-reads the disk when
        #: the counter moved during its off-lock read.
        self.mutations = 0


class ConcurrentBufferManager:
    """Thread-safe page service: sharded sequential cores, coalesced misses.

    Implements the full page accessor protocol.  ``capacity`` is the total
    frame count, split as evenly as possible over ``shards`` sub-pools;
    ``policy_factory`` is called once per shard (policies bind to a single
    manager).  An ``observer`` is wrapped in a
    :class:`~repro.obs.events.LockingSink` automatically, so any
    single-threaded sink can be attached directly.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int,
        policy_factory: PolicyFactory,
        shards: int = 4,
        observer: "EventSink | None" = None,
        durability: "DurabilityManager | None" = None,
        coalesce: bool = True,
    ) -> None:
        from repro.obs.events import LockingSink

        if shards < 1:
            raise ValueError("shard count must be at least 1")
        if capacity < shards:
            raise ValueError(
                f"capacity {capacity} cannot give each of {shards} shards a frame"
            )
        if durability is not None and durability.checkpoint_interval:
            # A checkpoint must cover *every* frame pool, but the tick hook
            # fires inside one shard core and sees only that shard's
            # frames.  Automatic checkpoints would silently violate the
            # redo-start guarantee; use the explicit checkpoint() instead.
            raise ValueError(
                "automatic checkpoints (checkpoint_interval > 0) are only "
                "valid for a single sequential buffer; call "
                "ConcurrentBufferManager.checkpoint() explicitly"
            )
        self.disk = disk
        self.capacity = capacity
        #: Miss coalescing on/off.  Off means every concurrent misser of
        #: the same page issues its own disk read (the classic duplicated
        #: I/O the in-flight table exists to prevent) — kept as a switch
        #: so the ablation harness can measure what coalescing saves.
        self.coalesce = coalesce
        self._observer = LockingSink.wrapping(observer)
        #: Shared durability seam, if any (all shards feed one WAL; its
        #: internal lock always nests *inside* the shard locks).
        self.durability = durability
        base, extra = divmod(capacity, shards)
        self._shards = [
            _Shard(
                BufferManager(
                    disk,
                    base + (1 if index < extra else 0),
                    policy_factory(),
                    observer=self._observer,
                    durability=durability,
                )
            )
            for index in range(shards)
        ]
        # Process-wide query ids: `next()` on an itertools.count is atomic
        # under CPython, so scope allocation takes no lock.
        self._query_ids = itertools.count(1)
        self._scopes = threading.local()
        # Per-thread counter records.  Registration (first use per thread)
        # takes the registry lock once; every later update is lock-free.
        self._counters_local = threading.local()
        self._registry: list[_ThreadCounters] = []
        self._registry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Internals: routing, counters, query binding
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, page_id: PageId) -> int:
        """Index of the shard serving ``page_id`` (stable, id-hash routing)."""
        return page_id % len(self._shards)

    def _shard(self, page_id: PageId) -> _Shard:
        return self._shards[page_id % len(self._shards)]

    def _counters(self) -> _ThreadCounters:
        counters = getattr(self._counters_local, "value", None)
        if counters is None:
            counters = _ThreadCounters()
            self._counters_local.value = counters
            with self._registry_lock:
                self._registry.append(counters)
        return counters

    def _scope_stack(self) -> list[int]:
        stack = getattr(self._scopes, "stack", None)
        if stack is None:
            stack = []
            self._scopes.stack = stack
        return stack

    def _request_query_id(self) -> int:
        """The current thread's scope id, or a fresh uncorrelated one."""
        stack = self._scope_stack()
        if stack:
            return stack[-1]
        return next(self._query_ids)

    @staticmethod
    def _bind(manager: BufferManager, query_id: int) -> None:
        """Impose the calling thread's query context on a shard core.

        The sequential core keeps its query state in instance fields; under
        the shard lock we overwrite them with the thread's scope before
        every operation, so correlation follows threads, not shards.
        ``_in_query`` stays True so the core never allocates ids of its
        own — all ids come from the process-wide counter.
        """
        manager._query_id = query_id
        manager._in_query = True

    # ------------------------------------------------------------------
    # Page requests
    # ------------------------------------------------------------------

    def fetch(self, page_id: PageId) -> Page:
        """Request a page; at most one disk read per concurrent miss group."""
        counters = self._counters()
        counters.requests += 1
        query_id = self._request_query_id()
        shard = self._shard(page_id)
        manager = shard.manager
        if not self.coalesce:
            return self._fetch_uncoalesced(shard, page_id, counters, query_id)
        first_attempt = True
        counted_miss = False
        while True:
            with shard.lock:
                self._bind(manager, query_id)
                if first_attempt:
                    manager.begin_request(page_id)
                    first_attempt = False
                frame = manager.frames.get(page_id)
                if frame is not None:
                    counters.hits += 1
                    return manager.serve_hit(frame)
                entry = shard.inflight.get(page_id)
                if entry is None:
                    # We are the loader for this miss group.  One request is
                    # at most one miss, however many times the loop retries.
                    entry = _InFlight()
                    shard.inflight[page_id] = entry
                    if not counted_miss:
                        manager.stats.misses += 1
                        counters.misses += 1
                        counted_miss = True
                    am_loader = True
                else:
                    am_loader = False
            if not am_loader:
                # Another thread is already reading this page: wait without
                # holding the shard lock, then retry the lookup.  If the
                # frame was evicted again before we re-acquired the lock,
                # the loop promotes us to loader — a genuine second miss.
                counters.coalesced += 1
                entry.event.wait()
                if entry.error is not None:
                    raise entry.error
                continue
            # Loader path: the read happens outside the lock so the shard
            # keeps serving hits (and other misses) meanwhile.
            try:
                page = self.disk.read(page_id)
            except BaseException as exc:
                with shard.lock:
                    del shard.inflight[page_id]
                    entry.error = exc
                    entry.event.set()
                raise
            with shard.lock:
                self._bind(manager, query_id)
                try:
                    frame = manager.frames.get(page_id)
                    if frame is not None:
                        # install() made the page resident while we were off
                        # the lock reading disk — it goes straight through
                        # the shard lock and never consults the in-flight
                        # table.  Admitting our (stale) copy on top would
                        # orphan the resident frame inside the recency
                        # chain; serve the resident page instead.
                        return frame.page
                    if not entry.superseded:
                        return manager.complete_miss(page)
                    # An install()/discard() landed during our read and its
                    # frame is already gone again (evicted after write-back,
                    # or deallocated).  Our bytes may predate it — admitting
                    # them would resurrect a stale version.  Retry: the
                    # eviction wrote the newer version back before dropping
                    # the frame, so a fresh read observes it.
                except BaseException as exc:
                    entry.error = exc
                    raise
                finally:
                    del shard.inflight[page_id]
                    entry.event.set()

    def _fetch_uncoalesced(
        self,
        shard: _Shard,
        page_id: PageId,
        counters: _ThreadCounters,
        query_id: int,
    ) -> Page:
        """The miss path with coalescing disabled: no in-flight table.

        Every concurrent misser of the same page issues its own disk
        read; whoever re-acquires the shard lock first installs the
        frame, and the others' reads turn out to have been duplicated
        I/O (visible as ``disk.stats.reads > stats.misses``).
        """
        manager = shard.manager
        with shard.lock:
            self._bind(manager, query_id)
            manager.begin_request(page_id)
            frame = manager.frames.get(page_id)
            if frame is not None:
                counters.hits += 1
                return manager.serve_hit(frame)
            manager.stats.misses += 1
            counters.misses += 1
        while True:
            with shard.lock:
                stamp = shard.mutations
            page = self.disk.read(page_id)
            with shard.lock:
                self._bind(manager, query_id)
                frame = manager.frames.get(page_id)
                if frame is not None:
                    # Another misser installed the page while we were
                    # reading: our read was the duplicate this mode exists
                    # to expose.  Serve the resident copy; the request stays
                    # accounted as the miss that caused the read.
                    return frame.page
                if shard.mutations == stamp:
                    return manager.complete_miss(page)
                # An install()/discard() landed somewhere in this shard
                # during our read; with no in-flight entry to flag the
                # exact page, re-read conservatively rather than risk
                # admitting bytes that predate a newer, already-evicted
                # version (the write-back preceded the eviction, so the
                # retry observes it).

    def install(self, page: Page) -> None:
        """Place a newly allocated page into its shard without a disk read."""
        shard = self._shard(page.page_id)
        with shard.lock:
            self._bind(shard.manager, self._request_query_id())
            shard.manager.install(page)
            self._supersede(shard, page.page_id)

    def discard(self, page_id: PageId) -> None:
        """Drop a resident page without write-back (deallocation)."""
        shard = self._shard(page_id)
        with shard.lock:
            shard.manager.discard(page_id)
            self._supersede(shard, page_id)

    @staticmethod
    def _supersede(shard: _Shard, page_id: PageId) -> None:
        """Flag in-flight loads whose bytes this mutation may have outdated.

        Called under the shard lock by install()/discard().  A loader off
        the lock in ``disk.read`` may be holding bytes that predate this
        mutation; if the mutated frame is evicted again before the loader
        re-acquires the lock, the resident-frame re-check alone would not
        stop it from admitting the stale copy.
        """
        shard.mutations += 1
        entry = shard.inflight.get(page_id)
        if entry is not None:
            entry.superseded = True

    def mark_dirty(self, page_id: PageId) -> None:
        shard = self._shard(page_id)
        with shard.lock:
            shard.manager.mark_dirty(page_id)

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------

    def pin(self, page_id: PageId) -> None:
        shard = self._shard(page_id)
        with shard.lock:
            shard.manager.pin(page_id)

    def unpin(self, page_id: PageId) -> None:
        shard = self._shard(page_id)
        with shard.lock:
            shard.manager.unpin(page_id)

    @property
    def pinned_count(self) -> int:
        """Pinned resident frames across all shards (snapshot)."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += shard.manager._pinned_frames
        return total

    def fetch_pinned(self, page_id: PageId) -> Page:
        """Fetch a page and pin it in one step, race-safe (service hook).

        Another thread's eviction can win the window between the fetch
        and the pin, so the pair retries under the shard lock until the
        page is both resident and pinned — the same loop as
        :meth:`pinned`, but with the pin's lifetime owned by the caller
        (the page service holds it across requests until UNPIN).
        """
        shard = self._shard(page_id)
        while True:
            page = self.fetch(page_id)
            with shard.lock:
                if page_id in shard.manager.frames:
                    shard.manager.pin(page_id)
                    return page

    @contextmanager
    def pinned(self, page_id: PageId) -> Iterator[Page]:
        """RAII pin guard, race-safe: retries if the page is evicted
        between the fetch and the pin (another thread's eviction can win
        that window), so the block always sees a resident, pinned page."""
        shard = self._shard(page_id)
        while True:
            page = self.fetch(page_id)
            with shard.lock:
                if page_id in shard.manager.frames:
                    shard.manager.pin(page_id)
                    break
        try:
            yield page
        finally:
            with shard.lock:
                frame = shard.manager.frames.get(page_id)
                if frame is not None and frame.pin_count > 0:
                    shard.manager.unpin(page_id)

    # ------------------------------------------------------------------
    # Query correlation
    # ------------------------------------------------------------------

    @contextmanager
    def query_scope(self) -> Iterator[int]:
        """Bracket one query of the *calling thread*.

        Scope ids are process-wide unique, so queries of different threads
        are never correlated; within the block, the thread's page accesses
        share the id (the paper's correlation unit).
        """
        query_id = next(self._query_ids)
        stack = self._scope_stack()
        stack.append(query_id)
        self._counters().queries += 1
        try:
            yield query_id
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Write all dirty frames back, shard by shard."""
        for shard in self._shards:
            with shard.lock:
                shard.manager.flush()

    def drain(self) -> None:
        """Graceful-shutdown hook: flush everything through the WAL path.

        With a durability seam attached this is a full checkpoint (all
        shards flushed under the WAL invariant, durable CHECKPOINT
        record) followed by a log sync, so the durable medium equals a
        committed-prefix replay; without one it is a plain :meth:`flush`.
        Like :meth:`checkpoint`, call it at a quiescent point — the page
        server stops admitting requests before draining.
        """
        if self.durability is not None:
            self.checkpoint()
            self.durability.sync()
        else:
            self.flush()

    def _require_durability(self) -> "DurabilityManager":
        if self.durability is None:
            raise RuntimeError(
                "no durability seam attached (pass durability= to the "
                "constructor)"
            )
        return self.durability

    def commit(self) -> int:
        """Request a durability point on the shared WAL (group commit)."""
        return self._require_durability().commit()

    def checkpoint(self) -> int:
        """Flush every shard's dirty frames, then log a durable CHECKPOINT.

        Like :meth:`clear`, this is a quiescent-point operation: updates
        running concurrently with the checkpoint may land in an
        already-flushed shard and be logged *before* the CHECKPOINT
        record, which redo would then skip.  Call it between batches, not
        under them.  Returns the checkpoint LSN.
        """
        durability = self._require_durability()
        durability.begin_checkpoint()
        for shard in self._shards:
            with shard.lock:
                durability.flush_buffer(shard.manager)
        return durability.finish_checkpoint()

    def clear(self, force: bool = False) -> None:
        """Empty every shard and zero the statistics.

        Raises :class:`~repro.buffer.manager.BufferFullError` if any shard
        holds pinned frames (see :meth:`BufferManager.clear`); the check
        runs across all shards *before* any shard is cleared, so a refused
        clear leaves the whole service untouched.  Like its sequential
        counterpart this is a quiescent-point operation: concurrent
        fetches during a clear see either the old or the new epoch.
        """
        from repro.buffer.manager import BufferFullError

        if not force:
            pinned = 0
            for shard in self._shards:
                with shard.lock:
                    pinned += shard.manager._pinned_frames
            if pinned:
                raise BufferFullError(
                    f"clear() with {pinned} pinned frame(s) resident would "
                    "dangle their pins; unpin first or pass force=True"
                )
        for shard in self._shards:
            with shard.lock:
                shard.manager.clear(force=force)
        with self._registry_lock:
            for counters in self._registry:
                counters.requests = 0
                counters.hits = 0
                counters.misses = 0
                counters.coalesced = 0
                counters.queries = 0

    # ------------------------------------------------------------------
    # Statistics and introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> BufferStats:
        """Merged statistics snapshot (fresh object, like the partitioned
        manager's): request counters from the per-thread records,
        eviction/write-back counters from the shard cores."""
        total = BufferStats()
        with self._registry_lock:
            records = list(self._registry)
        for counters in records:
            total.requests += counters.requests
            total.hits += counters.hits
            total.misses += counters.misses
            total.queries += counters.queries
        for shard in self._shards:
            with shard.lock:
                total.evictions += shard.manager.stats.evictions
                total.writebacks += shard.manager.stats.writebacks
        return total

    @property
    def coalesced_misses(self) -> int:
        """Requests that waited on another thread's in-flight read."""
        with self._registry_lock:
            records = list(self._registry)
        return sum(counters.coalesced for counters in records)

    def stats_snapshot(self) -> dict[str, float]:
        """The merged stats as a dict, with the coalescing counter added."""
        snapshot = self.stats.snapshot()
        snapshot["coalesced"] = self.coalesced_misses
        return snapshot

    @property
    def observer(self) -> "EventSink | None":
        """The (lock-wrapped) event sink shared by all shards."""
        return self._observer

    def contains(self, page_id: PageId) -> bool:
        shard = self._shard(page_id)
        with shard.lock:
            return shard.manager.contains(page_id)

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.manager)
        return total

    def resident_ids(self) -> list[PageId]:
        ids: list[PageId] = []
        for shard in self._shards:
            with shard.lock:
                ids.extend(shard.manager.resident_ids())
        return sorted(ids)

    def shard_managers(self) -> list[BufferManager]:
        """The per-shard sequential cores (introspection and tests).

        Callers must not mutate them while other threads are active."""
        return [shard.manager for shard in self._shards]
