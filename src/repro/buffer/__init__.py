"""Buffer management: the system under study.

The buffer manager caches disk pages in a bounded set of frames and asks a
pluggable :class:`~repro.buffer.policies.base.ReplacementPolicy` which page
to drop when a new page must be loaded (Section 1 of the paper).  Everything
the paper measures — hits, misses, disk accesses per query set — is recorded
by :class:`~repro.buffer.stats.BufferStats`.

Three services implement the page accessor protocol (:mod:`repro.access`):
the sequential :class:`BufferManager`, the per-page-category
:class:`~repro.buffer.partitioned.PartitionedBufferManager`, and the
thread-safe sharded :class:`~repro.buffer.concurrent.ConcurrentBufferManager`.
"""

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.frames import Frame
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.stats import BufferStats

__all__ = [
    "BufferFullError",
    "BufferManager",
    "BufferStats",
    "ConcurrentBufferManager",
    "Frame",
]
