"""Buffer frames: a resident page plus the bookkeeping policies need.

A frame records logical timestamps (the buffer's access counter, never wall
clock — experiments must be deterministic), the id of the query that last
touched the page (for LRU-K's correlated-access rule), a pin count, a dirty
flag, and a small cache for the spatial criteria, which are pure functions
of the page content and therefore computed at most once per load (the paper
notes that area and margin cause "only a small overhead" when a page is
loaded; caching keeps EO affordable too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.page import Page, PageId


@dataclass(slots=True)
class Frame:
    """One buffer slot holding a resident page."""

    page: Page
    loaded_at: int
    last_access: int
    last_query: int
    access_count: int = 1
    pin_count: int = 0
    dirty: bool = False
    #: Cache for spatial criteria, keyed by criterion name ("A", "EA", ...).
    crit_cache: dict[str, float] = field(default_factory=dict)

    @property
    def page_id(self) -> PageId:
        return self.page.page_id

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    def touch(self, clock: int, query_id: int) -> None:
        """Record an access at logical time ``clock`` by query ``query_id``."""
        self.last_access = clock
        self.last_query = query_id
        self.access_count += 1

    def invalidate_criteria(self) -> None:
        """Drop cached spatial criteria after the page content changed."""
        self.crit_cache.clear()
