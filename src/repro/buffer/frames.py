"""Buffer frames and the slot-based frame table.

A frame records logical timestamps (the buffer's access counter, never wall
clock — experiments must be deterministic), the id of the query that last
touched the page (for LRU-K's correlated-access rule), a pin count, a dirty
flag, and a small cache for the spatial criteria, which are pure functions
of the page content and therefore computed at most once per load (the paper
notes that area and margin cause "only a small overhead" when a page is
loaded; caching keeps EO affordable too).

:class:`FrameTable` is the hot-path container behind
:class:`~repro.buffer.manager.BufferManager` (and the metadata-only ghost
caches of :mod:`repro.tuning`):

* it *is* a dict (``page_id -> Frame``), so lookups, membership tests and
  iteration run at C speed and keep dict insertion order — the stable
  tie-breaking order several policies' ``min()`` calls rely on;
* frames live in a flat slot pool (:attr:`FrameTable.slots`), grown once to
  buffer capacity and then recycled in place on every admit — steady-state
  misses allocate no frame objects and reuse the per-slot criterion-cache
  dict;
* every resident frame sits on an intrusive doubly-linked *recency chain*
  (:attr:`Frame.lru_prev` / :attr:`Frame.lru_next`, least-recently-used at
  :attr:`FrameTable.head`, most-recently-used at :attr:`FrameTable.tail`),
  so a hit is O(1) pointer surgery and recency-based policies walk victims
  off the head instead of sorting or scanning the whole table.

Chain invariants (see docs/architecture.md "Hot path"):

1. every frame in the dict is on the chain exactly once; no other frame is;
2. chain order equals ascending ``last_access`` — the manager's logical
   clock is strictly monotonic and ticks once per request, so timestamps
   are unique and the order is total;
3. mutation goes through :meth:`FrameTable.admit` / :meth:`~FrameTable.adopt`
   / :meth:`~FrameTable.remove` / :meth:`~FrameTable.move_to_tail` /
   :meth:`~FrameTable.clear` only; the raw ``dict`` mutators are disabled
   because they would silently desynchronise the chain.

Invariant 2 holds *at every read*, not after every hit: a hit appends the
frame to :attr:`FrameTable.pending` (one C-level list append) and the
pointer surgery is replayed in batch — deduplicated, in access order — the
next time anything reads the chain (:attr:`~FrameTable.head` /
:attr:`~FrameTable.tail` / :meth:`~FrameTable.iter_recency`) or mutates it
(:meth:`~FrameTable.admit` / :meth:`~FrameTable.adopt` /
:meth:`~FrameTable.remove`).  Frame timestamps are always eager; only the
chain *order* is deferred, which no reader can observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.storage.page import Page, PageId


@dataclass(slots=True, eq=False)
class Frame:
    """One buffer slot holding a resident page.

    ``eq=False`` keeps identity comparison and hashing: the deferred
    recency splice (:meth:`FrameTable.move_to_tail`) dedupes pending
    frames through a dict, and two frames are never "equal" anyway —
    each resident page has exactly one.
    """

    page: Page
    loaded_at: int
    last_access: int
    last_query: int
    access_count: int = 1
    pin_count: int = 0
    dirty: bool = False
    #: Cache for spatial criteria, keyed by criterion name ("A", "EA", ...).
    crit_cache: dict[str, float] = field(default_factory=dict)
    #: Index into the owning :class:`FrameTable`'s slot pool; ``-1`` for
    #: frames built outside a pool (ghost frames, standalone tests).
    slot: int = -1
    #: Intrusive recency links: the chain neighbours towards the LRU end
    #: (``lru_prev``) and the MRU end (``lru_next``); ``None`` at the ends.
    lru_prev: "Frame | None" = None
    lru_next: "Frame | None" = None

    @property
    def page_id(self) -> PageId:
        return self.page.page_id

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    def touch(self, clock: int, query_id: int) -> None:
        """Record an access at logical time ``clock`` by query ``query_id``."""
        self.last_access = clock
        self.last_query = query_id
        self.access_count += 1

    def invalidate_criteria(self) -> None:
        """Drop cached spatial criteria after the page content changed."""
        self.crit_cache.clear()


class FrameTable(dict):
    """Slot-based frame table: a dict of resident frames plus the recency chain.

    The dict part maps ``page_id`` to the resident :class:`Frame`; the slot
    part recycles frame objects so the steady state allocates nothing per
    miss; the chain part keeps frames ordered by last access.  See the
    module docstring for the invariants.
    """

    __slots__ = ("slots", "_free", "_head", "_tail", "pending", "log", "flush_hook")

    #: Pending recency renewals are spliced in batch once the buffer grows
    #: this long, bounding its memory on hit-only streams; chain readers
    #: flush it regardless, so the threshold is invisible to correctness.
    PENDING_LIMIT = 4096

    def __init__(self) -> None:
        super().__init__()
        #: The flat slot pool: every frame this table ever created, in slot
        #: order.  Grows to buffer capacity, then recycles.
        self.slots: list[Frame] = []
        self._free: list[Frame] = []
        self._head: Frame | None = None
        self._tail: Frame | None = None
        #: Deferred recency renewals, in access order (may repeat frames).
        #: A hit only appends here; the O(1) pointer surgery happens in
        #: :meth:`_flush_pending`, deduplicated, the next time anything
        #: reads or mutates the chain.
        self.pending: list[Frame] = []
        #: Second deferral source: the owning manager's hit log (aliased in
        #: by ``BufferManager._refresh_fast_path`` when its fully deferred
        #: fast path is live).  Tables without such an owner — ghost
        #: caches, standalone tests — keep the empty-tuple sentinel.
        self.log: "list[Frame] | tuple" = ()
        #: What a lazy read calls to make the chain (and, for a manager
        #: owner, the deferred hit bookkeeping) current.  Defaults to the
        #: chain-only splice replay.
        self.flush_hook = self._flush_pending

    # ------------------------------------------------------------------
    # Recency chain
    # ------------------------------------------------------------------

    @property
    def head(self) -> Frame | None:
        """Least-recently-used end of the recency chain (first victim pick)."""
        if self.pending or self.log:
            self.flush_hook()
        return self._head

    @property
    def tail(self) -> Frame | None:
        """Most-recently-used end of the recency chain."""
        if self.pending or self.log:
            self.flush_hook()
        return self._tail

    def _link_tail(self, frame: Frame) -> None:
        tail = self._tail
        frame.lru_prev = tail
        frame.lru_next = None
        if tail is None:
            self._head = frame
        else:
            tail.lru_next = frame
        self._tail = frame

    def _unlink(self, frame: Frame) -> None:
        prev = frame.lru_prev
        nxt = frame.lru_next
        if prev is None:
            self._head = nxt
        else:
            prev.lru_next = nxt
        if nxt is None:
            self._tail = prev
        else:
            nxt.lru_prev = prev
        frame.lru_prev = None
        frame.lru_next = None

    def _splice_to_tail(self, frame: Frame) -> None:
        """The actual O(1) pointer surgery of one recency renewal."""
        if self._tail is frame:
            return
        prev = frame.lru_prev
        nxt = frame.lru_next
        if prev is None:
            self._head = nxt
        else:
            prev.lru_next = nxt
        nxt.lru_prev = prev  # nxt is not None: frame is not the tail
        tail = self._tail
        tail.lru_next = frame
        frame.lru_prev = tail
        frame.lru_next = None
        self._tail = frame

    def _flush_pending(self) -> None:
        """Replay deferred renewals: last access per frame wins, in order.

        ``dict.fromkeys(reversed(...))`` keeps each frame's *last* pending
        occurrence at C speed; replaying those in chronological order
        restores invariant 2 exactly — the chain ends up identical to one
        maintained eagerly.  Every entry references a resident frame:
        hits only touch resident pages, and :meth:`admit`/:meth:`adopt`/
        :meth:`remove` flush before a frame can leave the table or a slot
        can be recycled.
        """
        pending = self.pending
        newest_first = dict.fromkeys(reversed(pending))
        pending.clear()
        splice = self._splice_to_tail
        for frame in reversed(newest_first):
            splice(frame)

    def move_to_tail(self, frame: Frame) -> None:
        """Renew ``frame``'s recency; the splice itself is deferred.

        Appending to :attr:`pending` is all a hit pays; the chain is
        repaired wholesale (deduplicated) at the next read.  Timestamps on
        the frame are the caller's business and stay eager, so only the
        *chain order* is lazy — never anything a policy computes from
        frame fields.
        """
        pending = self.pending
        pending.append(frame)
        if len(pending) >= self.PENDING_LIMIT:
            self._flush_pending()

    def iter_recency(self) -> Iterator[Frame]:
        """Resident frames from least to most recently used."""
        if self.pending or self.log:
            self.flush_hook()
        frame = self._head
        while frame is not None:
            yield frame
            frame = frame.lru_next

    # ------------------------------------------------------------------
    # Flushing dict accessors: any read that could observe deferred state
    # (frame stamps, chain order) makes it current first.  ``get`` is the
    # deliberate exception — it is the hot-path probe, and the fast path
    # maintains its own deferral discipline.
    # ------------------------------------------------------------------

    def __getitem__(self, page_id: PageId) -> Frame:
        if self.pending or self.log:
            self.flush_hook()
        return dict.__getitem__(self, page_id)

    def __iter__(self) -> Iterator[PageId]:
        if self.pending or self.log:
            self.flush_hook()
        return dict.__iter__(self)

    def keys(self):  # type: ignore[override]
        if self.pending or self.log:
            self.flush_hook()
        return dict.keys(self)

    def values(self):  # type: ignore[override]
        if self.pending or self.log:
            self.flush_hook()
        return dict.values(self)

    def items(self):  # type: ignore[override]
        if self.pending or self.log:
            self.flush_hook()
        return dict.items(self)

    # ------------------------------------------------------------------
    # Admission / removal
    # ------------------------------------------------------------------

    def admit(self, page: Page, clock: int, query_id: int) -> Frame:
        """Slot a freshly read page in at the MRU end, recycling a frame.

        The first ``capacity`` admits create the slot pool; afterwards
        every admit reuses a free slot in place (criterion cache cleared,
        counters reset) so the miss path allocates nothing.
        """
        if self.pending or self.log:
            # Deferred renewals precede this admission chronologically and
            # must land before the new tail frame.
            self.flush_hook()
        stale = dict.pop(self, page.page_id, None)
        if stale is not None:
            # Re-admitting a resident id (a concurrent install raced a miss
            # loader).  The dict overwrite alone would leave the old frame
            # linked in the chain forever — a zombie the policy could later
            # select as a non-resident victim.  Unlink and recycle it first.
            self._unlink(stale)
            if stale.slot >= 0:
                self._free.append(stale)
        free = self._free
        if free:
            frame = free.pop()
            frame.page = page
            frame.loaded_at = clock
            frame.last_access = clock
            frame.last_query = query_id
            frame.access_count = 1
            frame.pin_count = 0
            frame.dirty = False
            cache = frame.crit_cache
            if cache:
                cache.clear()
        else:
            frame = Frame(
                page=page,
                loaded_at=clock,
                last_access=clock,
                last_query=query_id,
            )
            frame.slot = len(self.slots)
            self.slots.append(frame)
        dict.__setitem__(self, page.page_id, frame)
        self._link_tail(frame)
        return frame

    def adopt(self, frame: Frame) -> Frame:
        """Insert an externally built frame (ghost caches seed their own).

        Adopted frames keep ``slot == -1`` and are never recycled into the
        pool — their lifetime belongs to the caller.
        """
        if self.pending or self.log:
            self.flush_hook()
        dict.__setitem__(self, frame.page.page_id, frame)
        self._link_tail(frame)
        return frame

    def remove(self, page_id: PageId) -> Frame | None:
        """Unlink and drop a resident frame; returns it (``None`` if absent).

        Pooled frames go back on the free list *after* this call returns,
        so eviction hooks holding the frame observe its final state; the
        slot is only rewritten by a later :meth:`admit`.
        """
        if self.pending or self.log:
            # Apply the frame's own deferred renewals while it is still
            # linked; afterwards no deferred entry may reference it.
            self.flush_hook()
        frame = dict.pop(self, page_id, None)
        if frame is None:
            return None
        self._unlink(frame)
        if frame.slot >= 0:
            self._free.append(frame)
        return frame

    def clear(self) -> None:  # type: ignore[override]
        """Drop every resident frame and reset the chain; slots survive."""
        dict.clear(self)
        self.pending.clear()
        if self.log:
            del self.log[:]  # type: ignore[union-attr]
        self._head = None
        self._tail = None
        self._free = list(self.slots)

    # ------------------------------------------------------------------
    # Disabled dict mutators — they would desynchronise the chain
    # ------------------------------------------------------------------

    def _reject(self, *args, **kwargs):
        raise TypeError(
            "FrameTable mutation must go through admit()/adopt()/remove()/"
            "clear() so the recency chain stays consistent"
        )

    __setitem__ = _reject
    __delitem__ = _reject
    pop = _reject  # type: ignore[assignment]
    popitem = _reject  # type: ignore[assignment]
    setdefault = _reject  # type: ignore[assignment]
    update = _reject  # type: ignore[assignment]
