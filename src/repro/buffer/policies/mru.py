"""Most recently used replacement.

Evicts the page touched most recently.  MRU is optimal for cyclic scans
that exceed the buffer size and pathological for most other workloads; it is
included to give the baseline ablation a known-bad contrast point.  On the
slot core the victim is the first unpinned frame off the recency chain's
MRU tail — the mirror image of LRU's head walk.
"""

from __future__ import annotations

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class MRU(ReplacementPolicy):
    """Evict the page that was accessed most recently."""

    name = "MRU"

    def select_victim(self) -> PageId:
        frames = self.buffer.frames
        if isinstance(frames, FrameTable):
            frame = frames.tail
            while frame is not None:
                if frame.pin_count == 0:
                    return frame.page.page_id
                frame = frame.lru_prev
            from repro.buffer.manager import BufferFullError

            raise BufferFullError("all resident pages are pinned")
        evictable = self._evictable()
        return max(evictable, key=lambda frame: frame.last_access).page_id

    def flush_priority(self, frame: Frame) -> float:
        # MRU evicts the *hottest* frame first, so those flush first too.
        return -float(frame.last_access)
