"""Most recently used replacement.

Evicts the page touched most recently.  MRU is optimal for cyclic scans
that exceed the buffer size and pathological for most other workloads; it is
included to give the baseline ablation a known-bad contrast point.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class MRU(ReplacementPolicy):
    """Evict the page that was accessed most recently."""

    name = "MRU"

    def select_victim(self) -> PageId:
        frames = self._evictable()
        return max(frames, key=lambda frame: frame.last_access).page_id

    def flush_priority(self, frame: Frame) -> float:
        # MRU evicts the *hottest* frame first, so those flush first too.
        return -float(frame.last_access)
