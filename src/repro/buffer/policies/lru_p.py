"""Priority-based LRU (LRU-P), Section 2.1 of the paper.

A generalization of LRU-T: each page has a priority, and the page with the
lowest priority is dropped first (LRU breaks ties).  Following the paper's
example, the default priority of an index page is its height in the tree —
object pages get priority -1 (below data pages at level 0), the root the
highest value.  This generalizes pinning the top levels of an R-tree in the
buffer (Leutenegger & Lopez): with a small buffer, high levels effectively
never leave.

A custom priority function can be supplied for other schemes.
"""

from __future__ import annotations

from typing import Callable

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import Page, PageId, PageType


def level_priority(page: Page) -> int:
    """Default priority: tree level; object pages sit below the tree."""
    if page.page_type is PageType.OBJECT:
        return -1
    return page.level


class LRUP(ReplacementPolicy):
    """Evict the page with the lowest priority; ties fall to LRU."""

    name = "LRU-P"

    def __init__(self, priority: Callable[[Page], int] = level_priority) -> None:
        super().__init__()
        self._priority = priority

    def select_victim(self) -> PageId:
        frames = self._evictable()
        victim = min(
            frames,
            key=lambda frame: (self._priority(frame.page), frame.last_access),
        )
        return victim.page_id

    def priority_of(self, frame: Frame) -> int:
        """Expose the priority of a frame (used by reports and tests)."""
        return self._priority(frame.page)
