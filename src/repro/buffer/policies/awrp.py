"""AWRP — the Adaptive Weight Ranking Policy (Swain et al., 2011).

AWRP ranks every resident page by a single *weight* that folds frequency
and recency into one number: pages referenced often and recently carry a
high weight and stay, pages whose references are sparse or stale decay
towards zero and go.  The reference formulation (arXiv:1107.4851) tracks
a frequency counter per resident page and normalises it by the page's
age since the last reference; the victim is the minimum-weight page.

The reproduction computes

    weight(p) = access_count(p) / (clock - last_access(p) + 1) ** decay

from frame metadata alone — the access counter and the logical access
timestamps the buffer already maintains — so the policy carries **no
internal state**: it runs bit-identically on the metadata-only ghost
caches (:mod:`repro.tuning.ghost`), survives live hand-offs without a
seeding step, and its ``decay`` knob retunes in place.

``decay`` steers the frequency/recency balance: ``0`` degenerates to
pure LFU (age ignored), large values approach LRU (any staleness
overwhelms any count).  The default ``1.0`` is the paper's plain
frequency-per-age ranking.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class AWRP(ReplacementPolicy):
    """Evict the minimum frequency×recency weight (adaptive weight ranking)."""

    name = "AWRP"

    def __init__(self, decay: float = 1.0) -> None:
        super().__init__()
        if decay < 0.0:
            raise ValueError("decay must be non-negative")
        self.decay = float(decay)

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------

    def weight(self, frame: Frame) -> float:
        """The frame's current AWRP weight (higher = more worth keeping).

        Reads the buffer clock through the attached manager (live or
        ghost — both expose ``_clock``), so the same frame metadata
        yields the same weight on either side.
        """
        age = self.buffer._clock - frame.last_access
        return frame.access_count / float(age + 1) ** self.decay

    def select_victim(self) -> PageId:
        # (weight, last_access) is a total order: logical timestamps are
        # unique per access, so no further tie-break is needed and the
        # decision is deterministic on live buffers and ghosts alike.
        victim = min(
            self._evictable(),
            key=lambda frame: (self.weight(frame), frame.last_access),
        )
        return victim.page_id

    # ------------------------------------------------------------------
    # Self-tuning
    # ------------------------------------------------------------------

    def retune(self, *, decay: float | None = None, **kwargs) -> None:
        """Change the recency exponent in place; no bookkeeping to migrate."""
        super().retune(**kwargs)
        if decay is None:
            return
        if decay < 0.0:
            raise ValueError("decay must be non-negative")
        self.decay = float(decay)

    def flush_priority(self, frame: Frame) -> float:
        """Clean the lowest-weight dirty frames first (eviction order)."""
        return self.weight(frame)
