"""2Q replacement (Johnson & Shasha, VLDB 1994).

A natural comparison point for ASB: 2Q also splits the buffer into parts
to fix an LRU weakness, but along the *recency vs. frequency* axis rather
than the paper's *recency vs. spatial* axis.

The simplified full version implemented here follows the original paper:

* **A1in** — a FIFO queue receiving first-time pages (default 25 % of the
  buffer).  Pages leaving A1in resident-wise are remembered in …
* **A1out** — a ghost list of page *ids* only (default tracking as many
  ids as 50 % of the buffer).  A hit on a ghost id is the signal that the
  page deserves long-term caching: it is admitted to …
* **Am** — the main LRU area for proven-hot pages.

Unlike LRU-K's unbounded retained history, the ghost list is bounded, but
2Q still keeps (a little) state about pages that left the buffer — ASB
keeps none.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.buffer.frames import Frame
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class TwoQ(ReplacementPolicy):
    """The 2Q algorithm (full version, simplified thresholds)."""

    name = "2Q"

    def __init__(
        self, kin_fraction: float = 0.25, kout_fraction: float = 0.5
    ) -> None:
        super().__init__()
        if not 0.0 < kin_fraction < 1.0:
            raise ValueError("kin_fraction must be in (0, 1)")
        if kout_fraction <= 0.0:
            raise ValueError("kout_fraction must be positive")
        self.kin_fraction = kin_fraction
        self.kout_fraction = kout_fraction
        # Resident structures: FIFO of newcomers, LRU of proven-hot pages.
        self._a1in: OrderedDict[PageId, None] = OrderedDict()
        self._am: OrderedDict[PageId, None] = OrderedDict()
        # Ghost ids of pages recently evicted from A1in.
        self._a1out: OrderedDict[PageId, None] = OrderedDict()
        self._kin = 1
        self._kout = 1

    def attach(self, buffer: BufferManager) -> None:
        super().attach(buffer)
        self._kin = max(1, round(self.kin_fraction * buffer.capacity))
        self._kout = max(1, round(self.kout_fraction * buffer.capacity))

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    def on_load(self, frame: Frame) -> None:
        page_id = frame.page_id
        if page_id in self._a1out:
            # The second-reference signal: admit straight to the hot area.
            del self._a1out[page_id]
            self._am[page_id] = None
        else:
            self._a1in[page_id] = None

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        # ``frame.page.page_id`` dodges the property descriptor on the
        # every-hit path.
        page_id = frame.page.page_id
        if page_id in self._am:
            self._am.move_to_end(page_id)
        # A hit inside A1in does nothing (the 2Q rule: correlated bursts
        # must not promote a page; only a reference after A1in eviction
        # proves long-term value).

    def on_evict(self, frame: Frame) -> None:
        page_id = frame.page_id
        if page_id in self._a1in:
            del self._a1in[page_id]
            self._a1out[page_id] = None
            while len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        else:
            self._am.pop(page_id, None)

    def reset(self) -> None:
        self._a1in.clear()
        self._am.clear()
        self._a1out.clear()

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def select_victim(self) -> PageId:
        frames = self.buffer.frames
        # Prefer draining A1in once it exceeds its target share.
        if len(self._a1in) > self._kin:
            for page_id in self._a1in:  # FIFO order
                if not frames[page_id].pinned:
                    return page_id
        for page_id in self._am:  # LRU order
            if not frames[page_id].pinned:
                return page_id
        for page_id in self._a1in:
            if not frames[page_id].pinned:
                return page_id
        raise BufferFullError("all resident pages are pinned")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def a1in_size(self) -> int:
        return len(self._a1in)

    @property
    def am_size(self) -> int:
        return len(self._am)

    @property
    def ghost_size(self) -> int:
        """Ids remembered about non-resident pages (bounded, unlike LRU-K)."""
        return len(self._a1out)
