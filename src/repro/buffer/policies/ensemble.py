"""The weighted expert-vote mixture policy backing ``repro.tuning.ensemble``.

EEvA's framing (Demin et al., 2024) generalised: instead of one policy
*or* another, run a panel of full replacement policies side by side on
the same buffer and let a weight vector decide how much each expert's
opinion counts.  On every eviction each expert nominates its victim and
casts its weight as a vote; the page with the heaviest total goes.  With
the weight mass concentrated on one expert the mixture *is* that expert;
in between it interpolates — the behaviour the multiplicative-weights
update of :class:`repro.tuning.TuningController` steers per epoch.

The experts observe every buffer event (load/hit/evict are forwarded),
so each one's internal bookkeeping stays exactly what it would be if it
ran the buffer alone; only the *decisions* are blended.  Experts must
tolerate ``on_evict`` for frames they did not nominate — the contract
every registered policy already honours for live hand-offs and clears.

The weight vector is normalised to sum to one and retunes in place
(``retune(weights=...)``), which is how the controller propagates each
epoch's mixture to every shard through its adaptation log.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId

if TYPE_CHECKING:
    from repro.buffer.manager import BufferManager

#: The default expert panel: the robust recency baseline, the history
#: expert, the paper's spatial self-tuner, the frequency×recency ranker,
#: and the multi-signal retention scorer — five genuinely different
#: opinions about what to keep.
DEFAULT_EXPERTS = ("LRU", "LRU-2", "ASB", "AWRP", "EEVA")


class EnsemblePolicy(ReplacementPolicy):
    """Weighted plurality vote over a panel of expert policies."""

    name = "ENSEMBLE"

    def __init__(
        self,
        experts: "Sequence[str | ReplacementPolicy] | None" = None,
        weights: "Sequence[float] | None" = None,
    ) -> None:
        super().__init__()
        # Lazy import: the registry module registers this class, so the
        # construction path cannot be a module-level dependency.
        from repro.buffer.policies import make_policy

        entries = tuple(experts) if experts is not None else DEFAULT_EXPERTS
        if not entries:
            raise ValueError("an ensemble needs at least one expert")
        panel: list[ReplacementPolicy] = []
        specs: list[str] = []
        for entry in entries:
            if isinstance(entry, ReplacementPolicy):
                panel.append(entry)
                specs.append(entry.name)
            elif isinstance(entry, str):
                panel.append(make_policy(entry))
                specs.append(entry.strip().upper())
            else:
                raise TypeError(
                    "experts must be policy names or ReplacementPolicy "
                    f"instances; got {type(entry).__name__}"
                )
        self.experts: tuple[ReplacementPolicy, ...] = tuple(panel)
        self.expert_names: tuple[str, ...] = tuple(p.name for p in panel)
        #: What to hand ``make_policy`` to build a fresh copy of each
        #: expert (the registry spelling when the expert came in by name)
        #: — the controller's ghost caches are built from these.
        self.expert_specs: tuple[str, ...] = tuple(specs)
        self._weights = self._normalised(
            weights if weights is not None else [1.0] * len(panel)
        )
        # Forward hits only to experts that actually listen, mirroring
        # the no-op elision of the live fast path and the ghost caches.
        self._hit_experts = tuple(
            expert
            for expert in self.experts
            if type(expert).on_hit is not ReplacementPolicy.on_hit
        )

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------

    def _normalised(self, weights: Sequence[float]) -> tuple[float, ...]:
        values = [float(weight) for weight in weights]
        if len(values) != len(self.experts):
            raise ValueError(
                f"expected {len(self.experts)} weights "
                f"(one per expert), got {len(values)}"
            )
        if any(value < 0.0 for value in values):
            raise ValueError("weights must be non-negative")
        total = sum(values)
        if total <= 0.0:
            raise ValueError("at least one weight must be positive")
        return tuple(value / total for value in values)

    @property
    def weights(self) -> tuple[float, ...]:
        """The normalised mixture (sums to one), expert order."""
        return self._weights

    def weight_of(self, expert_name: str) -> float:
        return self._weights[self.expert_names.index(expert_name)]

    def retune(self, *, weights: "Sequence[float] | None" = None, **kwargs) -> None:
        """Adopt a new mixture in place; expert bookkeeping is untouched."""
        super().retune(**kwargs)
        if weights is not None:
            self._weights = self._normalised(weights)

    # ------------------------------------------------------------------
    # Wiring and event forwarding
    # ------------------------------------------------------------------

    def attach(self, buffer: "BufferManager") -> None:
        super().attach(buffer)
        for expert in self.experts:
            expert.attach(buffer)

    def on_load(self, frame: Frame) -> None:
        for expert in self.experts:
            expert.on_load(frame)

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        for expert in self._hit_experts:
            expert.on_hit(frame, correlated)

    def on_evict(self, frame: Frame) -> None:
        for expert in self.experts:
            expert.on_evict(frame)

    def reset(self) -> None:
        for expert in self.experts:
            expert.reset()

    def seed_resident(self, frames: list[Frame]) -> None:
        for expert in self.experts:
            expert.seed_resident(frames)

    # ------------------------------------------------------------------
    # The vote
    # ------------------------------------------------------------------

    def select_victim(self) -> PageId:
        votes: dict[PageId, float] = {}
        for expert, weight in zip(self.experts, self._weights):
            nominee = expert.select_victim()
            votes[nominee] = votes.get(nominee, 0.0) + weight
        # Strict comparison: on an exact tie the earliest nomination in
        # expert order wins, which is deterministic on live buffers and
        # ghost caches alike (dicts preserve insertion order).
        victim: PageId | None = None
        best = -1.0
        for nominee, total in votes.items():
            if total > best:
                victim = nominee
                best = total
        assert victim is not None  # every expert nominated someone
        return victim

    def flush_priority(self, frame: Frame) -> float:
        """Follow the dominant expert's notion of cold (first on ties)."""
        dominant = max(
            range(len(self.experts)), key=lambda index: self._weights[index]
        )
        return self.experts[dominant].flush_priority(frame)
