"""First-in first-out replacement.

Not part of the paper's comparison, but a standard baseline (it is also the
rule ASB uses *inside* its overflow buffer, Section 4.2) and useful for the
wider baseline ablation.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class FIFO(ReplacementPolicy):
    """Evict the page that entered the buffer first."""

    name = "FIFO"

    def select_victim(self) -> PageId:
        frames = self._evictable()
        return min(frames, key=lambda frame: frame.loaded_at).page_id

    def flush_priority(self, frame: Frame) -> float:
        # FIFO's eviction order ignores recency: oldest arrival goes first.
        return float(frame.loaded_at)
