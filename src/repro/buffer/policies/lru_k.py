"""The LRU-K page-replacement algorithm (O'Neil, O'Neil, Weikum 1993).

Section 2.2 of the paper.  For every page ``p`` the algorithm records
``HIST(p)``, the timestamps of the K most recent *uncorrelated* references;
two accesses are correlated when they belong to the same query.  The victim
is the page with the oldest K-th-last reference, considering only pages
whose most recent reference is not correlated with the current access.

Two properties the paper stresses are reproduced faithfully:

* **Retained history.**  ``HIST`` survives eviction, so a page that returns
  to the buffer resumes its history.  This is LRU-K's memory-cost drawback:
  the history table grows with the number of distinct pages ever buffered.
  :attr:`LRUK.history_size` exposes the table size so the memory argument of
  Section 4.3 can be measured.  Pass ``retain_history=False`` to study the
  cheaper variant that forgets evicted pages.
* **Correlated accesses collapse.**  A correlated re-reference only renews
  ``HIST(p, 1)`` instead of pushing a new timestamp.
"""

from __future__ import annotations

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class LRUK(ReplacementPolicy):
    """Evict the page with the oldest K-th most recent uncorrelated reference."""

    def __init__(self, k: int = 2, retain_history: bool = True) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.retain_history = retain_history
        self.name = f"LRU-{k}"
        # HIST(p): most recent first, at most K entries.
        self._hist: dict[PageId, list[int]] = {}
        # Query id of the most recent reference, kept alongside HIST so that
        # correlation is detected even across a drop-and-reload.
        self._last_query: dict[PageId, int] = {}

    # ------------------------------------------------------------------
    # History maintenance
    # ------------------------------------------------------------------

    def _record_reference(self, page_id: PageId, correlated: bool) -> None:
        # ``_clock``/``_query_id`` are read directly: this runs on every
        # buffer request, and both the live manager and the ghost caches
        # expose them under the same names.
        buffer = self._buffer
        hist = self._hist.setdefault(page_id, [])
        if correlated and hist:
            hist[0] = buffer._clock
        else:
            hist.insert(0, buffer._clock)
            del hist[self.k :]
        self._last_query[page_id] = buffer._query_id

    def on_load(self, frame: Frame) -> None:
        page_id = frame.page.page_id
        previous_query = self._last_query.get(page_id)
        correlated = previous_query == self.buffer._query_id
        self._record_reference(page_id, correlated)

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        self._record_reference(frame.page.page_id, correlated)

    def on_evict(self, frame: Frame) -> None:
        if not self.retain_history:
            self._hist.pop(frame.page_id, None)
            self._last_query.pop(frame.page_id, None)

    def reset(self) -> None:
        self._hist.clear()
        self._last_query.clear()

    def retune(self, *, k: int | None = None, **kwargs) -> None:
        """Change K in place; histories are trimmed to the new depth.

        Growing K keeps the recorded prefixes (pages rank as "fewer than K
        references" until they accumulate more history); shrinking K drops
        the surplus oldest timestamps.  Resident pages and their histories
        survive — retuning never costs a page.
        """
        super().retune(**kwargs)
        if k is None:
            return
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.name = f"LRU-{k}"
        for hist in self._hist.values():
            del hist[k:]

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def _backward_k_distance(self, page_id: PageId) -> int:
        """HIST(p, K); pages with fewer than K references rank oldest."""
        hist = self._hist.get(page_id, ())
        if len(hist) < self.k:
            return -1
        return hist[self.k - 1]

    def select_victim(self) -> PageId:
        # The paper restricts the victim search to pages whose most recent
        # reference is not correlated with the current access; if every
        # resident page was touched by the running query, something must
        # still be evicted, so fall back to the full set.
        frames = self.buffer.frames
        current_query = self.buffer.current_query
        if isinstance(frames, FrameTable):
            # One walk up the recency chain (ascending last_access): with a
            # strict ``<`` the first frame at the minimal K-distance wins,
            # which is exactly ``min`` by (K-distance, last_access).
            hist = self._hist
            k = self.k
            best: Frame | None = None
            best_d = 0
            best_unc: Frame | None = None
            best_unc_d = 0
            frame = frames.head
            while frame is not None:
                if frame.pin_count == 0:
                    page_hist = hist.get(frame.page.page_id)
                    if page_hist is None or len(page_hist) < k:
                        distance = -1
                    else:
                        distance = page_hist[k - 1]
                    if best is None or distance < best_d:
                        best = frame
                        best_d = distance
                    if frame.last_query != current_query and (
                        best_unc is None or distance < best_unc_d
                    ):
                        best_unc = frame
                        best_unc_d = distance
                frame = frame.lru_next
            victim = best_unc if best_unc is not None else best
            if victim is None:
                from repro.buffer.manager import BufferFullError

                raise BufferFullError("all resident pages are pinned")
            return victim.page.page_id
        evictable = self._evictable()
        uncorrelated = [
            frame for frame in evictable if frame.last_query != current_query
        ]
        candidates = uncorrelated or evictable
        victim = min(
            candidates,
            key=lambda frame: (
                self._backward_k_distance(frame.page_id),
                frame.last_access,
            ),
        )
        return victim.page_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def history_size(self) -> int:
        """Number of pages with retained history (the memory-cost metric)."""
        return len(self._hist)

    def history_of(self, page_id: PageId) -> tuple[int, ...]:
        """HIST(p) as an immutable tuple, most recent first."""
        return tuple(self._hist.get(page_id, ()))
