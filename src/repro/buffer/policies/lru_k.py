"""The LRU-K page-replacement algorithm (O'Neil, O'Neil, Weikum 1993).

Section 2.2 of the paper.  For every page ``p`` the algorithm records
``HIST(p)``, the timestamps of the K most recent *uncorrelated* references;
two accesses are correlated when they belong to the same query.  The victim
is the page with the oldest K-th-last reference, considering only pages
whose most recent reference is not correlated with the current access.

Two properties the paper stresses are reproduced faithfully:

* **Retained history.**  ``HIST`` survives eviction, so a page that returns
  to the buffer resumes its history.  This is LRU-K's memory-cost drawback:
  the history table grows with the number of distinct pages ever buffered.
  :attr:`LRUK.history_size` exposes the table size so the memory argument of
  Section 4.3 can be measured.  Pass ``retain_history=False`` to study the
  cheaper variant that forgets evicted pages.
* **Correlated accesses collapse.**  A correlated re-reference only renews
  ``HIST(p, 1)`` instead of pushing a new timestamp.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class LRUK(ReplacementPolicy):
    """Evict the page with the oldest K-th most recent uncorrelated reference."""

    def __init__(self, k: int = 2, retain_history: bool = True) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.retain_history = retain_history
        self.name = f"LRU-{k}"
        # HIST(p): most recent first, at most K entries.
        self._hist: dict[PageId, list[int]] = {}
        # Query id of the most recent reference, kept alongside HIST so that
        # correlation is detected even across a drop-and-reload.
        self._last_query: dict[PageId, int] = {}

    # ------------------------------------------------------------------
    # History maintenance
    # ------------------------------------------------------------------

    def _record_reference(self, page_id: PageId, correlated: bool) -> None:
        now = self.buffer.clock
        hist = self._hist.setdefault(page_id, [])
        if correlated and hist:
            hist[0] = now
        else:
            hist.insert(0, now)
            del hist[self.k :]
        self._last_query[page_id] = self.buffer.current_query

    def on_load(self, frame: Frame) -> None:
        previous_query = self._last_query.get(frame.page_id)
        correlated = previous_query == self.buffer.current_query
        self._record_reference(frame.page_id, correlated)

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        self._record_reference(frame.page_id, correlated)

    def on_evict(self, frame: Frame) -> None:
        if not self.retain_history:
            self._hist.pop(frame.page_id, None)
            self._last_query.pop(frame.page_id, None)

    def reset(self) -> None:
        self._hist.clear()
        self._last_query.clear()

    def retune(self, *, k: int | None = None, **kwargs) -> None:
        """Change K in place; histories are trimmed to the new depth.

        Growing K keeps the recorded prefixes (pages rank as "fewer than K
        references" until they accumulate more history); shrinking K drops
        the surplus oldest timestamps.  Resident pages and their histories
        survive — retuning never costs a page.
        """
        super().retune(**kwargs)
        if k is None:
            return
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.name = f"LRU-{k}"
        for hist in self._hist.values():
            del hist[k:]

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def _backward_k_distance(self, page_id: PageId) -> int:
        """HIST(p, K); pages with fewer than K references rank oldest."""
        hist = self._hist.get(page_id, ())
        if len(hist) < self.k:
            return -1
        return hist[self.k - 1]

    def select_victim(self) -> PageId:
        frames = self._evictable()
        current_query = self.buffer.current_query
        uncorrelated = [
            frame for frame in frames if frame.last_query != current_query
        ]
        # The paper restricts the victim search to pages whose most recent
        # reference is not correlated with the current access; if every
        # resident page was touched by the running query, something must
        # still be evicted, so fall back to the full set.
        candidates = uncorrelated or frames
        victim = min(
            candidates,
            key=lambda frame: (
                self._backward_k_distance(frame.page_id),
                frame.last_access,
            ),
        )
        return victim.page_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def history_size(self) -> int:
        """Number of pages with retained history (the memory-cost metric)."""
        return len(self._hist)

    def history_of(self, page_id: PageId) -> tuple[int, ...]:
        """HIST(p) as an immutable tuple, most recent first."""
        return tuple(self._hist.get(page_id, ()))
