"""Page-replacement policies.

The policy zoo follows the paper's taxonomy:

* classic baselines — :class:`LRU`, plus :class:`FIFO`, :class:`Clock`,
  :class:`GClock`, :class:`LFU`, :class:`MRU` and :class:`RandomPolicy`
  for wider baselining;
* literature competitors beyond the paper — :class:`TwoQ` (Johnson/Shasha
  1994), :class:`ARC` (Megiddo/Modha 2003) and :class:`DomainSeparation`
  (per-category LRU pools);
* structural LRU variants (Section 2.1) — :class:`LRUT` (type-based) and
  :class:`LRUP` (priority/level-based);
* history-based (Section 2.2) — :class:`LRUK`;
* spatial (Section 2.3) — :class:`SpatialPolicy` with criteria A, EA, M,
  EM, EO;
* combined (Section 4.1) — :class:`SLRU` with a static candidate set;
* self-tuning (Section 4.2) — :class:`ASB`, the adaptable spatial buffer.
"""

from repro.buffer.policies.arc import ARC
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.policies.clock import Clock
from repro.buffer.policies.domain_separation import DomainSeparation
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.gclock import GClock
from repro.buffer.policies.lfu import LFU
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.lru_p import LRUP
from repro.buffer.policies.lru_t import LRUT
from repro.buffer.policies.mru import MRU
from repro.buffer.policies.random_policy import RandomPolicy
from repro.buffer.policies.slru import SLRU
from repro.buffer.policies.spatial import (
    SPATIAL_CRITERIA,
    SpatialPolicy,
    spatial_criterion,
)
from repro.buffer.policies.two_q import TwoQ

__all__ = [
    "ReplacementPolicy",
    "LRU",
    "ARC",
    "TwoQ",
    "GClock",
    "DomainSeparation",
    "FIFO",
    "Clock",
    "LFU",
    "MRU",
    "RandomPolicy",
    "LRUT",
    "LRUP",
    "LRUK",
    "SpatialPolicy",
    "SLRU",
    "ASB",
    "SPATIAL_CRITERIA",
    "spatial_criterion",
]
