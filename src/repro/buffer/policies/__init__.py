"""Page-replacement policies.

The policy zoo follows the paper's taxonomy:

* classic baselines — :class:`LRU`, plus :class:`FIFO`, :class:`Clock`,
  :class:`GClock`, :class:`LFU`, :class:`MRU` and :class:`RandomPolicy`
  for wider baselining;
* literature competitors beyond the paper — :class:`TwoQ` (Johnson/Shasha
  1994), :class:`ARC` (Megiddo/Modha 2003) and :class:`DomainSeparation`
  (per-category LRU pools);
* structural LRU variants (Section 2.1) — :class:`LRUT` (type-based) and
  :class:`LRUP` (priority/level-based);
* history-based (Section 2.2) — :class:`LRUK`;
* spatial (Section 2.3) — :class:`SpatialPolicy` with criteria A, EA, M,
  EM, EO;
* combined (Section 4.1) — :class:`SLRU` with a static candidate set;
* self-tuning (Section 4.2) — :class:`ASB`, the adaptable spatial buffer;
* expert-based (PAPERS.md) — :class:`AWRP` (frequency×recency weight
  ranking, Swain 2011), :class:`EEvA` (weighted expert retention
  scoring, Demin 2024) and :class:`EnsemblePolicy`, the weighted
  expert-vote mixture the tuning controller steers per epoch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.buffer.policies.arc import ARC
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.awrp import AWRP
from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.policies.clock import Clock
from repro.buffer.policies.domain_separation import DomainSeparation
from repro.buffer.policies.eeva import EEvA
from repro.buffer.policies.ensemble import DEFAULT_EXPERTS, EnsemblePolicy
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.gclock import GClock
from repro.buffer.policies.lfu import LFU
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.lru_p import LRUP
from repro.buffer.policies.lru_t import LRUT
from repro.buffer.policies.mru import MRU
from repro.buffer.policies.random_policy import RandomPolicy
from repro.buffer.policies.slru import SLRU
from repro.buffer.policies.spatial import (
    SPATIAL_CRITERIA,
    SpatialPolicy,
    spatial_criterion,
)
from repro.buffer.policies.two_q import TwoQ

# ----------------------------------------------------------------------
# The policy registry: one construction path for the whole zoo
# ----------------------------------------------------------------------


class UnknownPolicyError(ValueError):
    """A policy name (or alias) is not in :data:`POLICY_REGISTRY`.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; catch this name to distinguish a bad policy
    name from a bad parameter value.
    """

    def __init__(self, name: str) -> None:
        self.policy_name = name
        super().__init__(
            f"unknown policy {name!r}; known policies: "
            + ", ".join(policy_names())
        )


@dataclass(frozen=True)
class ParamSpec:
    """One tunable constructor parameter of a registered policy.

    The registry's machine-readable keyword surface: the declared name is
    the *normalised* keyword the constructor accepts, ``kind``/``lo``/
    ``hi``/``choices`` describe its value space, and ``retunable`` marks
    parameters a live policy instance can change in place via
    :meth:`~repro.buffer.policies.base.ReplacementPolicy.retune` — the
    parameter space the self-tuning controller (:mod:`repro.tuning`)
    explores with ghost caches.
    """

    name: str
    kind: str = "float"  # "int" | "float" | "bool" | "str"
    default: object = None
    lo: float | None = None
    hi: float | None = None
    choices: tuple = ()
    retunable: bool = False
    description: str = ""

    def validate(self, owner: str, value: object) -> None:
        """Reject values outside the declared space with a coherent error."""
        expected = {
            "int": int,
            "float": (int, float),
            "bool": bool,
            "str": str,
            "object": object,  # callables, mappings — not range-checkable
        }[self.kind]
        if self.kind == "int" and isinstance(value, bool):
            raise TypeError(
                f"policy {owner!r} parameter {self.name!r} expects an int, "
                f"got bool"
            )
        if not isinstance(value, expected):
            raise TypeError(
                f"policy {owner!r} parameter {self.name!r} expects "
                f"{self.kind}, got {type(value).__name__}"
            )
        if self.choices and value not in self.choices:
            raise ValueError(
                f"policy {owner!r} parameter {self.name!r} must be one of "
                f"{sorted(self.choices)}, got {value!r}"
            )
        if self.lo is not None and value < self.lo:
            raise ValueError(
                f"policy {owner!r} parameter {self.name!r} must be "
                f">= {self.lo}, got {value!r}"
            )
        if self.hi is not None and value > self.hi:
            raise ValueError(
                f"policy {owner!r} parameter {self.name!r} must be "
                f"<= {self.hi}, got {value!r}"
            )


@dataclass(frozen=True)
class PolicySpec:
    """One registered policy: canonical name, constructor, parameter space.

    ``params`` declares the *normalised* keyword surface the constructor
    accepts — keyword validation is derived from it, so the registry
    rejects unknown names (and out-of-range values, where the parameter
    declares a range) up front with a message naming the accepted
    spellings, instead of seventeen slightly different ``TypeError``
    texts.
    """

    name: str
    factory: Callable[..., ReplacementPolicy]
    params: tuple[ParamSpec, ...] = ()
    aliases: tuple[str, ...] = ()
    description: str = ""
    defaults: dict = field(default_factory=dict)

    @property
    def keywords(self) -> tuple[str, ...]:
        """The accepted keyword names, derived from :attr:`params`."""
        return tuple(param.name for param in self.params)

    def param(self, name: str) -> ParamSpec:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(f"policy {self.name!r} has no parameter {name!r}")

    def retunable_params(self) -> tuple[ParamSpec, ...]:
        """Parameters a live instance can change via ``retune()``."""
        return tuple(param for param in self.params if param.retunable)

    def build(self, **kwargs) -> ReplacementPolicy:
        by_name = {param.name: param for param in self.params}
        unknown = sorted(set(kwargs) - set(by_name))
        if unknown:
            accepted = ", ".join(by_name) or "none"
            raise TypeError(
                f"policy {self.name!r} does not accept keyword(s) "
                f"{unknown}; accepted keywords: {accepted}"
            )
        for key, value in kwargs.items():
            by_name[key].validate(self.name, value)
        merged = {**self.defaults, **kwargs}
        return self.factory(**merged)


#: The candidate-set fraction shared by SLRU and ASB, declared once.
_CANDIDATE_FRACTION = ParamSpec(
    "candidate_fraction",
    kind="float",
    default=0.25,
    lo=0.01,
    hi=1.0,
    retunable=True,
    description="LRU candidate set as a fraction of the buffer",
)

_CRITERION = ParamSpec(
    "criterion",
    kind="str",
    default="A",
    choices=tuple(sorted(SPATIAL_CRITERIA)),
    retunable=True,
    description="spatial ranking criterion",
)


def _specs() -> dict[str, PolicySpec]:
    entries = [
        PolicySpec("LRU", LRU, description="least recently used"),
        PolicySpec("FIFO", FIFO, description="first in, first out"),
        PolicySpec("CLOCK", Clock, description="second-chance clock"),
        PolicySpec(
            "GCLOCK",
            GClock,
            params=(
                ParamSpec(
                    "initial_weight",
                    kind="object",
                    description="callable Page -> initial counter weight",
                ),
                ParamSpec(
                    "max_count",
                    kind="int",
                    default=3,
                    lo=1,
                    hi=64,
                    description="counter ceiling",
                ),
            ),
            description="generalized clock with weighted counters",
        ),
        PolicySpec("LFU", LFU, description="least frequently used"),
        PolicySpec("MRU", MRU, description="most recently used"),
        PolicySpec(
            "RANDOM",
            RandomPolicy,
            params=(
                ParamSpec("seed", kind="int", default=0,
                          description="RNG seed"),
            ),
            description="uniform random victim (seeded)",
        ),
        PolicySpec("LRU-T", LRUT, description="type-based LRU (Section 2.1)"),
        PolicySpec(
            "LRU-P",
            LRUP,
            params=(
                ParamSpec(
                    "priority",
                    kind="object",
                    description="callable Page -> eviction priority",
                ),
            ),
            description="priority/level-based LRU (Section 2.1)",
        ),
        PolicySpec(
            "LRU-K",
            LRUK,
            params=(
                ParamSpec(
                    "k", kind="int", default=2, lo=1, hi=8, retunable=True,
                    description="history depth K",
                ),
                ParamSpec(
                    "retain_history", kind="bool", default=True,
                    description="keep HIST across evictions",
                ),
            ),
            aliases=("LRUK",),
            description="history-based LRU-K (Section 2.2)",
        ),
        PolicySpec(
            "SLRU",
            SLRU,
            params=(_CANDIDATE_FRACTION, _CRITERION),
            description="static LRU candidate set + spatial victim (4.1)",
        ),
        PolicySpec(
            "ASB",
            ASB,
            params=(
                _CRITERION,
                ParamSpec(
                    "overflow_fraction", kind="float", default=0.2,
                    lo=0.0, hi=0.99,
                    description="overflow buffer share of the capacity",
                ),
                _CANDIDATE_FRACTION,
                ParamSpec(
                    "step_fraction", kind="float", default=0.01,
                    lo=0.001, hi=1.0, retunable=True,
                    description="adaptation step as a main-part fraction",
                ),
                ParamSpec(
                    "record_trace", kind="bool", default=False,
                    description="sample (clock, candidate_size) per adaptation",
                ),
            ),
            description="adaptable spatial buffer (Section 4.2)",
        ),
        PolicySpec(
            "2Q",
            TwoQ,
            params=(
                ParamSpec(
                    "kin_fraction", kind="float", default=0.25,
                    lo=0.01, hi=0.99,
                    description="A1in share of the buffer",
                ),
                ParamSpec(
                    "kout_fraction", kind="float", default=0.5,
                    lo=0.01, hi=4.0,
                    description="A1out ghost list share",
                ),
            ),
            aliases=("TWOQ",),
            description="2Q (Johnson/Shasha 1994)",
        ),
        PolicySpec("ARC", ARC, description="adaptive replacement cache"),
        PolicySpec(
            "AWRP",
            AWRP,
            params=(
                ParamSpec(
                    "decay", kind="float", default=1.0,
                    lo=0.0, hi=8.0, retunable=True,
                    description="recency exponent of the weight ranking "
                                "(0 = pure LFU, large = LRU-like)",
                ),
            ),
            description="adaptive weight ranking: frequency x recency "
                        "(Swain 2011)",
        ),
        PolicySpec(
            "EEVA",
            EEvA,
            params=(
                ParamSpec(
                    "recency_weight", kind="float", default=1.0,
                    lo=0.0, hi=16.0, retunable=True,
                    description="weight of the recency expert",
                ),
                ParamSpec(
                    "frequency_weight", kind="float", default=1.0,
                    lo=0.0, hi=16.0, retunable=True,
                    description="weight of the frequency expert",
                ),
                ParamSpec(
                    "level_weight", kind="float", default=0.5,
                    lo=0.0, hi=16.0, retunable=True,
                    description="weight of the tree-level expert",
                ),
            ),
            aliases=("EEVA-BASE",),
            description="weighted expert retention scoring (Demin 2024)",
        ),
        PolicySpec(
            "ENSEMBLE",
            EnsemblePolicy,
            params=(
                ParamSpec(
                    "experts",
                    kind="object",
                    description="expert policy names or instances "
                                f"(default: {', '.join(DEFAULT_EXPERTS)})",
                ),
                ParamSpec(
                    "weights",
                    kind="object",
                    retunable=True,
                    description="per-expert mixture weights "
                                "(normalised to sum to one)",
                ),
            ),
            description="weighted expert-vote mixture steered by the "
                        "tuning controller",
        ),
        PolicySpec(
            "DOMAIN",
            DomainSeparation,
            params=(
                ParamSpec(
                    "shares",
                    kind="object",
                    description="mapping PageType -> buffer share",
                ),
            ),
            aliases=("DOMAIN-SEPARATION",),
            description="per-category LRU pools with static shares",
        ),
    ]
    # The named LRU-K variants the experiments sweep (Fig. 4-9).
    for k in (2, 3, 5):
        entries.append(
            PolicySpec(
                f"LRU-{k}",
                LRUK,
                params=(
                    ParamSpec(
                        "retain_history", kind="bool", default=True,
                        description="keep HIST across evictions",
                    ),
                ),
                defaults={"k": k},
                description=f"LRU-K with K={k}",
            )
        )
    # The pure spatial criteria are policies of their own in the paper.
    for criterion in sorted(SPATIAL_CRITERIA):
        entries.append(
            PolicySpec(
                criterion,
                SpatialPolicy,
                defaults={"criterion": criterion},
                description=f"pure spatial replacement, criterion {criterion}",
            )
        )
    registry: dict[str, PolicySpec] = {}
    for spec in entries:
        for key in (spec.name, *spec.aliases):
            registry[key.upper()] = spec
    return registry


POLICY_REGISTRY: dict[str, PolicySpec] = _specs()

#: Matches parameterised LRU-K names ("LRU-4", "LRU-7") beyond the three
#: pre-registered variants.
_LRU_K_NAME = re.compile(r"^LRU-(\d+)$")


def policy_names() -> list[str]:
    """The canonical policy names, sorted (aliases excluded)."""
    return sorted({spec.name for spec in POLICY_REGISTRY.values()})


def policy_param_space(name: str | None = None) -> dict:
    """The tunable-parameter space of one policy, or of the whole zoo.

    With a ``name``, returns ``{param_name: ParamSpec}`` for that policy;
    without, returns ``{policy_name: {param_name: ParamSpec}}`` for every
    registered policy (parameter-free policies map to ``{}``).  This is
    the surface the self-tuning controller (:mod:`repro.tuning`) explores:
    ``ParamSpec.retunable`` marks knobs a live instance accepts through
    :meth:`~repro.buffer.policies.base.ReplacementPolicy.retune`, and
    ``lo``/``hi``/``choices`` bound the variants worth ghost-simulating.

    >>> sorted(policy_param_space("SLRU"))
    ['candidate_fraction', 'criterion']
    >>> policy_param_space("LRU")
    {}
    """
    if name is not None:
        key = name.strip().upper()
        spec = POLICY_REGISTRY.get(key)
        if spec is None:
            if _LRU_K_NAME.match(key):
                spec = POLICY_REGISTRY["LRU-K"]
            else:
                raise UnknownPolicyError(name)
        return {param.name: param for param in spec.params}
    return {
        spec.name: {param.name: param for param in spec.params}
        for spec in POLICY_REGISTRY.values()
    }


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Construct a policy by canonical name with normalised keywords.

    The single construction path used by the CLI, the ``repro.api``
    facade, and the page server: names are case-insensitive and accept a
    few historical aliases; keywords are validated against the policy's
    normalised surface, so misspellings fail with the accepted list.
    Parameterised LRU-K names (``LRU-4``) resolve to ``LRUK(k=4)``.

    >>> make_policy("asb").name
    'ASB'
    >>> make_policy("SLRU", candidate_fraction=0.5).name
    'SLRU 50%'
    """
    key = name.strip().upper()
    spec = POLICY_REGISTRY.get(key)
    if spec is None:
        match = _LRU_K_NAME.match(key)
        if match:
            return LRUK(k=int(match.group(1)), **kwargs)
        raise UnknownPolicyError(name)
    return spec.build(**kwargs)


__all__ = [
    "ReplacementPolicy",
    "ParamSpec",
    "PolicySpec",
    "POLICY_REGISTRY",
    "UnknownPolicyError",
    "make_policy",
    "policy_names",
    "policy_param_space",
    "AWRP",
    "EEvA",
    "EnsemblePolicy",
    "DEFAULT_EXPERTS",
    "LRU",
    "ARC",
    "TwoQ",
    "GClock",
    "DomainSeparation",
    "FIFO",
    "Clock",
    "LFU",
    "MRU",
    "RandomPolicy",
    "LRUT",
    "LRUP",
    "LRUK",
    "SpatialPolicy",
    "SLRU",
    "ASB",
    "SPATIAL_CRITERIA",
    "spatial_criterion",
]
