"""Page-replacement policies.

The policy zoo follows the paper's taxonomy:

* classic baselines — :class:`LRU`, plus :class:`FIFO`, :class:`Clock`,
  :class:`GClock`, :class:`LFU`, :class:`MRU` and :class:`RandomPolicy`
  for wider baselining;
* literature competitors beyond the paper — :class:`TwoQ` (Johnson/Shasha
  1994), :class:`ARC` (Megiddo/Modha 2003) and :class:`DomainSeparation`
  (per-category LRU pools);
* structural LRU variants (Section 2.1) — :class:`LRUT` (type-based) and
  :class:`LRUP` (priority/level-based);
* history-based (Section 2.2) — :class:`LRUK`;
* spatial (Section 2.3) — :class:`SpatialPolicy` with criteria A, EA, M,
  EM, EO;
* combined (Section 4.1) — :class:`SLRU` with a static candidate set;
* self-tuning (Section 4.2) — :class:`ASB`, the adaptable spatial buffer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.buffer.policies.arc import ARC
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.policies.clock import Clock
from repro.buffer.policies.domain_separation import DomainSeparation
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.gclock import GClock
from repro.buffer.policies.lfu import LFU
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.lru_p import LRUP
from repro.buffer.policies.lru_t import LRUT
from repro.buffer.policies.mru import MRU
from repro.buffer.policies.random_policy import RandomPolicy
from repro.buffer.policies.slru import SLRU
from repro.buffer.policies.spatial import (
    SPATIAL_CRITERIA,
    SpatialPolicy,
    spatial_criterion,
)
from repro.buffer.policies.two_q import TwoQ

# ----------------------------------------------------------------------
# The policy registry: one construction path for the whole zoo
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicySpec:
    """One registered policy: canonical name, constructor, keyword surface.

    ``keywords`` is the *normalised* keyword set the constructor accepts —
    the registry rejects anything else up front with a message naming the
    accepted spellings, so callers get one coherent error instead of
    seventeen slightly different ``TypeError`` texts.
    """

    name: str
    factory: Callable[..., ReplacementPolicy]
    keywords: tuple[str, ...] = ()
    aliases: tuple[str, ...] = ()
    description: str = ""
    defaults: dict = field(default_factory=dict)

    def build(self, **kwargs) -> ReplacementPolicy:
        unknown = sorted(set(kwargs) - set(self.keywords))
        if unknown:
            accepted = ", ".join(self.keywords) or "none"
            raise TypeError(
                f"policy {self.name!r} does not accept keyword(s) "
                f"{unknown}; accepted keywords: {accepted}"
            )
        merged = {**self.defaults, **kwargs}
        return self.factory(**merged)


def _specs() -> dict[str, PolicySpec]:
    entries = [
        PolicySpec("LRU", LRU, description="least recently used"),
        PolicySpec("FIFO", FIFO, description="first in, first out"),
        PolicySpec("CLOCK", Clock, description="second-chance clock"),
        PolicySpec(
            "GCLOCK",
            GClock,
            keywords=("initial_weight", "max_count"),
            description="generalized clock with weighted counters",
        ),
        PolicySpec("LFU", LFU, description="least frequently used"),
        PolicySpec("MRU", MRU, description="most recently used"),
        PolicySpec(
            "RANDOM",
            RandomPolicy,
            keywords=("seed",),
            description="uniform random victim (seeded)",
        ),
        PolicySpec("LRU-T", LRUT, description="type-based LRU (Section 2.1)"),
        PolicySpec(
            "LRU-P",
            LRUP,
            keywords=("priority",),
            description="priority/level-based LRU (Section 2.1)",
        ),
        PolicySpec(
            "LRU-K",
            LRUK,
            keywords=("k", "retain_history"),
            aliases=("LRUK",),
            description="history-based LRU-K (Section 2.2)",
        ),
        PolicySpec(
            "SLRU",
            SLRU,
            keywords=("candidate_fraction", "criterion"),
            description="static LRU candidate set + spatial victim (4.1)",
        ),
        PolicySpec(
            "ASB",
            ASB,
            keywords=(
                "criterion",
                "overflow_fraction",
                "candidate_fraction",
                "step_fraction",
                "record_trace",
            ),
            description="adaptable spatial buffer (Section 4.2)",
        ),
        PolicySpec(
            "2Q",
            TwoQ,
            keywords=("kin_fraction", "kout_fraction"),
            aliases=("TWOQ",),
            description="2Q (Johnson/Shasha 1994)",
        ),
        PolicySpec("ARC", ARC, description="adaptive replacement cache"),
        PolicySpec(
            "DOMAIN",
            DomainSeparation,
            keywords=("shares",),
            aliases=("DOMAIN-SEPARATION",),
            description="per-category LRU pools with static shares",
        ),
    ]
    # The named LRU-K variants the experiments sweep (Fig. 4-9).
    for k in (2, 3, 5):
        entries.append(
            PolicySpec(
                f"LRU-{k}",
                LRUK,
                keywords=("retain_history",),
                defaults={"k": k},
                description=f"LRU-K with K={k}",
            )
        )
    # The pure spatial criteria are policies of their own in the paper.
    for criterion in sorted(SPATIAL_CRITERIA):
        entries.append(
            PolicySpec(
                criterion,
                SpatialPolicy,
                keywords=(),
                defaults={"criterion": criterion},
                description=f"pure spatial replacement, criterion {criterion}",
            )
        )
    registry: dict[str, PolicySpec] = {}
    for spec in entries:
        for key in (spec.name, *spec.aliases):
            registry[key.upper()] = spec
    return registry


POLICY_REGISTRY: dict[str, PolicySpec] = _specs()

#: Matches parameterised LRU-K names ("LRU-4", "LRU-7") beyond the three
#: pre-registered variants.
_LRU_K_NAME = re.compile(r"^LRU-(\d+)$")


def policy_names() -> list[str]:
    """The canonical policy names, sorted (aliases excluded)."""
    return sorted({spec.name for spec in POLICY_REGISTRY.values()})


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Construct a policy by canonical name with normalised keywords.

    The single construction path used by the CLI, the ``repro.api``
    facade, and the page server: names are case-insensitive and accept a
    few historical aliases; keywords are validated against the policy's
    normalised surface, so misspellings fail with the accepted list.
    Parameterised LRU-K names (``LRU-4``) resolve to ``LRUK(k=4)``.

    >>> make_policy("asb").name
    'ASB'
    >>> make_policy("SLRU", candidate_fraction=0.5).name
    'SLRU 50%'
    """
    key = name.strip().upper()
    spec = POLICY_REGISTRY.get(key)
    if spec is None:
        match = _LRU_K_NAME.match(key)
        if match:
            return LRUK(k=int(match.group(1)), **kwargs)
        raise ValueError(
            f"unknown policy {name!r}; known policies: "
            + ", ".join(policy_names())
        )
    return spec.build(**kwargs)


__all__ = [
    "ReplacementPolicy",
    "PolicySpec",
    "POLICY_REGISTRY",
    "make_policy",
    "policy_names",
    "LRU",
    "ARC",
    "TwoQ",
    "GClock",
    "DomainSeparation",
    "FIFO",
    "Clock",
    "LFU",
    "MRU",
    "RandomPolicy",
    "LRUT",
    "LRUP",
    "LRUK",
    "SpatialPolicy",
    "SLRU",
    "ASB",
    "SPATIAL_CRITERIA",
    "spatial_criterion",
]
