"""Spatial page-replacement algorithms (Section 2.3 of the paper).

A spatial policy ranks resident pages by a *spatial criterion* derived from
the R*-tree optimization goals (Beckmann et al. 1990) and evicts the page
with the **smallest** criterion — the intuition being that pages with large
spatial footprint are hit by more queries and should stay buffered:

====  =========================================================
A     area of the page MBR (optimization goal O1)
EA    sum of the areas of the entry MBRs (O1 + O4)
M     margin of the page MBR (O3)
EM    sum of the margins of the entry MBRs (O3 + O4)
EO    pairwise overlap area between the entry MBRs
====  =========================================================

Ties (and empty pages, whose criterion is 0) are broken by LRU, exactly as
in the paper's victim rule: compute the set ``C`` of minimal-criterion
pages, and pick from ``C`` by LRU.

Criterion values are pure functions of the page content; they are computed
when first needed and cached on the frame (invalidated when the page is
dirtied), matching the paper's remark that area/margin cost "only a small
overhead when a new page is loaded into the buffer" while the overlap is
costlier and worth materialising.
"""

from __future__ import annotations

from typing import Callable

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.policies.base import ReplacementPolicy
from repro.geometry.rect import total_overlap
from repro.storage.page import Page, PageId


def crit_area(page: Page) -> float:
    """spatialCrit_A(p): area of the MBR containing all entries of p."""
    mbr = page.mbr()
    return mbr.area if mbr is not None else 0.0


def crit_entry_area(page: Page) -> float:
    """spatialCrit_EA(p): sum of the entry MBR areas (not normalised)."""
    return sum(entry.mbr.area for entry in page.entries)


def crit_margin(page: Page) -> float:
    """spatialCrit_M(p): margin of the MBR containing all entries of p."""
    mbr = page.mbr()
    return mbr.margin if mbr is not None else 0.0


def crit_entry_margin(page: Page) -> float:
    """spatialCrit_EM(p): sum of the entry MBR margins (not normalised)."""
    return sum(entry.mbr.margin for entry in page.entries)


def crit_entry_overlap(page: Page) -> float:
    """spatialCrit_EO(p): summed pairwise overlap area between entries."""
    return total_overlap(page.entry_mbrs())


#: The five criteria of the paper, by their short names.
SPATIAL_CRITERIA: dict[str, Callable[[Page], float]] = {
    "A": crit_area,
    "EA": crit_entry_area,
    "M": crit_margin,
    "EM": crit_entry_margin,
    "EO": crit_entry_overlap,
}


def spatial_criterion(frame: Frame, criterion: str) -> float:
    """Criterion value of a frame's page, cached on the frame."""
    cached = frame.crit_cache.get(criterion)
    if cached is not None:
        return cached
    value = SPATIAL_CRITERIA[criterion](frame.page)
    frame.crit_cache[criterion] = value
    return value


class SpatialPolicy(ReplacementPolicy):
    """Pure spatial replacement: evict the page with the smallest criterion.

    The paper's experiments (Section 3.4) single out criterion A as the best
    performer and use it as the representative spatial strategy; A is the
    default here.
    """

    def __init__(self, criterion: str = "A") -> None:
        super().__init__()
        if criterion not in SPATIAL_CRITERIA:
            raise ValueError(
                f"unknown spatial criterion {criterion!r}; "
                f"expected one of {sorted(SPATIAL_CRITERIA)}"
            )
        self.criterion = criterion
        self.name = criterion

    def select_victim(self) -> PageId:
        frames = self.buffer.frames
        criterion = self.criterion
        if isinstance(frames, FrameTable):
            # One walk up the recency chain (ascending last_access): with a
            # strict ``<`` the *first* frame at the minimal criterion wins,
            # which is exactly the paper's rule — minimal criterion, ties
            # broken by LRU.
            victim: Frame | None = None
            best = 0.0
            frame = frames.head
            while frame is not None:
                if frame.pin_count == 0:
                    value = frame.crit_cache.get(criterion)
                    if value is None:
                        value = spatial_criterion(frame, criterion)
                    if victim is None or value < best:
                        victim = frame
                        best = value
                frame = frame.lru_next
            if victim is None:
                from repro.buffer.manager import BufferFullError

                raise BufferFullError("all resident pages are pinned")
            return victim.page.page_id
        evictable = self._evictable()
        smallest = min(spatial_criterion(frame, criterion) for frame in evictable)
        candidates = [
            frame
            for frame in evictable
            if spatial_criterion(frame, criterion) == smallest
        ]
        return self.lru_victim(candidates).page_id
