"""ARC — adaptive replacement cache (Megiddo & Modha, FAST 2003).

The canonical *self-tuning* buffer of the systems literature, included as
a modern comparison point for the paper's ASB: both adapt a single knob
online from feedback about their own mispredictions — ARC balances recency
against frequency via ghost-list hits, ASB balances recency against the
spatial criterion via overflow-buffer hits.

Structure (c = capacity):

* **T1** — resident pages seen exactly once recently (recency list);
* **T2** — resident pages seen at least twice (frequency list);
* **B1 / B2** — ghost ids of pages recently evicted from T1 / T2;
* **p** — the target size of T1, adapted on every ghost hit: a B1 hit
  means T1 was too small (grow p), a B2 hit means T2 was too small
  (shrink p).

|T1| + |T2| <= c and |T1| + |B1| <= c, |T1|+|T2|+|B1|+|B2| <= 2c.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.buffer.frames import Frame
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class ARC(ReplacementPolicy):
    """Adaptive replacement cache."""

    name = "ARC"

    def __init__(self) -> None:
        super().__init__()
        self._t1: OrderedDict[PageId, None] = OrderedDict()  # LRU order
        self._t2: OrderedDict[PageId, None] = OrderedDict()
        self._b1: OrderedDict[PageId, None] = OrderedDict()
        self._b2: OrderedDict[PageId, None] = OrderedDict()
        self._p = 0.0  # target size of T1

    def attach(self, buffer: BufferManager) -> None:
        super().attach(buffer)
        self._p = 0.0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    def on_load(self, frame: Frame) -> None:
        page_id = frame.page_id
        capacity = self.buffer.capacity
        if page_id in self._b1:
            # Ghost hit in B1: recency was undervalued; grow T1's target.
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(capacity), self._p + delta)
            del self._b1[page_id]
            self._t2[page_id] = None
        elif page_id in self._b2:
            # Ghost hit in B2: frequency was undervalued; shrink T1's target.
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
            del self._b2[page_id]
            self._t2[page_id] = None
        else:
            # A genuinely new page enters the recency list.
            self._t1[page_id] = None
            # Bound the total directory to 2c ids (case IV of the paper).
            while len(self._t1) + len(self._b1) > capacity and self._b1:
                self._b1.popitem(last=False)
            total = (
                len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
            )
            while total > 2 * capacity and self._b2:
                self._b2.popitem(last=False)
                total -= 1

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        page_id = frame.page_id
        if page_id in self._t1:
            # Second reference promotes to the frequency list.
            del self._t1[page_id]
            self._t2[page_id] = None
        elif page_id in self._t2:
            self._t2.move_to_end(page_id)

    def on_evict(self, frame: Frame) -> None:
        page_id = frame.page_id
        if page_id in self._t1:
            del self._t1[page_id]
            self._b1[page_id] = None
        elif page_id in self._t2:
            del self._t2[page_id]
            self._b2[page_id] = None

    def reset(self) -> None:
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0.0

    # ------------------------------------------------------------------
    # Victim selection (REPLACE of the original paper)
    # ------------------------------------------------------------------

    def select_victim(self) -> PageId:
        frames = self.buffer.frames

        def first_unpinned(queue: OrderedDict[PageId, None]) -> PageId | None:
            for page_id in queue:
                if not frames[page_id].pinned:
                    return page_id
            return None

        prefer_t1 = len(self._t1) > 0 and (
            len(self._t1) > self._p
            or (len(self._t2) == 0)
        )
        order = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        for queue in order:
            victim = first_unpinned(queue)
            if victim is not None:
                return victim
        raise BufferFullError("all resident pages are pinned")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def target_t1(self) -> float:
        """The adaptive knob p (target share of the recency list)."""
        return self._p

    @property
    def ghost_size(self) -> int:
        return len(self._b1) + len(self._b2)
