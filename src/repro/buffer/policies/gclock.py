"""GCLOCK — generalized clock replacement.

Each frame carries a reference *counter* instead of CLOCK's single bit;
hits increment the counter (up to a cap), and the sweeping hand decrements
counters until it finds one at zero.  Pages can be given type-dependent
initial weights, which makes GCLOCK a classic vehicle for type-aware
buffering in real systems (e.g. favouring index pages) — a counter-based
relative of the paper's LRU-T/LRU-P.
"""

from __future__ import annotations

from typing import Callable

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import Page, PageId, PageType


def flat_weight(page: Page) -> int:
    """Default initial weight: 1 for every page."""
    return 1


def type_weight(page: Page) -> int:
    """Type-aware initial weight: directories start with more credit."""
    if page.page_type is PageType.DIRECTORY:
        return 3
    if page.page_type is PageType.DATA:
        return 1
    return 0


class GClock(ReplacementPolicy):
    """Generalized clock with configurable initial weights and counter cap."""

    name = "GCLOCK"

    def __init__(
        self,
        initial_weight: Callable[[Page], int] = flat_weight,
        max_count: int = 3,
    ) -> None:
        super().__init__()
        if max_count < 1:
            raise ValueError("max_count must be at least 1")
        self._initial_weight = initial_weight
        self._max_count = max_count
        self._ring: list[PageId] = []
        self._hand = 0
        self._count: dict[PageId, int] = {}

    def on_load(self, frame: Frame) -> None:
        self._ring.append(frame.page_id)
        weight = min(self._max_count, max(0, self._initial_weight(frame.page)))
        self._count[frame.page_id] = weight

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        page_id = frame.page_id
        self._count[page_id] = min(self._max_count, self._count[page_id] + 1)

    def on_evict(self, frame: Frame) -> None:
        index = self._ring.index(frame.page_id)
        self._ring.pop(index)
        if index < self._hand:
            self._hand -= 1
        if self._ring and self._hand >= len(self._ring):
            self._hand = 0
        self._count.pop(frame.page_id, None)

    def reset(self) -> None:
        self._ring.clear()
        self._count.clear()
        self._hand = 0

    def select_victim(self) -> PageId:
        frames = {frame.page_id for frame in self._evictable()}
        # Enough sweeps to decrement the largest counter to zero, plus one.
        for _ in range((self._max_count + 1) * len(self._ring)):
            page_id = self._ring[self._hand]
            if page_id in frames and self._count[page_id] <= 0:
                return page_id
            if self._count[page_id] > 0:
                self._count[page_id] -= 1
            self._hand = (self._hand + 1) % len(self._ring)
        for offset in range(len(self._ring)):
            page_id = self._ring[(self._hand + offset) % len(self._ring)]
            if page_id in frames:
                return page_id
        raise RuntimeError("gclock ring and frame table are out of sync")

    def count_of(self, page_id: PageId) -> int:
        """Current reference counter of a resident page (for tests)."""
        return self._count[page_id]
