"""SLRU: the static combination of LRU and a spatial criterion.

Section 4.1 of the paper: (1) LRU computes a *candidate set* — the
least-recently-used fraction of the buffer — and (2) the spatial criterion
selects the victim from the candidates.  A large candidate set gives the
spatial criterion more influence, a small one approaches plain LRU; the
fraction is fixed up front (the paper evaluates 50 % and 25 % in Fig. 12).

The adaptive variant that tunes the candidate-set size at run time is
:class:`repro.buffer.policies.asb.ASB`.
"""

from __future__ import annotations

import math

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.policies.base import ReplacementPolicy, deprecated_keyword
from repro.buffer.policies.spatial import SPATIAL_CRITERIA, spatial_criterion
from repro.storage.page import PageId


def select_from_candidates(
    frames: list[Frame], candidate_count: int, criterion: str
) -> Frame:
    """The paper's two-step victim rule on an explicit frame list.

    Takes the ``candidate_count`` least-recently-used frames, then returns
    the candidate with the smallest spatial criterion (LRU order breaks
    ties, because the sort below is stable and sorted by recency first).
    """
    count = max(1, min(candidate_count, len(frames)))
    by_recency = sorted(frames, key=lambda frame: frame.last_access)
    candidates = by_recency[:count]
    return min(candidates, key=lambda frame: spatial_criterion(frame, criterion))


class SLRU(ReplacementPolicy):
    """LRU candidate set of a fixed fraction + spatial victim selection.

    ``candidate_fraction`` is the canonical keyword for the candidate-set
    size (the same concept — and the same keyword — as ASB's initial
    candidate fraction).  The pre-1.1 keyword ``fraction`` still works but
    emits a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        candidate_fraction: float = 0.25,
        criterion: str = "A",
        *,
        fraction: float | None = None,
    ) -> None:
        super().__init__()
        if fraction is not None:
            candidate_fraction = deprecated_keyword(
                "SLRU", "fraction", "candidate_fraction", fraction
            )
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError("candidate fraction must be in (0, 1]")
        if criterion not in SPATIAL_CRITERIA:
            raise ValueError(f"unknown spatial criterion {criterion!r}")
        self.candidate_fraction = candidate_fraction
        self.criterion = criterion
        self.name = f"SLRU {int(round(candidate_fraction * 100))}%"

    @property
    def fraction(self) -> float:
        """Deprecated alias of :attr:`candidate_fraction`."""
        deprecated_keyword("SLRU", "fraction", "candidate_fraction", None)
        return self.candidate_fraction

    def retune(
        self,
        *,
        candidate_fraction: float | None = None,
        criterion: str | None = None,
        **kwargs,
    ) -> None:
        """Change the candidate fraction / criterion of a live instance."""
        super().retune(**kwargs)
        if criterion is not None:
            if criterion not in SPATIAL_CRITERIA:
                raise ValueError(f"unknown spatial criterion {criterion!r}")
            self.criterion = criterion
        if candidate_fraction is not None:
            if not 0.0 < candidate_fraction <= 1.0:
                raise ValueError("candidate fraction must be in (0, 1]")
            self.candidate_fraction = candidate_fraction
            self.name = f"SLRU {int(round(candidate_fraction * 100))}%"

    def candidate_count(self) -> int:
        """Size of the candidate set for the current buffer capacity."""
        return max(1, math.ceil(self.candidate_fraction * self.buffer.capacity))

    def select_victim(self) -> PageId:
        frames = self.buffer.frames
        if isinstance(frames, FrameTable):
            # The recency chain is ordered by last access, so the first
            # ``candidate_count`` unpinned frames off the LRU head are
            # exactly the stable-sorted candidate prefix the paper's rule
            # asks for — no sort, O(candidates + pinned skips).
            count = self.candidate_count()
            criterion = self.criterion
            frame = frames.head
            victim = None
            best = 0.0
            while frame is not None and count > 0:
                if frame.pin_count == 0:
                    count -= 1
                    value = frame.crit_cache.get(criterion)
                    if value is None:
                        value = spatial_criterion(frame, criterion)
                    if victim is None or value < best:
                        victim = frame
                        best = value
                frame = frame.lru_next
            if victim is None:
                from repro.buffer.manager import BufferFullError

                raise BufferFullError("all resident pages are pinned")
            return victim.page.page_id
        evictable = self._evictable()
        victim = select_from_candidates(
            evictable, self.candidate_count(), self.criterion
        )
        return victim.page_id
