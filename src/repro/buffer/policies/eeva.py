"""EEvA — expert-based eviction scoring (Demin et al., 2024).

EEvA ("Fast Expert-Based Algorithms for Buffer Page Replacement",
arXiv:2405.00154) frames replacement as a panel of cheap *experts*, each
judging one facet of a page's worth, combined into a single retention
score.  The reproduction implements the EEvA-base shape with the three
experts the spatial-buffer setting suggests:

* **recency** — the page's last logical access time (LRU's signal);
* **frequency** — the page's access counter (LFU's signal);
* **level** — the page's tree level, so directory pages outrank data
  pages (the structural insight of LRU-P, Section 2.1 of the source
  paper, recast as an expert).

Each expert's raw value is min-max normalised over the current eviction
candidates, the weighted sum is the retention score, and the minimum
score is evicted.  The weights are the policy's knobs — all retunable in
place, which is what the self-tuning controller exploits.

Like :class:`~repro.buffer.policies.awrp.AWRP`, the policy reads frame
metadata only (timestamps, access counter, page level): no internal
state, bit-identical behaviour on the metadata-only ghost caches, free
live hand-offs.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


def _normalise(value: float, lo: float, hi: float) -> float:
    """Min-max normalisation; a degenerate span scores everyone equal."""
    if hi <= lo:
        return 0.0
    return (value - lo) / (hi - lo)


class EEvA(ReplacementPolicy):
    """Evict the minimum weighted expert retention score (EEvA-base)."""

    name = "EEVA"

    def __init__(
        self,
        recency_weight: float = 1.0,
        frequency_weight: float = 1.0,
        level_weight: float = 0.5,
    ) -> None:
        super().__init__()
        for label, value in (
            ("recency_weight", recency_weight),
            ("frequency_weight", frequency_weight),
            ("level_weight", level_weight),
        ):
            if value < 0.0:
                raise ValueError(f"{label} must be non-negative")
        self.recency_weight = float(recency_weight)
        self.frequency_weight = float(frequency_weight)
        self.level_weight = float(level_weight)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _scores(self, frames: list[Frame]) -> list[float]:
        recency = [float(frame.last_access) for frame in frames]
        frequency = [float(frame.access_count) for frame in frames]
        level = [float(frame.page.level) for frame in frames]
        spans = [
            (min(values), max(values)) for values in (recency, frequency, level)
        ]
        weights = (self.recency_weight, self.frequency_weight, self.level_weight)
        return [
            sum(
                weight * _normalise(values[index], lo, hi)
                for weight, values, (lo, hi) in zip(
                    weights, (recency, frequency, level), spans
                )
            )
            for index in range(len(frames))
        ]

    def select_victim(self) -> PageId:
        frames = self._evictable()
        scores = self._scores(frames)
        # last_access breaks exact score ties (all-weights-zero, single
        # candidate spans): logical timestamps are unique, so the choice
        # is total and reproduces bit-identically on ghost caches.
        victim = min(
            zip(frames, scores),
            key=lambda pair: (pair[1], pair[0].last_access),
        )[0]
        return victim.page_id

    # ------------------------------------------------------------------
    # Self-tuning
    # ------------------------------------------------------------------

    def retune(
        self,
        *,
        recency_weight: float | None = None,
        frequency_weight: float | None = None,
        level_weight: float | None = None,
        **kwargs,
    ) -> None:
        """Change expert weights in place; no bookkeeping to migrate."""
        super().retune(**kwargs)
        for label, value in (
            ("recency_weight", recency_weight),
            ("frequency_weight", frequency_weight),
            ("level_weight", level_weight),
        ):
            if value is None:
                continue
            if value < 0.0:
                raise ValueError(f"{label} must be non-negative")
            setattr(self, label, float(value))

    def flush_priority(self, frame: Frame) -> float:
        """Approximate the eviction order for the background flusher.

        Scoring one frame against the full candidate set per flush probe
        would be quadratic; the recency expert dominates the default
        weighting, so the flusher follows it.
        """
        return float(frame.last_access)
