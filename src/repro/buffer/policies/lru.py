"""Least recently used — the reference policy of all experiments.

Every performance number in the paper is reported relative to LRU
(``gain = accesses(LRU) / accesses(policy) - 1``), so this implementation is
deliberately the textbook rule: evict the unpinned page whose last access is
oldest.
"""

from __future__ import annotations

from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class LRU(ReplacementPolicy):
    """Evict the page that has not been accessed for the longest time."""

    name = "LRU"

    def select_victim(self) -> PageId:
        return self.lru_victim(self._evictable()).page_id
