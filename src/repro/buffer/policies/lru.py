"""Least recently used — the reference policy of all experiments.

Every performance number in the paper is reported relative to LRU
(``gain = accesses(LRU) / accesses(policy) - 1``), so this implementation is
deliberately the textbook rule: evict the unpinned page whose last access is
oldest.  On the slot core the victim is the first unpinned frame off the
recency chain's LRU head — O(1 + pinned prefix), no scan; the chain is
ordered by ``last_access`` (unique logical clock), so the pick is identical
to the ``min()`` it replaces.
"""

from __future__ import annotations

from repro.buffer.frames import FrameTable
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class LRU(ReplacementPolicy):
    """Evict the page that has not been accessed for the longest time."""

    name = "LRU"

    def select_victim(self) -> PageId:
        frames = self.buffer.frames
        if isinstance(frames, FrameTable):
            frame = frames.head
            while frame is not None:
                if frame.pin_count == 0:
                    return frame.page.page_id
                frame = frame.lru_next
            from repro.buffer.manager import BufferFullError

            raise BufferFullError("all resident pages are pinned")
        return self.lru_victim(self._evictable()).page_id
