"""Type-based LRU (LRU-T), Section 2.1 of the paper.

Pages are ranked by their category: object pages are dropped first, then
data pages, and directory pages stay in the buffer as long as possible,
under the assumption that directory pages are requested more often.  Within
one category the LRU rule decides.
"""

from __future__ import annotations

from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class LRUT(ReplacementPolicy):
    """Evict by page category (object < data < directory), then by LRU."""

    name = "LRU-T"

    def select_victim(self) -> PageId:
        frames = self._evictable()
        victim = min(
            frames,
            key=lambda frame: (frame.page.page_type.type_rank, frame.last_access),
        )
        return victim.page_id
