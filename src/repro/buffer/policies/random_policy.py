"""Seeded random replacement.

Evicts a uniformly random unpinned page.  Random replacement is the
canonical "no information" baseline; the generator is seeded so experiment
runs stay reproducible.
"""

from __future__ import annotations

import random

from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class RandomPolicy(ReplacementPolicy):
    """Evict a random unpinned page (deterministic under a fixed seed)."""

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def select_victim(self) -> PageId:
        frames = self._evictable()
        frames.sort(key=lambda frame: frame.page_id)
        return self._rng.choice(frames).page_id
