"""Least frequently used replacement.

Evicts the resident page with the fewest accesses since it was loaded, with
LRU as tie-breaker.  LFU is the classic frequency-based contrast to LRU's
recency rule (the drawback of LRU quoted in the paper's introduction — not
distinguishing frequently and infrequently used pages — is exactly what LFU
addresses, at the price of aging problems).  Included as a baseline.
"""

from __future__ import annotations

from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class LFU(ReplacementPolicy):
    """Evict the page with the smallest access count; ties fall to LRU."""

    name = "LFU"

    def select_victim(self) -> PageId:
        frames = self._evictable()
        victim = min(
            frames, key=lambda frame: (frame.access_count, frame.last_access)
        )
        return victim.page_id
