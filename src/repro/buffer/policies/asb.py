"""ASB — the adaptable spatial buffer (Section 4.2, the paper's contribution).

The buffer is split into two parts:

* a **main part** managed by the SLRU combination: when a page must leave
  the main part, the ``candidate_size`` least-recently-used main pages form
  the candidate set and the one with the smallest spatial criterion is
  chosen (Section 4.1);
* an **overflow buffer** (by default 20 % of the whole buffer) that receives
  the pages dropped from the main part and is itself managed first-in
  first-out.  The FIFO head of the overflow buffer is the page that really
  leaves memory.

The overflow buffer doubles as the *feedback sensor* for self-tuning.  When
a requested page ``p`` is found in the overflow buffer, it is promoted back
to the main part, and the policy compares how the two ranking criteria judge
the pages still sitting in the overflow buffer:

1. more overflow pages have a **better spatial criterion** than ``p`` than
   have a better LRU criterion → the spatial ranking would have kept the
   wrong pages; LRU looks more suitable → the candidate set **shrinks**;
2. fewer → the spatial ranking looks more suitable → the candidate set
   **grows**;
3. equal → no change.

"Better" means *would have stayed in the buffer longer*: a larger spatial
criterion, respectively a more recent last access.  The size changes in
steps of 1 % of the main part (paper Section 4.3) and is clamped to
``[1, main_capacity]``.  Initial size: 25 % of the main part.

The overflow buffer is carved out of the given capacity, so ASB never uses
more memory than the policies it is compared against, and — unlike LRU-K —
it keeps no state about pages that left the buffer.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.base import ReplacementPolicy, deprecated_keyword
from repro.buffer.policies.spatial import SPATIAL_CRITERIA, spatial_criterion
from repro.obs.events import BufferEvent
from repro.storage.page import PageId


class ASB(ReplacementPolicy):
    """Self-tuning combination of LRU and a spatial replacement criterion."""

    def __init__(
        self,
        criterion: str = "A",
        overflow_fraction: float = 0.2,
        candidate_fraction: float = 0.25,
        step_fraction: float = 0.01,
        record_trace: bool = False,
        *,
        initial_fraction: float | None = None,
    ) -> None:
        super().__init__()
        if initial_fraction is not None:
            candidate_fraction = deprecated_keyword(
                "ASB", "initial_fraction", "candidate_fraction", initial_fraction
            )
        if criterion not in SPATIAL_CRITERIA:
            raise ValueError(f"unknown spatial criterion {criterion!r}")
        if not 0.0 <= overflow_fraction < 1.0:
            raise ValueError("overflow fraction must be in [0, 1)")
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError("initial candidate fraction must be in (0, 1]")
        if not 0.0 < step_fraction <= 1.0:
            raise ValueError("step fraction must be in (0, 1]")
        self.criterion = criterion
        self.overflow_fraction = overflow_fraction
        self.candidate_fraction = candidate_fraction
        self.step_fraction = step_fraction
        self.record_trace = record_trace
        self.name = "ASB"
        # Membership of the two buffer parts.  The main part is a set of
        # *frames* (identity-hashed — one pointer probe on the victim
        # walk); the overflow dict is page-id keyed and ordered
        # oldest-first, i.e. FIFO order.  A frame object can never linger:
        # ``on_evict`` always runs before the manager recycles a frame.
        self._main: set[Frame] = set()
        self._overflow: OrderedDict[PageId, None] = OrderedDict()
        self._candidate_size = 1
        self._step = 1
        self.main_capacity = 0
        self.overflow_capacity = 0
        #: Optional (clock, candidate_size) samples, one per adaptation.
        self.trace: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Wiring — capacities depend on the buffer size
    # ------------------------------------------------------------------

    def attach(self, buffer: BufferManager) -> None:
        super().attach(buffer)
        self.overflow_capacity = int(round(self.overflow_fraction * buffer.capacity))
        if self.overflow_capacity >= buffer.capacity:
            self.overflow_capacity = buffer.capacity - 1
        self.main_capacity = buffer.capacity - self.overflow_capacity
        self._step = max(1, round(self.step_fraction * self.main_capacity))
        self._candidate_size = self._initial_candidate_size()

    def _initial_candidate_size(self) -> int:
        return min(
            self.main_capacity,
            max(1, round(self.candidate_fraction * self.main_capacity)),
        )

    @property
    def initial_fraction(self) -> float:
        """Deprecated alias of :attr:`candidate_fraction`."""
        deprecated_keyword("ASB", "initial_fraction", "candidate_fraction", None)
        return self.candidate_fraction

    @property
    def candidate_size(self) -> int:
        """Current size of the LRU candidate set (the self-tuned knob)."""
        return self._candidate_size

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    def on_load(self, frame: Frame) -> None:
        """A new page enters the main part, demoting a main page if full."""
        if len(self._main) >= self.main_capacity:
            self._demote_main_victim()
        self._main.add(frame)

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        """Promote overflow hits back to the main part, adapting the knob.

        This hook runs *before* the manager renews the frame's access
        timestamp, so ``frame.last_access`` still reflects the page's
        recency while it sat in the overflow buffer — which is what the
        LRU-criterion comparison needs.
        """
        # ``frame.page.page_id`` dodges the property descriptor — this is
        # the only ASB work on the non-promoting hit path, so it must stay
        # one set probe.
        page_id = frame.page.page_id
        if page_id not in self._overflow:
            return
        self._adapt(frame)
        del self._overflow[page_id]
        if len(self._main) >= self.main_capacity:
            self._demote_main_victim()
        self._main.add(frame)
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="promote",
                    clock=self.buffer.clock,
                    page_id=frame.page_id,
                )
            )

    def on_evict(self, frame: Frame) -> None:
        self._main.discard(frame)
        self._overflow.pop(frame.page_id, None)

    def reset(self) -> None:
        self._main.clear()
        self._overflow.clear()
        self._candidate_size = self._initial_candidate_size()
        self.trace.clear()

    def retune(
        self,
        *,
        candidate_fraction: float | None = None,
        step_fraction: float | None = None,
        criterion: str | None = None,
        **kwargs,
    ) -> None:
        """Re-aim the self-tuning knob in place (controller hook).

        ``candidate_fraction`` re-seats the candidate-set size at the new
        fraction (the overflow feedback loop keeps adapting from there);
        ``step_fraction``/``criterion`` swap the adaptation granularity
        and the spatial ranking.  Resident bookkeeping (main/overflow
        membership) is untouched — retuning never drops a page.
        """
        super().retune(**kwargs)
        if criterion is not None:
            if criterion not in SPATIAL_CRITERIA:
                raise ValueError(f"unknown spatial criterion {criterion!r}")
            self.criterion = criterion
        if step_fraction is not None:
            if not 0.0 < step_fraction <= 1.0:
                raise ValueError("step fraction must be in (0, 1]")
            self.step_fraction = step_fraction
            if self.main_capacity:
                self._step = max(1, round(step_fraction * self.main_capacity))
        if candidate_fraction is not None:
            if not 0.0 < candidate_fraction <= 1.0:
                raise ValueError("candidate fraction must be in (0, 1]")
            self.candidate_fraction = candidate_fraction
            if self.main_capacity:
                self._candidate_size = self._initial_candidate_size()

    # ------------------------------------------------------------------
    # The self-tuning step
    # ------------------------------------------------------------------

    def _adapt(self, promoted: Frame) -> None:
        """Compare the two criteria on the overflow pages (Section 4.2)."""
        # ``frames.get`` is the raw (non-flushing) lookup: this loop reads
        # only frame fields, which are always current — the deferred state
        # of the recency chain is irrelevant here.
        lookup = self.buffer.frames.get
        criterion = self.criterion
        crit_p = spatial_criterion(promoted, criterion)
        recency_p = promoted.last_access
        promoted_id = promoted.page.page_id
        better_spatial = 0
        better_lru = 0
        for page_id in self._overflow:
            if page_id == promoted_id:
                continue
            other = lookup(page_id)
            # Inline cache probe: every overflow page is judged on each
            # promotion, so the criterion call must not dominate the hit.
            value = other.crit_cache.get(criterion)
            if value is None:
                value = spatial_criterion(other, criterion)
            if value > crit_p:
                better_spatial += 1
            if other.last_access > recency_p:
                better_lru += 1
        before = self._candidate_size
        if better_spatial > better_lru:
            # The spatial ranking kept the wrong pages: lean towards LRU.
            self._candidate_size = max(1, self._candidate_size - self._step)
        elif better_spatial < better_lru:
            # The LRU ranking kept the wrong pages: lean towards spatial.
            self._candidate_size = min(
                self.main_capacity, self._candidate_size + self._step
            )
        if self.record_trace:
            self.trace.append((self.buffer.clock, self._candidate_size))
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="adapt",
                    clock=self.buffer.clock,
                    page_id=promoted.page_id,
                    size=self._candidate_size,
                    delta=self._candidate_size - before,
                )
            )

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def _main_frames(self) -> list[Frame]:
        return [frame for frame in self._main if frame.pin_count == 0]

    def _main_victim(self) -> Frame | None:
        """The SLRU victim of the main part, or ``None`` if all pinned.

        On the slot core the ``candidate_size`` least-recently-used main
        pages are the first unpinned main frames off the recency chain's
        LRU head — the chain is ordered by last access, so the walk gives
        the same candidate prefix (in the same order) as sorting the main
        part by recency and truncating, without the O(n log n) sort.
        """
        frames = self.buffer.frames
        criterion = self.criterion
        if isinstance(frames, FrameTable):
            main = self._main
            count = self._candidate_size
            frame = frames.head
            victim: Frame | None = None
            best = 0.0
            while frame is not None and count > 0:
                if frame in main and frame.pin_count == 0:
                    count -= 1
                    value = frame.crit_cache.get(criterion)
                    if value is None:
                        value = spatial_criterion(frame, criterion)
                    if victim is None or value < best:
                        victim = frame
                        best = value
                frame = frame.lru_next
            return victim
        candidates = self._main_frames()
        if not candidates:
            return None
        candidates.sort(key=lambda frame: frame.last_access)
        del candidates[self._candidate_size :]
        return min(
            candidates, key=lambda frame: spatial_criterion(frame, criterion)
        )

    def _demote_main_victim(self) -> None:
        """Move the SLRU victim of the main part into the overflow buffer."""
        victim = self._main_victim()
        if victim is None:
            # Every main page is pinned; let the main part exceed its
            # nominal share rather than evicting a pinned page.
            return
        self._main.discard(victim)
        self._overflow[victim.page.page_id] = None

    def select_victim(self) -> PageId:
        """The FIFO head of the overflow buffer leaves memory.

        With an empty overflow buffer (``overflow_fraction == 0`` or a
        buffer too small to have one) the policy degenerates to SLRU on the
        main part.
        """
        lookup = self.buffer.frames.get
        for page_id in self._overflow:
            if lookup(page_id).pin_count == 0:
                return page_id
        victim = self._main_victim()
        if victim is None:
            raise BufferFullError("all resident pages are pinned")
        return victim.page_id

    # ------------------------------------------------------------------
    # Introspection (reports, tests, Fig. 14)
    # ------------------------------------------------------------------

    @property
    def main_size(self) -> int:
        return len(self._main)

    @property
    def overflow_size(self) -> int:
        return len(self._overflow)

    def overflow_ids(self) -> list[PageId]:
        """Overflow page ids in FIFO order (oldest first)."""
        return list(self._overflow)
