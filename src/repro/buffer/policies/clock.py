"""CLOCK (second chance) replacement.

A classic LRU approximation: frames sit on a circular list with a reference
bit; the hand sweeps, clearing bits, and evicts the first frame whose bit is
already clear.  Included as an additional baseline for the ablation benches.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId


class Clock(ReplacementPolicy):
    """Second-chance replacement with a sweeping hand."""

    name = "CLOCK"

    def __init__(self) -> None:
        super().__init__()
        self._ring: list[PageId] = []
        self._hand = 0
        self._referenced: dict[PageId, bool] = {}

    def on_load(self, frame: Frame) -> None:
        # The reference bit starts clear: a page earns its second chance by
        # being re-referenced, which is what distinguishes CLOCK from FIFO.
        self._ring.append(frame.page_id)
        self._referenced[frame.page_id] = False

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        self._referenced[frame.page_id] = True

    def on_evict(self, frame: Frame) -> None:
        page_id = frame.page_id
        index = self._ring.index(page_id)
        self._ring.pop(index)
        if index < self._hand:
            self._hand -= 1
        if self._ring and self._hand >= len(self._ring):
            self._hand = 0
        self._referenced.pop(page_id, None)

    def reset(self) -> None:
        self._ring.clear()
        self._referenced.clear()
        self._hand = 0

    def select_victim(self) -> PageId:
        frames = {frame.page_id for frame in self._evictable()}
        # Two sweeps suffice: the first may clear every bit, the second must
        # then find a victim among the evictable frames.
        for _ in range(2 * len(self._ring)):
            page_id = self._ring[self._hand]
            if page_id in frames and not self._referenced[page_id]:
                return page_id
            self._referenced[page_id] = False
            self._hand = (self._hand + 1) % len(self._ring)
        # All evictable frames kept their bit set via pinning interleave;
        # fall back to the hand position's first evictable page.
        for offset in range(len(self._ring)):
            page_id = self._ring[(self._hand + offset) % len(self._ring)]
            if page_id in frames:
                return page_id
        raise RuntimeError("clock ring and frame table are out of sync")
