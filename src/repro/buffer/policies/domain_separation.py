"""Domain separation: one LRU pool per page category.

The classic alternative to a global policy (Reiter's domain separation,
discussed in the buffer-management studies the paper cites, e.g. Chou &
DeWitt's evaluation and Ng/Faloutsos/Sellis' allocation work): the buffer
is statically partitioned into *domains* — here the three page categories
of Section 2.1 (directory / data / object) — and each domain runs its own
LRU.  A page never competes with pages of another category.

The static shares are the knob the paper's self-tuning philosophy argues
against: good shares depend on the workload, and nothing adapts them.  The
default gives directories a protected slice (they are few and hot), the
bulk to data pages, and a small slice to object pages.

A domain at its share evicts internally; domains may borrow free frames
from the common pool while the buffer is not full.
"""

from __future__ import annotations

from repro.buffer.frames import Frame
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.storage.page import PageId, PageType

#: Default buffer shares per page category.
DEFAULT_SHARES: dict[PageType, float] = {
    PageType.DIRECTORY: 0.3,
    PageType.DATA: 0.6,
    PageType.OBJECT: 0.1,
}


class DomainSeparation(ReplacementPolicy):
    """Per-category LRU pools with static shares."""

    name = "DOMAIN"

    def __init__(self, shares: dict[PageType, float] | None = None) -> None:
        super().__init__()
        shares = dict(shares) if shares is not None else dict(DEFAULT_SHARES)
        if any(value < 0 for value in shares.values()):
            raise ValueError("shares must be non-negative")
        total = sum(shares.values())
        if total <= 0:
            raise ValueError("at least one share must be positive")
        self._shares = {key: value / total for key, value in shares.items()}
        self._quota: dict[PageType, int] = {}

    def attach(self, buffer: BufferManager) -> None:
        super().attach(buffer)
        capacity = buffer.capacity
        self._quota = {
            page_type: max(1, round(share * capacity))
            for page_type, share in self._shares.items()
        }

    def _domain_frames(self) -> dict[PageType, list[Frame]]:
        domains: dict[PageType, list[Frame]] = {t: [] for t in PageType}
        for frame in self.buffer.frames.values():
            domains[frame.page.page_type].append(frame)
        return domains

    def select_victim(self) -> PageId:
        domains = self._domain_frames()
        # First choice: the domain most over its quota evicts its own LRU
        # victim; this keeps the partition near the configured shares.
        overage = []
        for page_type, frames in domains.items():
            quota = self._quota.get(page_type, 1)
            evictable = [frame for frame in frames if not frame.pinned]
            if evictable and len(frames) > quota:
                overage.append((len(frames) - quota, page_type, evictable))
        if overage:
            overage.sort(key=lambda item: item[0], reverse=True)
            _, _, evictable = overage[0]
            return self.lru_victim(evictable).page_id
        # No domain over quota (small buffers, skewed type mix): global LRU.
        evictable = self._evictable()
        if not evictable:
            raise BufferFullError("all resident pages are pinned")
        return self.lru_victim(evictable).page_id

    def quota_of(self, page_type: PageType) -> int:
        """Configured frame quota of a category (for tests/reports)."""
        return self._quota[page_type]
