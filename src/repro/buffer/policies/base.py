"""The replacement-policy interface.

A policy sees three events — a page was loaded, a resident page was hit, a
frame left the buffer — and answers one question: which resident, unpinned
page should be dropped to make room (:meth:`ReplacementPolicy.select_victim`).

Policies read frame metadata (timestamps, page type/level, entry MBRs)
through the frames the manager exposes; they never touch the disk.  A policy
instance belongs to exactly one buffer manager.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.buffer.frames import Frame
from repro.storage.page import PageId

if TYPE_CHECKING:
    from repro.buffer.manager import BufferManager
    from repro.obs.events import EventSink


def deprecated_keyword(owner: str, old: str, new: str, value):
    """Warn that ``owner``'s keyword/attribute ``old`` is now called ``new``.

    The constructor-keyword shim shared by the policy zoo: policies that
    renamed a keyword during the 1.1 normalisation accept the old spelling
    through this helper, which emits a :class:`DeprecationWarning` naming
    the replacement and returns the value unchanged.
    """
    import warnings

    warnings.warn(
        f"{owner}({old}=...) is deprecated; use {new}=... instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return value


class ReplacementPolicy(abc.ABC):
    """Base class for all page-replacement strategies."""

    #: Short display name used in experiment reports ("LRU", "A", "ASB", ...).
    name: str = "base"

    def __init__(self) -> None:
        self._buffer: "BufferManager | None" = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, buffer: "BufferManager") -> None:
        """Bind the policy to its buffer manager (called once)."""
        if self._buffer is not None and self._buffer is not buffer:
            raise RuntimeError("policy is already attached to another buffer")
        self._buffer = buffer

    @property
    def buffer(self) -> "BufferManager":
        if self._buffer is None:
            raise RuntimeError("policy is not attached to a buffer manager")
        return self._buffer

    @property
    def observer(self) -> "EventSink | None":
        """The buffer's event sink, if any (see :mod:`repro.obs`).

        Policies with decisions of their own (ASB's promotion and
        adaptation) emit through this; ``None`` when tracing is off or the
        policy is unattached, so emission sites cost one check.
        """
        buffer = self._buffer
        return None if buffer is None else buffer.observer

    # ------------------------------------------------------------------
    # Event hooks — default implementations do nothing
    # ------------------------------------------------------------------

    def on_load(self, frame: Frame) -> None:
        """A page was read from disk into ``frame``."""

    def on_hit(self, frame: Frame, correlated: bool) -> None:
        """A resident page was requested again.

        ``correlated`` is true when this access belongs to the same query as
        the previous access to the page (the paper's correlation notion,
        Section 2.2).  Only LRU-K distinguishes the two cases.
        """

    def on_evict(self, frame: Frame) -> None:
        """``frame`` left the buffer (eviction or clear)."""

    def reset(self) -> None:
        """Drop all internal state (buffer was cleared)."""

    # ------------------------------------------------------------------
    # Self-tuning hooks (see :mod:`repro.tuning`)
    # ------------------------------------------------------------------

    def retune(self, **kwargs) -> None:
        """Change tunable parameters of a *live* instance in place.

        The accepted keywords are the registry's ``retunable`` parameters
        (see :func:`repro.buffer.policies.policy_param_space`); resident
        bookkeeping is preserved, so retuning never costs a page.  The
        base implementation accepts no keywords — policies with knobs
        override it.
        """
        if kwargs:
            raise TypeError(
                f"policy {self.name!r} has no retunable parameters; "
                f"got {sorted(kwargs)}"
            )

    def seed_resident(self, frames: list[Frame]) -> None:
        """Rebuild internal bookkeeping for already-resident frames.

        Called once, directly after :meth:`attach`, when this policy takes
        over a running buffer (a live policy hand-off — see
        :meth:`repro.buffer.manager.BufferManager.switch_policy`).  The
        frames arrive oldest-access first; the default replays them
        through :meth:`on_load`, which reconstructs each policy's
        structures as if the pages had been loaded in recency order.
        Timestamps live on the frames themselves, so recency-based
        policies inherit the true access history for free.
        """
        for frame in sorted(frames, key=lambda frame: frame.last_access):
            self.on_load(frame)

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def select_victim(self) -> PageId:
        """Return the resident, unpinned page to drop.

        Raises :class:`~repro.buffer.manager.BufferFullError` when no frame
        is evictable.
        """

    def flush_priority(self, frame: Frame) -> float:
        """Order dirty frames for background write-back (lower = sooner).

        The background flusher (:mod:`repro.wal.manager`) cleans cold
        dirty frames ahead of their eviction so the eviction itself finds
        them clean.  "Cold" is the policy's notion: by default the
        least-recently-used dirty frames flush first, which matches every
        recency-based victim order; policies with a different eviction
        order (MRU, FIFO) override this so the flusher keeps following
        it.  Reading frame metadata only — implementations must not
        mutate policy state, or background flushing would perturb the
        replacement decisions it is meant to serve.
        """
        return float(frame.last_access)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _evictable(self) -> list[Frame]:
        from repro.buffer.manager import BufferFullError

        frames = self.buffer.evictable_frames()
        if not frames:
            raise BufferFullError("all resident pages are pinned")
        return frames

    @staticmethod
    def lru_victim(frames: list[Frame]) -> Frame:
        """The least-recently-used frame of a non-empty list."""
        return min(frames, key=lambda frame: frame.last_access)
