"""The buffer manager.

A :class:`BufferManager` owns a fixed number of frames, serves page
requests, and delegates the victim decision to a replacement policy.  The
division of labour follows the paper:

* the manager implements everything policy-independent — hit/miss
  accounting, the logical clock, query correlation scopes, pinning,
  dirty-page write-back, and clearing the buffer between query sets
  (Section 3: "Before performing a new set of queries, the buffer was
  cleared in order to increase the comparability of the results");
* the policy implements only the replacement decision (Section 2), via the
  hooks defined in :mod:`repro.buffer.policies.base`.

All timestamps are logical (one tick per page request); no wall clock is
involved anywhere, so runs are deterministic and replayable.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.buffer.frames import Frame
from repro.buffer.stats import BufferStats
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

if TYPE_CHECKING:
    from repro.buffer.policies.base import ReplacementPolicy
    from repro.obs.events import EventSink
    from repro.wal.manager import DurabilityManager


class BufferFullError(RuntimeError):
    """Every frame is pinned and a new page must be loaded.

    This is the buffer's *typed backpressure signal*: in-process callers
    catch it and release pins (or retry later); the page service
    (:mod:`repro.server`) translates it into a ``RETRY_AFTER`` response
    instead of letting it kill the connection.  It is raised before any
    state changes, so a failed admission leaves the buffer intact.
    """


class BufferManager:
    """Caches pages of a :class:`SimulatedDisk` in ``capacity`` frames."""

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int,
        policy: "ReplacementPolicy",
        observer: "EventSink | None" = None,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self.policy = policy
        self.frames: dict[PageId, Frame] = {}
        self.stats = BufferStats()
        #: Optional event sink (see :mod:`repro.obs`).  ``None`` means every
        #: emission site reduces to one attribute check — tracing costs
        #: nothing unless someone listens.
        self.observer = observer
        #: Optional durability seam (see :mod:`repro.wal.manager`).  Like
        #: the observer, ``None`` reduces every hook site to one attribute
        #: check, keeping the undurable core bit-identical.
        self.durability = durability
        #: Optional self-tuning tap (see :mod:`repro.tuning`): an object
        #: with ``on_access(manager, frame, hit)``, called after every
        #: served request so ghost caches can shadow the live reference
        #: stream.  ``None`` reduces both tap sites to one attribute
        #: check — tuning disabled costs nothing and stays bit-identical.
        self.tuner: "object | None" = None
        self._clock = 0
        self._query_id = 0
        self._in_query = False
        self._pinned_frames = 0
        policy.attach(self)

    # ------------------------------------------------------------------
    # Logical time and query correlation
    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        """The logical access counter (one tick per request)."""
        return self._clock

    @property
    def current_query(self) -> int:
        """Id of the running query; accesses sharing it are correlated."""
        return self._query_id

    @contextmanager
    def query_scope(self) -> Iterator[int]:
        """Bracket one query: all requests inside are correlated.

        The paper (Section 2.2) treats two page accesses as correlated if
        they belong to the same query; LRU-K folds correlated re-references
        into a single history entry.
        """
        self._query_id += 1
        self._in_query = True
        self.stats.queries += 1
        try:
            yield self._query_id
        finally:
            self._in_query = False

    # ------------------------------------------------------------------
    # Page requests
    # ------------------------------------------------------------------

    def fetch(self, page_id: PageId) -> Page:
        """Request a page; serve it from a frame or load it from disk.

        The three steps — :meth:`begin_request`, :meth:`serve_hit`,
        :meth:`complete_miss` — are exposed separately so that wrappers
        (the concurrent buffer service) can interleave their own logic
        (lock hand-off, miss coalescing) between them while reusing the
        single-threaded core unchanged.
        """
        self.begin_request(page_id)
        frame = self.frames.get(page_id)
        if frame is not None:
            return self.serve_hit(frame)
        self.stats.misses += 1
        page = self.disk.read(page_id)
        return self.complete_miss(page)

    def begin_request(self, page_id: PageId) -> None:
        """Step 1 of a request: advance the clock, count it, emit ``fetch``."""
        self._clock += 1
        self.stats.requests += 1
        if not self._in_query:
            # Requests outside any query scope get a fresh query id each, so
            # they are never correlated with one another.
            self._query_id += 1
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="fetch",
                    clock=self._clock,
                    page_id=page_id,
                    query=self._query_id,
                )
            )
        durability = self.durability
        if durability is not None:
            durability.tick(self)

    def serve_hit(self, frame: Frame) -> Page:
        """Step 2a: the page is resident — account the hit and serve it."""
        self.stats.hits += 1
        correlated = frame.last_query == self._query_id
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="hit",
                    clock=self._clock,
                    page_id=frame.page_id,
                    query=self._query_id,
                    correlated=correlated,
                    level=frame.page.level,
                )
            )
        # The policy hook runs before the timestamp renewal so policies
        # can still see the page's recency as of *before* this access
        # (ASB's LRU-criterion comparison relies on that).
        self.policy.on_hit(frame, correlated)
        frame.touch(self._clock, self._query_id)
        tuner = self.tuner
        if tuner is not None:
            tuner.on_access(self, frame, True)
        return frame.page

    def complete_miss(self, page: Page) -> Page:
        """Step 2b: the page was read from disk — emit ``miss`` and admit it.

        The caller is responsible for incrementing ``stats.misses`` *before*
        the disk read (as :meth:`fetch` does), so a failed read still counts
        as the miss that caused it.
        """
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="miss",
                    clock=self._clock,
                    page_id=page.page_id,
                    query=self._query_id,
                    level=page.level,
                )
            )
        frame = self._admit(page)
        tuner = self.tuner
        if tuner is not None:
            tuner.on_access(self, frame, False)
        return frame.page

    def _admit(self, page: Page) -> Frame:
        """Place a freshly read page into a frame, evicting if needed."""
        if len(self.frames) >= self.capacity:
            self._evict_one()
        frame = Frame(
            page=page,
            loaded_at=self._clock,
            last_access=self._clock,
            last_query=self._query_id,
        )
        self.frames[page.page_id] = frame
        self.policy.on_load(frame)
        return frame

    def _evict_one(self) -> None:
        """Ask the policy for a victim and drop it (writing back if dirty).

        Raises :class:`BufferFullError` when every resident frame is
        pinned — guaranteed here at the manager level, so no policy's
        internal selection (``min()`` over an empty candidate list would
        surface as an opaque :class:`ValueError`) can leak through.
        """
        if self._pinned_frames >= len(self.frames):
            raise BufferFullError(
                f"all {len(self.frames)} resident pages are pinned; "
                "cannot evict to make room"
            )
        victim_id = self.policy.select_victim()
        frame = self.frames.get(victim_id)
        if frame is None:
            raise RuntimeError(
                f"policy selected page {victim_id}, which is not resident"
            )
        if frame.pinned:
            raise RuntimeError(f"policy selected pinned page {victim_id}")
        self._drop(frame)

    def _drop(self, frame: Frame) -> None:
        # The evict event reports whether the eviction *found* the frame
        # dirty; capture that before the write-back cleans the flag.
        was_dirty = frame.dirty
        self.writeback_frame(frame)
        del self.frames[frame.page_id]
        self.stats.evictions += 1
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="evict",
                    clock=self._clock,
                    page_id=frame.page_id,
                    dirty=was_dirty,
                    age=self._clock - frame.loaded_at,
                )
            )
        self.policy.on_evict(frame)

    def writeback_frame(self, frame: Frame, disk: object | None = None) -> None:
        """Write one dirty frame back and mark it clean; no-op when clean.

        The single write-back site shared by evictions, :meth:`flush` and
        the background flusher (which passes its retry-wrapped ``disk``).
        When a durability seam is attached, the WAL invariant is enforced
        here: the page's covering log records are forced durable before
        the data-disk write.
        """
        if not frame.dirty:
            return
        durability = self.durability
        if durability is not None:
            durability.before_writeback(frame.page_id)
        (disk if disk is not None else self.disk).write(frame.page)
        frame.dirty = False
        self.stats.writebacks += 1
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="writeback", clock=self._clock, page_id=frame.page_id
                )
            )

    def install(self, page: Page) -> None:
        """Place a newly allocated page into a frame without a disk read.

        Freshly created pages (index node splits during buffered updates)
        are born in the buffer in a real system — charging a read for them
        would be wrong.  The page enters dirty: it has never been written.
        If the id is already resident (an id reused after :meth:`discard`),
        the frame is replaced.
        """
        self._clock += 1
        existing = self.frames.get(page.page_id)
        if existing is not None:
            self.discard(page.page_id)
        frame = self._admit(page)
        frame.dirty = True
        durability = self.durability
        if durability is not None:
            durability.on_page_update(frame.page)

    def discard(self, page_id: PageId) -> None:
        """Drop a resident page without writing it back.

        Used when a page is *deallocated* (its content is dead, write-back
        would be wasted I/O — and a stale frame under a reused id would
        corrupt the view).  A no-op for non-resident pages.  The dropped
        frame counts as an eviction, matching the ``evict`` event emitted
        below — event-stream replays and :class:`BufferStats` must agree.
        """
        frame = self.frames.get(page_id)
        if frame is None:
            return
        if frame.pinned:
            raise RuntimeError(f"cannot discard pinned page {page_id}")
        del self.frames[page_id]
        self.stats.evictions += 1
        if self.observer is not None:
            self.observer.emit(
                BufferEvent(
                    kind="evict",
                    clock=self._clock,
                    page_id=page_id,
                    dirty=frame.dirty,
                    age=self._clock - frame.loaded_at,
                )
            )
        self.policy.on_evict(frame)

    # ------------------------------------------------------------------
    # Pinning and dirtying
    # ------------------------------------------------------------------

    @property
    def pinned_count(self) -> int:
        """Number of resident frames currently holding at least one pin."""
        return self._pinned_frames

    def pin(self, page_id: PageId) -> None:
        """Protect a resident page from eviction (e.g. R-tree root pinning)."""
        frame = self._frame_or_raise(page_id)
        frame.pin_count += 1
        if frame.pin_count == 1:
            self._pinned_frames += 1

    def fetch_pinned(self, page_id: PageId) -> Page:
        """Fetch a page and pin it in one step (service hook).

        The page-service PIN operation needs "make resident, then pin"
        as one call; sequentially that is just fetch + pin.  The caller
        owns the pin and must :meth:`unpin` it later.
        """
        page = self.fetch(page_id)
        self.pin(page_id)
        return page

    @contextmanager
    def pinned(self, page_id: PageId) -> Iterator[Page]:
        """RAII pin guard: fetch the page and keep it pinned in the block.

        ``with buffer.pinned(page_id) as page:`` guarantees the page stays
        resident for the duration of the block and that the pin is released
        on exit — including when the block raises.  Guards nest: each entry
        adds one pin, each exit removes exactly one.
        """
        page = self.fetch(page_id)
        self.pin(page_id)
        try:
            yield page
        finally:
            # The frame may have left the buffer through clear(force=True)
            # or a force-unpin; releasing a pin that no longer exists must
            # not mask the block's own exception with a bookkeeping error.
            frame = self.frames.get(page_id)
            if frame is not None and frame.pin_count > 0:
                self.unpin(page_id)

    def unpin(self, page_id: PageId) -> None:
        frame = self._frame_or_raise(page_id)
        if frame.pin_count == 0:
            raise ValueError(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        if frame.pin_count == 0:
            self._pinned_frames -= 1

    def mark_dirty(self, page_id: PageId) -> None:
        """Flag a resident page as modified; it is written back on eviction."""
        frame = self._frame_or_raise(page_id)
        frame.dirty = True
        frame.invalidate_criteria()
        durability = self.durability
        if durability is not None:
            durability.on_page_update(frame.page)

    def _frame_or_raise(self, page_id: PageId) -> Frame:
        frame = self.frames.get(page_id)
        if frame is None:
            raise KeyError(f"page {page_id} is not resident")
        return frame

    # ------------------------------------------------------------------
    # Live policy hand-off (see :mod:`repro.tuning`)
    # ------------------------------------------------------------------

    def switch_policy(self, policy: "ReplacementPolicy") -> "ReplacementPolicy":
        """Hand the buffer to a fresh policy without evicting a page.

        The safe hand-off protocol of the tuning controller: the incoming
        policy attaches, rebuilds its bookkeeping from the resident frames
        (:meth:`~repro.buffer.policies.base.ReplacementPolicy.seed_resident`
        replays them oldest-access first), and only then becomes the
        active policy — no frame is dropped, copied or unpinned, and the
        hit/miss accounting is untouched, so ``hits + misses ==
        requests`` holds across the switch.  Returns the replaced policy
        (now detached from duty but still bound to this buffer for
        introspection).
        """
        old = self.policy
        if policy is old:
            return old
        policy.attach(self)
        policy.seed_resident(list(self.frames.values()))
        self.policy = policy
        return old

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Write all dirty frames back to disk without evicting them."""
        for frame in self.frames.values():
            self.writeback_frame(frame)

    def drain(self) -> None:
        """Graceful-shutdown hook: flush everything through the WAL path.

        With a durability seam attached this takes a checkpoint (all
        dirty frames written back under the WAL invariant, durable
        CHECKPOINT record) and syncs the log; without one it is a plain
        :meth:`flush`.
        """
        durability = self.durability
        if durability is not None:
            durability.checkpoint(self)
            durability.sync()
        else:
            self.flush()

    def clear(self, force: bool = False) -> None:
        """Empty the buffer (flushing dirty pages) and reset the policy.

        Statistics are reset too: the paper clears the buffer before every
        query set so that sets can be compared in isolation.

        A clear while frames are pinned would leave the pin holders with
        dangling references to pages that are no longer resident, so it
        raises :class:`BufferFullError` *before* touching any state.  Pass
        ``force=True`` to override: the pins are dropped with a warning and
        the clear proceeds — only safe when the caller knows every pin
        holder is gone (e.g. tearing down an experiment).
        """
        if self._pinned_frames > 0:
            if not force:
                raise BufferFullError(
                    f"clear() with {self._pinned_frames} pinned frame(s) "
                    "resident would dangle their pins; unpin first or pass "
                    "force=True"
                )
            import warnings

            warnings.warn(
                f"clear(force=True) dropped {self._pinned_frames} pinned "
                "frame(s); any outstanding pin guards now reference "
                "non-resident pages",
                RuntimeWarning,
                stacklevel=2,
            )
            for frame in self.frames.values():
                frame.pin_count = 0
        self.flush()
        for frame in list(self.frames.values()):
            self.policy.on_evict(frame)
        self.frames.clear()
        self._pinned_frames = 0
        self.policy.reset()
        self.stats.reset()

    def contains(self, page_id: PageId) -> bool:
        return page_id in self.frames

    def __len__(self) -> int:
        return len(self.frames)

    def resident_ids(self) -> list[PageId]:
        return sorted(self.frames)

    def evictable_frames(self) -> list[Frame]:
        """All unpinned frames — the victim universe offered to policies."""
        return [frame for frame in self.frames.values() if not frame.pinned]


# Imported last: repro.obs depends on this module for its replay driver, so
# a top-of-file import would be circular.  By this point every name the obs
# package needs is defined, and the import succeeds from either direction.
from repro.obs.events import BufferEvent  # noqa: E402
