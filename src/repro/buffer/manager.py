"""The buffer manager.

A :class:`BufferManager` owns a fixed number of frames, serves page
requests, and delegates the victim decision to a replacement policy.  The
division of labour follows the paper:

* the manager implements everything policy-independent — hit/miss
  accounting, the logical clock, query correlation scopes, pinning,
  dirty-page write-back, and clearing the buffer between query sets
  (Section 3: "Before performing a new set of queries, the buffer was
  cleared in order to increase the comparability of the results");
* the policy implements only the replacement decision (Section 2), via the
  hooks defined in :mod:`repro.buffer.policies.base`.

All timestamps are logical (one tick per page request); no wall clock is
involved anywhere, so runs are deterministic and replayable.

Hot path.  Resident frames live in a :class:`~repro.buffer.frames.FrameTable`
(slot pool + intrusive recency chain), and ``fetch`` is *rebound per
instance*: while no observer, durability seam or tuning tap is attached and
the active policy inherits the base no-op ``on_hit``, requests run through
:meth:`_fetch_fast` — one dict probe, inline accounting, O(1) chain surgery,
zero hook calls.  Attaching any seam (they are properties) swaps the plain
decomposed path back in, so the observable behaviour is bit-identical either
way; the seams just stop being free to *check* and start being used.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.stats import BufferStats
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

if TYPE_CHECKING:
    from repro.buffer.policies.base import ReplacementPolicy
    from repro.obs.events import EventSink
    from repro.wal.manager import DurabilityManager


class BufferFullError(RuntimeError):
    """Every frame is pinned and a new page must be loaded.

    This is the buffer's *typed backpressure signal*: in-process callers
    catch it and release pins (or retry later); the page service
    (:mod:`repro.server`) translates it into a ``RETRY_AFTER`` response
    instead of letting it kill the connection.  It is raised before any
    state changes, so a failed admission leaves the buffer intact.
    """


class BufferManager:
    """Caches pages of a :class:`SimulatedDisk` in ``capacity`` frames."""

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int,
        policy: "ReplacementPolicy",
        observer: "EventSink | None" = None,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self.frames: FrameTable = FrameTable()
        self._stats = BufferStats()
        #: Deferred fast-path hits (see :meth:`_flush_log`): frames in
        #: access order, possibly repeating.  Only the seam-free, hook-less
        #: fast path appends here; everything observable is materialised
        #: before any reader can look.
        self._hit_log: list[Frame] = []
        self._policy = policy
        self._observer = observer
        self._durability = durability
        self._tuner: "object | None" = None
        self._hit_hook = None
        self._clock = 0
        self._query_id = 0
        self._in_query = False
        self._pinned_frames = 0
        policy.attach(self)
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Seams: every one is a property so that attaching or detaching it
    # re-decides whether the inlined fast path may serve requests.
    # ------------------------------------------------------------------

    @property
    def policy(self) -> "ReplacementPolicy":
        """The active replacement policy (swap via :meth:`switch_policy`)."""
        return self._policy

    @policy.setter
    def policy(self, policy: "ReplacementPolicy") -> None:
        self._policy = policy
        self._refresh_fast_path()

    @property
    def observer(self) -> "EventSink | None":
        """Optional event sink (see :mod:`repro.obs`).  ``None`` means every
        emission site reduces to one attribute check — tracing costs
        nothing unless someone listens."""
        return self._observer

    @observer.setter
    def observer(self, sink: "EventSink | None") -> None:
        self._observer = sink
        self._refresh_fast_path()

    @property
    def durability(self) -> "DurabilityManager | None":
        """Optional durability seam (see :mod:`repro.wal.manager`).  Like
        the observer, ``None`` reduces every hook site to one attribute
        check, keeping the undurable core bit-identical."""
        return self._durability

    @durability.setter
    def durability(self, durability: "DurabilityManager | None") -> None:
        self._durability = durability
        self._refresh_fast_path()

    @property
    def tuner(self) -> "object | None":
        """Optional self-tuning tap (see :mod:`repro.tuning`): an object
        with ``on_access(manager, frame, hit)``, called after every served
        request so ghost caches can shadow the live reference stream.
        ``None`` costs nothing and stays bit-identical."""
        return self._tuner

    @tuner.setter
    def tuner(self, tuner: "object | None") -> None:
        self._tuner = tuner
        self._refresh_fast_path()

    def _refresh_fast_path(self) -> None:
        """Rebind ``fetch`` to an inlined fast path iff no seam is live.

        The fast path assumes: no observer to emit to, no durability tick,
        no tuning tap.  The policy's ``on_hit`` is *elided* (not called at
        all) when the policy inherits the base no-op — checked by identity
        against :class:`~repro.buffer.policies.base.ReplacementPolicy`, so
        a policy that overrides the hook always receives it.

        The path is built as a closure so the frame table, its bound
        ``get``, the stats object and the hook are free variables instead
        of per-request attribute lookups.  All of them are stable for the
        life of the manager (``clear()`` resets them in place); anything
        that can change — policy, seams — rebuilds the closure through the
        property setters.
        """
        from repro.buffer.policies.base import ReplacementPolicy

        table = self.frames
        if table.pending or table.log:
            # Retire every deferral under the *old* regime before the
            # rules change.
            table.flush_hook()
        policy = self._policy
        if type(policy).on_hit is ReplacementPolicy.on_hit:
            hook = None
        else:
            hook = policy.on_hit
        self._hit_hook = hook
        if (
            self._observer is not None
            or self._durability is not None
            or self._tuner is not None
        ):
            # Fall back to the class-level decomposed fetch; the only
            # deferral left is the chain-only splice from serve_hit.
            table.log = ()
            table.flush_hook = table._flush_pending
            self.__dict__.pop("fetch", None)
            return

        mgr = self
        get = table.get
        stats = self._stats
        miss = self._fetch_fast_miss
        length = len
        limit = table.PENDING_LIMIT

        if hook is None:
            # Fully deferred variant: a hit outside a query scope is one
            # probe and one list append; clock, stats, stamps and the
            # chain splice are materialised in batch by _flush_log before
            # anything can read them.  In-scope hits stay eager because
            # their stamp must equal the live query id.
            log = self._hit_log
            log_append = log.append
            flush_log = self._flush_log
            splice = table._splice_to_tail

            def fetch_fast(page_id: PageId) -> Page:
                """Seam-free ``fetch``, policy hook elided, hit deferred."""
                frame = get(page_id)
                if frame is None:
                    return miss(page_id)
                if mgr._in_query:
                    if log:
                        flush_log()
                    mgr._clock = clock = mgr._clock + 1
                    stats.requests += 1
                    stats.hits += 1
                    frame.last_access = clock
                    frame.last_query = mgr._query_id
                    frame.access_count += 1
                    splice(frame)
                    return frame.page
                frame.access_count += 1
                log_append(frame)
                if length(log) >= limit:
                    flush_log()
                return frame.page

            table.log = log
            table.flush_hook = flush_log
        else:
            # Hook variant: everything is eager except the chain splice,
            # which is a deferred append (see FrameTable.move_to_tail).
            # Outside a query scope the query counter advances per request
            # exactly like begin_request does — hook policies (LRU-K) read
            # it directly.
            pending = table.pending
            pend = pending.append
            flush = table._flush_pending

            def fetch_fast(page_id: PageId) -> Page:
                """Seam-free ``fetch`` with the policy's ``on_hit``.

                The hook runs *before* the timestamp renewal and the
                recency append — ASB reads the pre-renewal recency (its
                chain walks enter through the flushing ``head`` property,
                so deferred renewals of earlier requests are applied, and
                this request's own renewal is not yet pending).
                """
                frame = get(page_id)
                if frame is None:
                    return miss(page_id)
                mgr._clock = clock = mgr._clock + 1
                stats.requests += 1
                stats.hits += 1
                if mgr._in_query:
                    query_id = mgr._query_id
                else:
                    mgr._query_id = query_id = mgr._query_id + 1
                hook(frame, frame.last_query == query_id)
                frame.last_access = clock
                frame.last_query = query_id
                frame.access_count += 1
                pend(frame)
                if length(pending) >= limit:
                    flush()
                return frame.page

            table.log = ()
            table.flush_hook = flush

        self.fetch = fetch_fast  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Logical time and query correlation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> BufferStats:
        """Hit/miss accounting; reading it materialises deferred hits."""
        if self._hit_log:
            self._flush_log()
        return self._stats

    @property
    def clock(self) -> int:
        """The logical access counter (one tick per request)."""
        if self._hit_log:
            self._flush_log()
        return self._clock

    @property
    def current_query(self) -> int:
        """Id of the running query; accesses sharing it are correlated."""
        return self._query_id

    def _flush_log(self) -> None:
        """Materialise the deferred fast-path hits in one batch.

        The hook-less fast path logs a hit as a single list append; this
        replay applies everything those hits deferred — clock ticks,
        request/hit counts, frame stamps, recency splices — so that *no
        reader can tell* the work was batched:

        * the clock advances by exactly the number of logged hits;
        * each frame's final ``last_access`` is unique, falls inside the
          logged tick range, and preserves the true last-access order
          across all frames (logged or not) — every consumer of
          ``last_access`` orders or tie-breaks by it, none depends on the
          exact tick, which may differ from the eager assignment when a
          frame was hit more than once;
        * ``last_query`` gets the negated stamp: negative and unique, it
          can never equal a real (positive) query id, which is all the
          correlation checks observe — exactly the eager fast path's rule.

        ``access_count`` is *not* deferred — the fast path increments it
        inline (one slot write), so the replay is a single C pass over the
        log plus work per *unique* frame.

        Chain-only renewals in ``frames.pending`` (decomposed drivers,
        in-scope eager hits) predate the logged hits and are spliced
        first.
        """
        table = self.frames
        if table.pending:
            table._flush_pending()
        log = self._hit_log
        count = len(log)
        if not count:
            return
        stats = self._stats
        stats.requests += count
        stats.hits += count
        self._clock = stamp = self._clock + count
        newest_first = dict.fromkeys(reversed(log))
        del log[:]
        ordered: list[Frame] = []
        append = ordered.append
        for frame in newest_first:
            frame.last_access = stamp
            frame.last_query = -stamp
            stamp -= 1
            append(frame)
        splice = table._splice_to_tail
        for frame in reversed(ordered):
            splice(frame)

    @contextmanager
    def query_scope(self) -> Iterator[int]:
        """Bracket one query: all requests inside are correlated.

        The paper (Section 2.2) treats two page accesses as correlated if
        they belong to the same query; LRU-K folds correlated re-references
        into a single history entry.
        """
        self._query_id += 1
        self._in_query = True
        self.stats.queries += 1
        try:
            yield self._query_id
        finally:
            self._in_query = False

    # ------------------------------------------------------------------
    # Page requests
    # ------------------------------------------------------------------

    def fetch(self, page_id: PageId) -> Page:
        """Request a page; serve it from a frame or load it from disk.

        The three steps — :meth:`begin_request`, :meth:`serve_hit`,
        :meth:`complete_miss` — are exposed separately so that wrappers
        (the concurrent buffer service) can interleave their own logic
        (lock hand-off, miss coalescing) between them while reusing the
        single-threaded core unchanged.  When no seam is attached the
        instance serves requests through :meth:`_fetch_fast` instead,
        with bit-identical results.
        """
        self.begin_request(page_id)
        frame = self.frames.get(page_id)
        if frame is not None:
            return self.serve_hit(frame)
        self.stats.misses += 1
        page = self.disk.read(page_id)
        return self.complete_miss(page)

    def _fetch_fast_miss(self, page_id: PageId) -> Page:
        # No state was touched yet for this request: run the classic miss
        # sequence (the seams are known-None, so it stays cheap).
        self.begin_request(page_id)
        self.stats.misses += 1
        page = self.disk.read(page_id)
        return self.complete_miss(page)

    def begin_request(self, page_id: PageId) -> None:
        """Step 1 of a request: advance the clock, count it, emit ``fetch``."""
        if self._hit_log:
            # Deferred fast-path hits precede this request; materialise
            # them so this request's clock tick lands after theirs.
            self._flush_log()
        self._clock += 1
        self._stats.requests += 1
        if not self._in_query:
            # Requests outside any query scope get a fresh query id each, so
            # they are never correlated with one another.
            self._query_id += 1
        observer = self._observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="fetch",
                    clock=self._clock,
                    page_id=page_id,
                    query=self._query_id,
                )
            )
        durability = self._durability
        if durability is not None:
            durability.tick(self)

    def serve_hit(self, frame: Frame) -> Page:
        """Step 2a: the page is resident — account the hit and serve it."""
        self.stats.hits += 1
        correlated = frame.last_query == self._query_id
        observer = self._observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="hit",
                    clock=self._clock,
                    page_id=frame.page_id,
                    query=self._query_id,
                    correlated=correlated,
                    level=frame.page.level,
                )
            )
        # The policy hook runs before the timestamp renewal so policies
        # can still see the page's recency as of *before* this access
        # (ASB's LRU-criterion comparison relies on that).
        self._policy.on_hit(frame, correlated)
        frame.touch(self._clock, self._query_id)
        self.frames.move_to_tail(frame)
        tuner = self._tuner
        if tuner is not None:
            tuner.on_access(self, frame, True)
        return frame.page

    def complete_miss(self, page: Page) -> Page:
        """Step 2b: the page was read from disk — emit ``miss`` and admit it.

        The caller is responsible for incrementing ``stats.misses`` *before*
        the disk read (as :meth:`fetch` does), so a failed read still counts
        as the miss that caused it.
        """
        observer = self._observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="miss",
                    clock=self._clock,
                    page_id=page.page_id,
                    query=self._query_id,
                    level=page.level,
                )
            )
        frame = self._admit(page)
        tuner = self._tuner
        if tuner is not None:
            tuner.on_access(self, frame, False)
        return frame.page

    def _admit(self, page: Page) -> Frame:
        """Place a freshly read page into a frame, evicting if needed."""
        if len(self.frames) >= self.capacity:
            self._evict_one()
        frame = self.frames.admit(page, self._clock, self._query_id)
        self._policy.on_load(frame)
        return frame

    def _evict_one(self) -> None:
        """Ask the policy for a victim and drop it (writing back if dirty).

        Raises :class:`BufferFullError` when every resident frame is
        pinned — guaranteed here at the manager level, so no policy's
        internal selection (``min()`` over an empty candidate list would
        surface as an opaque :class:`ValueError`) can leak through.
        """
        if self._pinned_frames >= len(self.frames):
            raise BufferFullError(
                f"all {len(self.frames)} resident pages are pinned; "
                "cannot evict to make room"
            )
        victim_id = self._policy.select_victim()
        frame = self.frames.get(victim_id)
        if frame is None:
            raise RuntimeError(
                f"policy selected page {victim_id}, which is not resident"
            )
        if frame.pinned:
            raise RuntimeError(f"policy selected pinned page {victim_id}")
        self._drop(frame)

    def _drop(self, frame: Frame) -> None:
        # The evict event reports whether the eviction *found* the frame
        # dirty; capture that before the write-back cleans the flag.
        was_dirty = frame.dirty
        self.writeback_frame(frame)
        self.frames.remove(frame.page_id)
        self.stats.evictions += 1
        observer = self._observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="evict",
                    clock=self._clock,
                    page_id=frame.page_id,
                    dirty=was_dirty,
                    age=self._clock - frame.loaded_at,
                )
            )
        self._policy.on_evict(frame)

    def writeback_frame(self, frame: Frame, disk: object | None = None) -> None:
        """Write one dirty frame back and mark it clean; no-op when clean.

        The single write-back site shared by evictions, :meth:`flush` and
        the background flusher (which passes its retry-wrapped ``disk``).
        When a durability seam is attached, the WAL invariant is enforced
        here: the page's covering log records are forced durable before
        the data-disk write.
        """
        if not frame.dirty:
            return
        durability = self._durability
        if durability is not None:
            durability.before_writeback(frame.page_id)
        (disk if disk is not None else self.disk).write(frame.page)
        frame.dirty = False
        self.stats.writebacks += 1
        observer = self._observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="writeback", clock=self._clock, page_id=frame.page_id
                )
            )

    def install(self, page: Page) -> None:
        """Place a newly allocated page into a frame without a disk read.

        Freshly created pages (index node splits during buffered updates)
        are born in the buffer in a real system — charging a read for them
        would be wrong.  The page enters dirty: it has never been written.
        If the id is already resident (an id reused after :meth:`discard`),
        the frame is replaced.
        """
        if self._hit_log:
            self._flush_log()
        self._clock += 1
        existing = self.frames.get(page.page_id)
        if existing is not None:
            self.discard(page.page_id)
        frame = self._admit(page)
        frame.dirty = True
        durability = self._durability
        if durability is not None:
            durability.on_page_update(frame.page)

    def discard(self, page_id: PageId) -> None:
        """Drop a resident page without writing it back.

        Used when a page is *deallocated* (its content is dead, write-back
        would be wasted I/O — and a stale frame under a reused id would
        corrupt the view).  A no-op for non-resident pages.  The dropped
        frame counts as an eviction, matching the ``evict`` event emitted
        below — event-stream replays and :class:`BufferStats` must agree.
        """
        frame = self.frames.get(page_id)
        if frame is None:
            return
        if frame.pinned:
            raise RuntimeError(f"cannot discard pinned page {page_id}")
        self.frames.remove(page_id)
        self.stats.evictions += 1
        if self._observer is not None:
            self._observer.emit(
                BufferEvent(
                    kind="evict",
                    clock=self._clock,
                    page_id=page_id,
                    dirty=frame.dirty,
                    age=self._clock - frame.loaded_at,
                )
            )
        self._policy.on_evict(frame)

    # ------------------------------------------------------------------
    # Pinning and dirtying
    # ------------------------------------------------------------------

    @property
    def pinned_count(self) -> int:
        """Number of resident frames currently holding at least one pin."""
        return self._pinned_frames

    def pin(self, page_id: PageId) -> None:
        """Protect a resident page from eviction (e.g. R-tree root pinning)."""
        frame = self._frame_or_raise(page_id)
        frame.pin_count += 1
        if frame.pin_count == 1:
            self._pinned_frames += 1

    def fetch_pinned(self, page_id: PageId) -> Page:
        """Fetch a page and pin it in one step (service hook).

        The page-service PIN operation needs "make resident, then pin"
        as one call; sequentially that is just fetch + pin.  The caller
        owns the pin and must :meth:`unpin` it later.
        """
        page = self.fetch(page_id)
        self.pin(page_id)
        return page

    @contextmanager
    def pinned(self, page_id: PageId) -> Iterator[Page]:
        """RAII pin guard: fetch the page and keep it pinned in the block.

        ``with buffer.pinned(page_id) as page:`` guarantees the page stays
        resident for the duration of the block and that the pin is released
        on exit — including when the block raises.  Guards nest: each entry
        adds one pin, each exit removes exactly one.
        """
        page = self.fetch(page_id)
        self.pin(page_id)
        try:
            yield page
        finally:
            # The frame may have left the buffer through clear(force=True)
            # or a force-unpin; releasing a pin that no longer exists must
            # not mask the block's own exception with a bookkeeping error.
            frame = self.frames.get(page_id)
            if frame is not None and frame.pin_count > 0:
                self.unpin(page_id)

    def unpin(self, page_id: PageId) -> None:
        frame = self._frame_or_raise(page_id)
        if frame.pin_count == 0:
            raise ValueError(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        if frame.pin_count == 0:
            self._pinned_frames -= 1

    def mark_dirty(self, page_id: PageId) -> None:
        """Flag a resident page as modified; it is written back on eviction."""
        frame = self._frame_or_raise(page_id)
        frame.dirty = True
        frame.invalidate_criteria()
        durability = self._durability
        if durability is not None:
            durability.on_page_update(frame.page)

    def _frame_or_raise(self, page_id: PageId) -> Frame:
        frame = self.frames.get(page_id)
        if frame is None:
            raise KeyError(f"page {page_id} is not resident")
        return frame

    # ------------------------------------------------------------------
    # Live policy hand-off (see :mod:`repro.tuning`)
    # ------------------------------------------------------------------

    def switch_policy(self, policy: "ReplacementPolicy") -> "ReplacementPolicy":
        """Hand the buffer to a fresh policy without evicting a page.

        The safe hand-off protocol of the tuning controller: the incoming
        policy attaches, rebuilds its bookkeeping from the resident frames
        (:meth:`~repro.buffer.policies.base.ReplacementPolicy.seed_resident`
        replays them oldest-access first), and only then becomes the
        active policy — no frame is dropped, copied or unpinned, and the
        hit/miss accounting is untouched, so ``hits + misses ==
        requests`` holds across the switch.  Returns the replaced policy
        (now detached from duty but still bound to this buffer for
        introspection).

        The resident frames are handed over straight off the recency
        chain, which is already ordered oldest-access first — the
        migration costs O(1) per resident page, no sorting.
        """
        old = self._policy
        if policy is old:
            return old
        policy.attach(self)
        policy.seed_resident(list(self.frames.iter_recency()))
        self.policy = policy
        return old

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Write all dirty frames back to disk without evicting them."""
        for frame in self.frames.values():
            self.writeback_frame(frame)

    def drain(self) -> None:
        """Graceful-shutdown hook: flush everything through the WAL path.

        With a durability seam attached this takes a checkpoint (all
        dirty frames written back under the WAL invariant, durable
        CHECKPOINT record) and syncs the log; without one it is a plain
        :meth:`flush`.
        """
        durability = self._durability
        if durability is not None:
            durability.checkpoint(self)
            durability.sync()
        else:
            self.flush()

    def clear(self, force: bool = False) -> None:
        """Empty the buffer (flushing dirty pages) and reset the policy.

        Statistics are reset too: the paper clears the buffer before every
        query set so that sets can be compared in isolation.

        A clear while frames are pinned would leave the pin holders with
        dangling references to pages that are no longer resident, so it
        raises :class:`BufferFullError` *before* touching any state.  Pass
        ``force=True`` to override: the pins are dropped with a warning and
        the clear proceeds — only safe when the caller knows every pin
        holder is gone (e.g. tearing down an experiment).
        """
        if self._hit_log:
            # The deferred hits happened; their clock ticks must survive
            # the clear (which resets stats, not the clock).
            self._flush_log()
        if self._pinned_frames > 0:
            if not force:
                raise BufferFullError(
                    f"clear() with {self._pinned_frames} pinned frame(s) "
                    "resident would dangle their pins; unpin first or pass "
                    "force=True"
                )
            import warnings

            warnings.warn(
                f"clear(force=True) dropped {self._pinned_frames} pinned "
                "frame(s); any outstanding pin guards now reference "
                "non-resident pages",
                RuntimeWarning,
                stacklevel=2,
            )
            for frame in self.frames.values():
                frame.pin_count = 0
        self.flush()
        for frame in list(self.frames.values()):
            self._policy.on_evict(frame)
        self.frames.clear()
        self._pinned_frames = 0
        self._policy.reset()
        self.stats.reset()

    def contains(self, page_id: PageId) -> bool:
        return page_id in self.frames

    def __len__(self) -> int:
        return len(self.frames)

    def resident_ids(self) -> list[PageId]:
        return sorted(self.frames)

    def evictable_frames(self) -> list[Frame]:
        """All unpinned frames — the victim universe offered to policies."""
        return [frame for frame in self.frames.values() if not frame.pinned]


# Imported last: repro.obs depends on this module for its replay driver, so
# a top-of-file import would be circular.  By this point every name the obs
# package needs is defined, and the import succeeds from either direction.
from repro.obs.events import BufferEvent  # noqa: E402
