"""Recorded event traces: JSON-lines persistence and deterministic replay.

A :class:`RecordedTrace` is a self-contained run record: the policy name
and capacity, a catalogue of the page metadata the policies consume (type,
level, entry MBRs), the full event stream, and the final statistics
snapshot.  Because every buffer timestamp is logical, re-running the
trace's request stream (its ``fetch`` events) against the same policy
class reproduces the event stream and the statistics exactly — a recorded
trace is therefore both a debugging artefact and a golden regression
fixture.

File format (JSON lines): the first line is a header object carrying
``format``/``version``, policy, capacity, stats and the catalogue; each
following line is one event (``None`` fields omitted).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.buffer.manager import BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.geometry.rect import Rect
from repro.obs.events import BufferEvent, TraceRecorder
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageId, PageType

FORMAT_NAME = "repro-obs-trace"
FORMAT_VERSION = 1

#: page_id -> (page_type value, level, [entry mbr tuples]) — the same
#: catalogue shape as :class:`repro.experiments.trace.AccessTrace`.
Catalogue = dict[PageId, tuple[str, int, list[tuple[float, float, float, float]]]]


def catalogue_page(catalogue: Catalogue, page: Page) -> None:
    """Add a page's policy-visible metadata to a catalogue (idempotent)."""
    if page.page_id not in catalogue:
        catalogue[page.page_id] = (
            page.page_type.value,
            page.level,
            [entry.mbr.as_tuple() for entry in page.entries],
        )


def disk_from_catalogue(catalogue: Catalogue) -> SimulatedDisk:
    """A fresh simulated disk holding reconstructions of catalogued pages.

    Entry payloads are synthetic (the entry index); the policies only read
    MBRs, types and levels, which are reproduced faithfully.
    """
    disk = SimulatedDisk()
    for page_id, (type_value, level, mbrs) in catalogue.items():
        page = Page(page_id=page_id, page_type=PageType(type_value), level=level)
        for index, mbr in enumerate(mbrs):
            page.entries.append(PageEntry(mbr=Rect(*mbr), payload=index))
        disk.store(page)
    return disk


def drive_requests(
    buffer: BufferManager, requests: Iterable[tuple[PageId, int]]
) -> None:
    """Fetch a ``(page_id, query)`` stream, bracketing query scopes.

    Consecutive references sharing a query index run inside one query
    scope, so correlation semantics match the live run that produced the
    stream.
    """
    current_query: int | None = None
    scope = None
    for page_id, query in requests:
        if query != current_query:
            if scope is not None:
                scope.__exit__(None, None, None)
            scope = buffer.query_scope()
            scope.__enter__()
            current_query = query
        buffer.fetch(page_id)
    if scope is not None:
        scope.__exit__(None, None, None)


@dataclass(slots=True)
class RecordedTrace:
    """An event stream plus everything needed to replay it."""

    policy: str
    capacity: int
    catalogue: Catalogue = field(default_factory=dict)
    events: list[BufferEvent] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def requests(self) -> list[tuple[PageId, int]]:
        """The request stream: ``(page_id, query)`` per ``fetch`` event."""
        return [
            (event.page_id, event.query)
            for event in self.events
            if event.kind == "fetch"
        ]

    def events_of(self, *kinds: str) -> list[BufferEvent]:
        wanted = frozenset(kinds)
        return [event for event in self.events if event.kind in wanted]

    # ------------------------------------------------------------------
    # Persistence (JSON lines)
    # ------------------------------------------------------------------

    def header(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "policy": self.policy,
            "capacity": self.capacity,
            "stats": self.stats,
            "catalogue": {
                str(page_id): [type_value, level, [list(mbr) for mbr in mbrs]]
                for page_id, (type_value, level, mbrs) in self.catalogue.items()
            },
        }

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header())]
        lines.extend(json.dumps(event.to_dict()) for event in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "RecordedTrace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace file")
        header = json.loads(lines[0])
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported trace version {header.get('version')!r}")
        trace = cls(
            policy=header["policy"],
            capacity=header["capacity"],
            stats=header.get("stats", {}),
        )
        trace.catalogue = {
            int(page_id): (
                type_value,
                level,
                [tuple(mbr) for mbr in mbrs],
            )
            for page_id, (type_value, level, mbrs) in header["catalogue"].items()
        }
        trace.events = [
            BufferEvent.from_dict(json.loads(line)) for line in lines[1:]
        ]
        return trace

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "RecordedTrace":
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Recording and replay
# ----------------------------------------------------------------------


def record_run(
    requests: Sequence[tuple[PageId, int]],
    disk: SimulatedDisk,
    policy: ReplacementPolicy,
    capacity: int,
) -> RecordedTrace:
    """Run a request stream with tracing on; return the recorded trace.

    The referenced pages are catalogued from ``disk`` (via ``peek``, so the
    source disk's access statistics are untouched) and the run executes on
    a reconstruction — recording a trace never perturbs the system under
    observation.
    """
    requests = list(requests)
    catalogue: Catalogue = {}
    for page_id, _ in requests:
        if page_id not in catalogue:
            catalogue_page(catalogue, disk.peek(page_id))
    recorder = TraceRecorder()
    buffer = BufferManager(disk_from_catalogue(catalogue), capacity, policy)
    buffer.observer = recorder
    drive_requests(buffer, requests)
    return RecordedTrace(
        policy=policy.name,
        capacity=capacity,
        catalogue=catalogue,
        events=recorder.events,
        stats=buffer.stats.snapshot(),
    )


def replay_recorded(
    trace: RecordedTrace,
    policy: ReplacementPolicy,
    capacity: int | None = None,
) -> RecordedTrace:
    """Re-run a recorded trace's request stream against ``policy``.

    Returns a fresh :class:`RecordedTrace` over the same catalogue.  With
    the same policy class and capacity as the recording, the returned
    events and stats are identical to the original — the determinism
    contract the golden-trace tests assert.  With a different policy or
    capacity this is a counterfactual replay: same requests, different
    decisions.
    """
    if capacity is None:
        capacity = trace.capacity
    recorder = TraceRecorder()
    buffer = BufferManager(disk_from_catalogue(trace.catalogue), capacity, policy)
    buffer.observer = recorder
    drive_requests(buffer, trace.requests())
    return RecordedTrace(
        policy=policy.name,
        capacity=capacity,
        catalogue=dict(trace.catalogue),
        events=recorder.events,
        stats=buffer.stats.snapshot(),
    )
