"""Buffer events and the observer protocol.

An event is one decision point in the buffer's life, stamped with the
buffer's logical clock.  The seven kinds and their field usage:

==========  ==========================================================
fetch       a page was requested (``page_id``, ``query``)
hit         the request was served from a frame (``correlated``,
            ``level`` of the resident page)
miss        the request went to disk (``level`` of the loaded page)
evict       a frame left the buffer (``dirty`` at drop time, ``age`` =
            clock - loaded_at)
writeback   a dirty page was written to disk (eviction or flush)
promote     ASB moved an overflow page back to the main part
adapt       ASB re-tuned its candidate set (``size`` = new size,
            ``delta`` = signed step, 0 when the criteria tied)
wal_append  a record entered the write-ahead log (``lsn``, ``page_id``)
wal_fsync   the durable log tail advanced (``lsn`` = flushed LSN,
            ``size`` = records made durable by this fsync)
bg_flush    the background flusher cleaned dirty frames without
            evicting them (``size`` = frames written back)
checkpoint  a checkpoint record became durable (``lsn``)
recover     crash recovery finished (``lsn`` = last replayed LSN,
            ``size`` = records redone)
req_queued  the page service queued a request behind the in-flight
            limit (``size`` = queue depth after enqueueing)
req_admitted  the page service admitted a request (``size`` = requests
            in flight after admission)
req_rejected  the admission controller rejected a request with
            RETRY_AFTER (``size`` = in-flight + queued at rejection)
req_timeout a request timed out in the queue or mid-execution
tune_epoch  the tuning controller closed an observation epoch
            (``size`` = epoch length in accesses, ``value`` = live
            epoch hit-rate, ``label`` = leading configuration)
tune_retune the controller retuned the live policy's parameters in
            place (``label`` = ``"param=value"`` summary, ``value`` =
            the ghost hit-rate that motivated it)
tune_switch the controller handed the buffer to a different policy
            (``label`` = new policy name, ``value`` = ghost hit-rate,
            ``size`` = resident frames migrated)
cluster_route  a cluster node served a request for a page it does not
            own — forwarded to the owner or served from a local replica
            (``page_id``, ``label`` = ``"forward:<node>"`` or
            ``"replica"``)
cluster_invalidate  an owner retired remote copies of an updated page
            (``page_id``, ``lsn`` = new committed LSN, ``size`` =
            copies invalidated)
far_hit     a miss was served from the far-memory tier instead of disk
            (``page_id``, ``lsn`` = the LSN the copy matched)
==========  ==========================================================

The durability events (``wal_*``, ``bg_flush``, ``checkpoint``,
``recover``) are emitted by :mod:`repro.wal`; their ``clock`` field
carries the log's LSN scale rather than a buffer's logical clock, since
one write-ahead log may serve several buffer shards.  The service events
(``req_*``) are emitted by :mod:`repro.server`; their ``clock`` is the
server's admission sequence number and their ``query`` field carries the
client connection id.  The tuning events (``tune_*``) are emitted by
:mod:`repro.tuning`; their ``clock`` is the controller's global access
count (summed over shards).

Emission order within one request is fixed: ``fetch`` first, then either
``hit`` (followed by any policy events such as ``adapt``/``promote``) or
``miss`` followed by the eviction it forced (``writeback`` before
``evict``).  ``clear()`` emits nothing — it resets the world rather than
evolving it.

Unused fields stay ``None`` and are dropped from the JSON form, so trace
files stay compact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Protocol

#: The closed set of event kinds, in canonical order.
EVENT_KINDS = (
    "fetch",
    "hit",
    "miss",
    "evict",
    "writeback",
    "promote",
    "adapt",
    "wal_append",
    "wal_fsync",
    "bg_flush",
    "checkpoint",
    "recover",
    "req_queued",
    "req_admitted",
    "req_rejected",
    "req_timeout",
    "tune_epoch",
    "tune_retune",
    "tune_switch",
    "cluster_route",
    "cluster_invalidate",
    "far_hit",
)


@dataclass(slots=True, frozen=True)
class BufferEvent:
    """One buffer decision, stamped with the logical clock."""

    kind: str
    clock: int
    page_id: int | None = None
    query: int | None = None
    correlated: bool | None = None
    level: int | None = None
    dirty: bool | None = None
    age: int | None = None
    size: int | None = None
    delta: int | None = None
    lsn: int | None = None
    value: float | None = None
    label: str | None = None

    def to_dict(self) -> dict:
        """A compact dict: ``None`` fields are omitted."""
        return {
            key: value for key, value in asdict(self).items() if value is not None
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BufferEvent":
        return cls(**data)


class EventSink(Protocol):
    """Anything that can consume buffer events (duck-typed)."""

    def emit(self, event: BufferEvent) -> None: ...


class TraceRecorder:
    """Collects events into a list, optionally filtered by kind."""

    def __init__(self, kinds: Iterable[str] | None = None) -> None:
        self.events: list[BufferEvent] = []
        self._kinds = frozenset(kinds) if kinds is not None else None

    def emit(self, event: BufferEvent) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


class Fanout:
    """Tees one event stream into several sinks, in order."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = list(sinks)

    def emit(self, event: BufferEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)


class LockingSink:
    """Serialises emissions into a sink that is not itself thread-safe.

    The concurrent buffer service emits events from many threads; wrapping
    the observer in a :class:`LockingSink` makes any single-threaded sink
    (recorder, windowed metrics, fanout) safe to share.  Events arrive in
    lock-acquisition order — a total order, though not necessarily the
    per-shard clock order, since shards keep independent logical clocks.

    Idempotent by construction: wrapping a :class:`LockingSink` returns the
    inner lock's discipline twice, which is wasteful but correct; use
    :meth:`wrapping` to avoid double-wrapping.
    """

    def __init__(self, inner: EventSink) -> None:
        import threading

        self.inner = inner
        self._lock = threading.Lock()

    @classmethod
    def wrapping(cls, sink: "EventSink | None") -> "LockingSink | None":
        """Wrap ``sink`` unless it is ``None`` or already a LockingSink."""
        if sink is None or isinstance(sink, LockingSink):
            return sink
        return cls(sink)

    def emit(self, event: BufferEvent) -> None:
        with self._lock:
            self.inner.emit(event)
