"""Observability: a typed event stream over the buffer subsystem.

The buffer manager, the partitioned buffer and the policies emit
:class:`~repro.obs.events.BufferEvent` records through a pluggable
*observer* (any object with an ``emit(event)`` method).  When no observer
is attached the hooks cost a single attribute check per event site, so
production replays pay nothing for the machinery.

Three layers build on the stream:

* sinks (:mod:`repro.obs.events`) — :class:`TraceRecorder` collects events,
  :class:`Fanout` tees one stream into several consumers;
* windowed metrics (:mod:`repro.obs.windows`) — rolling hit ratio,
  eviction-age histogram and per-level hit counters, all incremental;
* traces (:mod:`repro.obs.trace`) — :class:`RecordedTrace` bundles the
  event stream with the page catalogue and final statistics, serialises to
  JSON lines, and replays deterministically against any policy.

Because every timestamp in the buffer is logical (one tick per request),
recording a workload and replaying its request stream through
:func:`replay_recorded` reproduces the original event stream and
statistics bit for bit — the contract the golden-trace regression tests
pin down.
"""

from repro.obs.events import (
    EVENT_KINDS,
    BufferEvent,
    EventSink,
    Fanout,
    LockingSink,
    TraceRecorder,
)
from repro.obs.trace import (
    RecordedTrace,
    disk_from_catalogue,
    drive_requests,
    record_run,
    replay_recorded,
)
from repro.obs.windows import (
    EvictionAgeHistogram,
    LevelHitCounters,
    RollingHitRatio,
    WindowedMetrics,
)

__all__ = [
    "EVENT_KINDS",
    "BufferEvent",
    "EventSink",
    "Fanout",
    "LockingSink",
    "TraceRecorder",
    "RollingHitRatio",
    "EvictionAgeHistogram",
    "LevelHitCounters",
    "WindowedMetrics",
    "RecordedTrace",
    "disk_from_catalogue",
    "drive_requests",
    "record_run",
    "replay_recorded",
]
