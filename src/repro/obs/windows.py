"""Windowed metrics over the buffer-event stream.

Aggregate counters (:class:`~repro.buffer.stats.BufferStats`) answer "how
did the whole run go"; these consumers answer "how is the run going" —
they update incrementally from events, so adaptation dynamics (the paper's
Figure 14 story) become observable while a workload executes:

* :class:`RollingHitRatio` — hit ratio over the last *N* requests, the
  signal that drifts when a phase change outruns the policy;
* :class:`EvictionAgeHistogram` — how long pages lived before eviction
  (logical ticks, power-of-two buckets): LRU-like behaviour shows a
  tight band, spatial criteria a long tail of short-lived large pages;
* :class:`LevelHitCounters` — hits/misses per tree level, the data behind
  the LRU-P/LRU-T priority arguments (directory pages should hit more);
* :class:`WindowedMetrics` — all three behind one sink.

Every metric is a valid observer (``emit(event)``) and ignores event kinds
it does not consume, so they can be attached directly or fanned out.
"""

from __future__ import annotations

from collections import deque

from repro.obs.events import BufferEvent


class RollingHitRatio:
    """Hit ratio over a sliding window of the last ``window`` requests."""

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._window_hits = 0
        self.requests = 0
        self.hits = 0

    def emit(self, event: BufferEvent) -> None:
        if event.kind == "hit":
            self._push(True)
        elif event.kind == "miss":
            self._push(False)

    def _push(self, hit: bool) -> None:
        self.requests += 1
        self.hits += int(hit)
        if len(self._outcomes) == self.window:
            self._window_hits -= int(self._outcomes[0])
        self._outcomes.append(hit)
        self._window_hits += int(hit)

    @property
    def ratio(self) -> float:
        """Hit ratio of the current window (0.0 before any request)."""
        if not self._outcomes:
            return 0.0
        return self._window_hits / len(self._outcomes)

    @property
    def overall_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class EvictionAgeHistogram:
    """Distribution of frame lifetimes (eviction clock - load clock).

    Ages land in power-of-two buckets: bucket ``k`` holds ages in
    ``[2**(k-1) + 1, 2**k]`` (bucket 0 holds age <= 1), which keeps the
    histogram compact for arbitrarily long runs.
    """

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0

    def emit(self, event: BufferEvent) -> None:
        if event.kind != "evict" or event.age is None:
            return
        bucket = max(0, event.age - 1).bit_length()
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1

    def buckets(self) -> list[tuple[int, int]]:
        """Sorted ``(bucket upper bound, count)`` pairs."""
        return [(2**bucket, self.counts[bucket]) for bucket in sorted(self.counts)]


class LevelHitCounters:
    """Hits and misses per page level (0 = leaves, -1 = object pages)."""

    def __init__(self) -> None:
        self.hits: dict[int, int] = {}
        self.misses: dict[int, int] = {}

    def emit(self, event: BufferEvent) -> None:
        if event.level is None:
            return
        if event.kind == "hit":
            self.hits[event.level] = self.hits.get(event.level, 0) + 1
        elif event.kind == "miss":
            self.misses[event.level] = self.misses.get(event.level, 0) + 1

    def levels(self) -> list[int]:
        return sorted(set(self.hits) | set(self.misses))

    def ratio(self, level: int) -> float:
        hits = self.hits.get(level, 0)
        total = hits + self.misses.get(level, 0)
        if total == 0:
            return 0.0
        return hits / total


class WindowedMetrics:
    """The three windowed metrics behind a single observer."""

    def __init__(self, window: int = 256) -> None:
        self.rolling = RollingHitRatio(window)
        self.eviction_ages = EvictionAgeHistogram()
        self.level_hits = LevelHitCounters()

    def emit(self, event: BufferEvent) -> None:
        self.rolling.emit(event)
        self.eviction_ages.emit(event)
        self.level_hits.emit(event)

    def summary(self) -> dict:
        """A plain-dict snapshot, convenient for reports and the CLI."""
        return {
            "window": self.rolling.window,
            "rolling_hit_ratio": self.rolling.ratio,
            "overall_hit_ratio": self.rolling.overall_ratio,
            "evictions": self.eviction_ages.total,
            "eviction_age_buckets": self.eviction_ages.buckets(),
            "level_hit_ratios": {
                level: self.level_hits.ratio(level)
                for level in self.level_hits.levels()
            },
        }
