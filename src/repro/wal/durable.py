"""A byte-durable page store with per-page checksums.

:class:`~repro.storage.disk.SimulatedDisk` holds pages *by reference*: a
mutation of a fetched page is instantly visible "on disk", which is
perfect for counting accesses but useless for durability — there is no
moment at which a page is or is not persistent.  :class:`DurableDisk`
closes that gap: pages live as **encoded bytes** (the binary format of
:mod:`repro.storage.serialization`) in a :class:`~repro.wal.bytestore`
slot, so only an explicit ``write`` changes the medium, and a crash
preserves exactly the bytes written before it.

Each slot carries a CRC-32 of its payload, so a torn write (crash
mid-slot, injected via ``disk.write.torn``) is *detected* on the next
read — :class:`TornPageError` — instead of silently serving garbage.
Recovery repairs torn slots from the write-ahead log.

The access surface matches ``SimulatedDisk`` (accounted ``read``/
``write``, unaccounted ``store``/``peek``/``delete``, stats, latency
model, failure injection), so buffer managers and indexes run on either.
"""

from __future__ import annotations

import struct
import zlib

from repro.storage.disk import (
    DiskError,
    DiskStats,
    FailureInjectionMixin,
    LatencyModel,
)
from repro.storage.page import Page, PageId
from repro.storage.serialization import decode_page, encode_page
from repro.wal.bytestore import ByteStore, MemoryByteStore
from repro.wal.crash import CrashError, CrashInjector

_CRC = struct.Struct("<I")


class TornPageError(DiskError):
    """A page slot failed its checksum — a write tore mid-slot."""


class DurableDisk(FailureInjectionMixin):
    """Fixed-slot page store over a byte medium, with checksums.

    Slot layout at byte offset ``page_id * (4 + page_size)``::

        crc32 of payload (I) | payload = encoded page (page_size bytes)

    An all-zero slot is free (the CRC of a zero payload never equals
    zero's stored CRC because a valid payload must start with the page
    magic; liveness is tracked in memory and rebuilt by scanning on
    reopen).
    """

    def __init__(
        self,
        store: ByteStore | None = None,
        page_size: int = 4096,
        latency: LatencyModel | None = None,
        crash: CrashInjector | None = None,
    ) -> None:
        self.store_backend = store if store is not None else MemoryByteStore()
        self.page_size = page_size
        self.slot_size = _CRC.size + page_size
        self._latency = latency or LatencyModel()
        self._last_read: PageId | None = None
        self.stats = DiskStats()
        #: Crash injection hooks; ``None`` means crashes never fire.
        self.crash = crash
        self._init_failure_injection()
        self._live: set[PageId] = set()
        self._scan_existing()

    def _scan_existing(self) -> None:
        """Rebuild the live-page set from the medium (reopen/recovery)."""
        from repro.storage.serialization import MAGIC

        # Ceiling division: canonical images strip trailing zeros, which
        # may truncate the final slot's zero padding — it still counts.
        slots = -(-self.store_backend.size() // self.slot_size)
        for page_id in range(slots):
            payload = self._slot_payload(page_id)
            if payload[:2] == MAGIC:
                self._live.add(page_id)

    # ------------------------------------------------------------------
    # Slot helpers
    # ------------------------------------------------------------------

    def _offset(self, page_id: PageId) -> int:
        return page_id * self.slot_size

    def _slot_payload(self, page_id: PageId) -> bytes:
        blob = self.store_backend.read_at(self._offset(page_id), self.slot_size)
        blob = blob + b"\x00" * (self.slot_size - len(blob))
        return blob[_CRC.size :]

    def _read_slot(self, page_id: PageId) -> bytes:
        """The verified payload of a live slot; raises on torn slots."""
        blob = self.store_backend.read_at(self._offset(page_id), self.slot_size)
        blob = blob + b"\x00" * (self.slot_size - len(blob))
        (stored_crc,) = _CRC.unpack_from(blob, 0)
        payload = blob[_CRC.size :]
        if zlib.crc32(payload) != stored_crc:
            raise TornPageError(
                f"page {page_id}: slot checksum mismatch (torn write)"
            )
        return payload

    def _write_slot(self, page_id: PageId, payload: bytes) -> None:
        blob = _CRC.pack(zlib.crc32(payload)) + payload
        crash = self.crash
        if crash is not None:
            crash.reached("disk.write.before")
            if crash.trips("disk.write.torn"):
                # Persist only a prefix — the checksum no longer matches.
                self.store_backend.write_at(
                    self._offset(page_id), blob[: len(blob) // 2]
                )
                self._live.add(page_id)
                raise CrashError("disk.write.torn")
        self.store_backend.write_at(self._offset(page_id), blob)
        self._live.add(page_id)
        if crash is not None:
            crash.reached("disk.write.after")

    # ------------------------------------------------------------------
    # Accounted accesses
    # ------------------------------------------------------------------

    def read(self, page_id: PageId) -> Page:
        """Read and decode a page, counting one disk access."""
        self._check_failure("read", page_id)
        if page_id not in self._live:
            raise KeyError(f"page {page_id} does not exist on disk")
        payload = self._read_slot(page_id)
        self.stats.reads += 1
        if self._last_read is not None and page_id == self._last_read + 1:
            self.stats.sequential_reads += 1
            self.stats.elapsed_ms += self._latency.sequential_ms
        else:
            self.stats.random_reads += 1
            self.stats.elapsed_ms += self._latency.random_ms
        self._last_read = page_id
        return decode_page(payload, page_id)

    def write(self, page: Page) -> None:
        """Encode and persist a page, counting one disk access."""
        self._check_failure("write", page.page_id)
        self._write_slot(page.page_id, encode_page(page, self.page_size))
        self.stats.writes += 1
        self.stats.elapsed_ms += self._latency.random_ms

    # ------------------------------------------------------------------
    # Unaccounted maintenance
    # ------------------------------------------------------------------

    def store(self, page: Page) -> None:
        """Persist a page without counting an access (build phase)."""
        self._write_slot(page.page_id, encode_page(page, self.page_size))

    def restore(self, page_id: PageId, payload: bytes) -> None:
        """Place raw encoded page bytes into a slot (recovery redo).

        The payload comes from a checksummed WAL record, so it is written
        verbatim — re-encoding would only prove the codec round-trips.
        Write-failure injection applies (redo shares the medium's failure
        modes), which is why recovery wraps restores in bounded retry.
        """
        self._check_failure("write", page_id)
        if len(payload) != self.page_size:
            raise ValueError(
                f"payload is {len(payload)} bytes; slots hold {self.page_size}"
            )
        self._write_slot(page_id, payload)

    def peek(self, page_id: PageId) -> Page:
        """Read a page without counting an access (testing/inspection)."""
        if page_id not in self._live:
            raise KeyError(f"page {page_id} does not exist on disk")
        return decode_page(self._read_slot(page_id), page_id)

    def delete(self, page_id: PageId) -> None:
        """Zero a page's slot (unaccounted)."""
        if page_id in self._live:
            self.store_backend.write_at(
                self._offset(page_id), b"\x00" * self.slot_size
            )
            self._live.discard(page_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def image(self) -> bytes:
        """The medium as canonical bytes — the unit of the crash property.

        Trailing zero bytes are stripped: they are dead space (a live slot
        starts with the page magic, so an all-zero tail can never hold
        one), and whether a medium ever *extended* over a since-freed slot
        is not an observable difference.  Stripping makes two media that
        agree on every slot compare equal, and remounting a stripped
        image is lossless — reads past the end zero-pad.
        """
        return self.store_backend.image().rstrip(b"\x00")

    @classmethod
    def from_image(
        cls,
        image: bytes,
        page_size: int = 4096,
        crash: CrashInjector | None = None,
    ) -> "DurableDisk":
        """Mount a copy of a medium (simulated reboot on cloned media)."""
        return cls(MemoryByteStore(image), page_size=page_size, crash=crash)

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._live

    def __len__(self) -> int:
        return len(self._live)

    def page_ids(self) -> list[PageId]:
        return sorted(self._live)
