"""Crash injection for the durable write path.

A *crash point* is a named place in the disk or WAL code where a simulated
process death can be armed.  The crash-injection harness
(:mod:`repro.wal.harness`) arms one point, runs an update stream until the
:class:`CrashError` fires, then runs recovery and checks the recovered
disk image against a replay of the durable log prefix — the property that
makes the write path trustworthy at *every* interleaving of log, data and
fsync operations.

Torn variants (``*.torn``) model the nastiest failure: the crash happens
*mid-write*, leaving a prefix of the bytes on the medium.  The durable
disk and the log both checksum their units, so a torn unit is detected
(never silently served) and recovery repairs it from the log.
"""

from __future__ import annotations

#: The closed set of crash points, in write-path order.
CRASH_POINTS = (
    "wal.append",          # before a record is even buffered — it is lost
    "wal.fsync.before",    # pending records lost, durable tail unchanged
    "wal.fsync.torn",      # fsync persists only a prefix of the pending bytes
    "wal.fsync.after",     # records durable, but the caller never learns
    "disk.write.before",   # page write-back lost entirely
    "disk.write.torn",     # page slot left half-written (checksum broken)
    "disk.write.after",    # page durable, in-memory bookkeeping lost
    "checkpoint.before",   # dirty frames flushed, checkpoint record lost
    "checkpoint.after",    # checkpoint record durable, crash right after
)


class CrashError(RuntimeError):
    """The simulated process died at an armed crash point.

    Everything volatile (buffer frames, pending WAL records, page-LSN
    table) is gone; the byte stores — durable disk and durable log
    prefix — survive and are what recovery gets to work with.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point


class CrashInjector:
    """Arms crash points with a countdown and fires them exactly once.

    ``arm(point, after=n)`` makes the ``n``-th future arrival at ``point``
    crash (``after=0`` crashes the next arrival).  Each armed point fires
    at most once; an unarmed point is free — the checks on the hot path
    are one dict lookup against an (almost always empty) dict.
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        #: Points that fired, in order (for harness assertions).
        self.fired: list[str] = []

    def arm(self, point: str, after: int = 0) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        if after < 0:
            raise ValueError("after must be non-negative")
        self._armed[point] = after

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def trips(self, point: str) -> bool:
        """True when an armed countdown for ``point`` just hit zero.

        Used by the torn variants, where the caller must apply the partial
        effect *before* raising; plain points use :meth:`reached`.
        """
        remaining = self._armed.get(point)
        if remaining is None:
            return False
        if remaining > 0:
            self._armed[point] = remaining - 1
            return False
        del self._armed[point]
        self.fired.append(point)
        return True

    def reached(self, point: str) -> None:
        """Crash here if the point is armed and its countdown expired."""
        if self.trips(point):
            raise CrashError(point)
