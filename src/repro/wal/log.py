"""The write-ahead log: append/fsync semantics and group commit.

Records are appended to a volatile tail and become durable only when an
``fsync`` copies them onto the log's byte store.  The log's contract is
the classic WAL rule consumed by the buffer layer: **no page may be
written back to the data disk before the log records describing its
state are durable** (``page_lsn <= flushed_lsn`` — enforced by
:class:`~repro.wal.manager.DurabilityManager.before_writeback`).

Redo records carry **full page images** (physical redo).  Full images
make redo idempotent and order-insensitive per page — replaying a prefix
of the durable log always yields a consistent image, which is what makes
the crash-injection property (:mod:`repro.wal.harness`) decidable at the
byte level.

**Group commit** batches fsyncs: each :meth:`commit` appends a COMMIT
record but only every ``group_window``-th commit pays an fsync, so the
fsync count per committed operation drops by the window factor — the
trade measured by ``python -m repro bench wal``.  A commit is durable
(and only then survives a crash) once the fsync covering it completes;
the durable prefix of the log *is* the committed prefix.

Record format (little-endian)::

    lsn (Q) | kind (B) | page_id (q) | payload_len (I) | payload |
    crc32 over all preceding record bytes (I)

The trailing CRC makes a torn fsync detectable: scanning stops at the
first record whose checksum fails or whose bytes are truncated.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.storage.page import Page, PageId
from repro.storage.serialization import encode_page
from repro.wal.bytestore import ByteStore, MemoryByteStore
from repro.wal.crash import CrashError, CrashInjector

if TYPE_CHECKING:
    from repro.obs.events import EventSink

_RECORD_HEAD = struct.Struct("<QBqI")
_RECORD_CRC = struct.Struct("<I")

#: Record kinds.
PAGE_IMAGE = 1  #: full encoded page after an update (physical redo)
FREE = 2        #: the page was deallocated; its slot is dead
COMMIT = 3      #: durability point requested by the caller
CHECKPOINT = 4  #: all earlier page states are on the data disk

KIND_NAMES = {PAGE_IMAGE: "page", FREE: "free", COMMIT: "commit",
              CHECKPOINT: "checkpoint"}


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    kind: int
    page_id: PageId
    payload: bytes = b""

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"unknown({self.kind})")


@dataclass(slots=True)
class WalStats:
    """Counters of one log's life (the group-commit benchmark's metric)."""

    appends: int = 0
    commits: int = 0
    fsyncs: int = 0
    records_flushed: int = 0
    bytes_flushed: int = 0

    @property
    def commits_per_fsync(self) -> float:
        """The group-commit batching factor (1.0 = no batching)."""
        if self.fsyncs == 0:
            return 0.0
        return self.commits / self.fsyncs


def _encode_record(lsn: int, kind: int, page_id: PageId, payload: bytes) -> bytes:
    head = _RECORD_HEAD.pack(lsn, kind, page_id, len(payload))
    body = head + payload
    return body + _RECORD_CRC.pack(zlib.crc32(body))


class WriteAheadLog:
    """An append-only, checksummed log over a byte store.

    ``group_window`` is the group-commit batch size: an fsync happens on
    every ``group_window``-th commit (window 1 = synchronous commit).
    ``flush_to`` and ``sync`` force durability regardless of the window —
    the write-back invariant and shutdown use them.
    """

    def __init__(
        self,
        store: ByteStore | None = None,
        group_window: int = 1,
        crash: CrashInjector | None = None,
        observer: "EventSink | None" = None,
    ) -> None:
        if group_window < 1:
            raise ValueError("group_window must be at least 1")
        self.store = store if store is not None else MemoryByteStore()
        self.group_window = group_window
        self.crash = crash
        self.observer = observer
        self.stats = WalStats()
        #: LSN of the last record whose bytes are durably on the store.
        self.flushed_lsn = 0
        self._pending: list[tuple[int, bytes]] = []
        self._pending_commits = 0
        self._durable_end = self.store.size()
        self._next_lsn = 1
        if self._durable_end:
            # Reopening an existing log: continue after the valid prefix.
            last = 0
            end = 0
            for record, record_end in self._scan():
                last = record.lsn
                end = record_end
            self.flushed_lsn = last
            self._durable_end = end
            self._next_lsn = last + 1

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append(self, kind: int, page_id: PageId, payload: bytes) -> int:
        if self.crash is not None:
            self.crash.reached("wal.append")
        lsn = self._next_lsn
        self._next_lsn += 1
        self._pending.append((lsn, _encode_record(lsn, kind, page_id, payload)))
        self.stats.appends += 1
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="wal_append",
                    clock=lsn,
                    lsn=lsn,
                    page_id=page_id if kind in (PAGE_IMAGE, FREE) else None,
                )
            )
        return lsn

    def append_page_image(self, page: Page, page_size: int) -> int:
        """Log the full current image of ``page``; returns its LSN."""
        return self._append(
            PAGE_IMAGE, page.page_id, encode_page(page, page_size)
        )

    def append_free(self, page_id: PageId) -> int:
        """Log the deallocation of a page."""
        return self._append(FREE, page_id, b"")

    def append_checkpoint(self) -> int:
        """Log a checkpoint; redo may start after this record."""
        return self._append(CHECKPOINT, -1, b"")

    def commit(self) -> int:
        """Request a durability point; fsyncs when the group window fills.

        Returns the COMMIT record's LSN.  The commit is durable once
        ``flushed_lsn`` reaches that LSN — immediately for window 1,
        after up to ``group_window - 1`` further commits otherwise.
        """
        lsn = self._append(COMMIT, -1, b"")
        self.stats.commits += 1
        self._pending_commits += 1
        if self._pending_commits >= self.group_window:
            self.fsync()
        return lsn

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def fsync(self) -> None:
        """Persist every pending record; advances ``flushed_lsn``."""
        crash = self.crash
        if crash is not None:
            crash.reached("wal.fsync.before")
        if not self._pending:
            if crash is not None:
                crash.reached("wal.fsync.torn")
                crash.reached("wal.fsync.after")
            return
        blob = b"".join(record for _, record in self._pending)
        last_lsn = self._pending[-1][0]
        count = len(self._pending)
        if crash is not None and crash.trips("wal.fsync.torn"):
            # A prefix of the batch reaches the medium; the scan will stop
            # at the first truncated record.
            self.store.write_at(self._durable_end, blob[: len(blob) // 2])
            raise CrashError("wal.fsync.torn")
        self.store.write_at(self._durable_end, blob)
        self.store.sync()
        self._durable_end += len(blob)
        self.flushed_lsn = last_lsn
        self._pending.clear()
        self._pending_commits = 0
        self.stats.fsyncs += 1
        self.stats.records_flushed += count
        self.stats.bytes_flushed += len(blob)
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="wal_fsync",
                    clock=last_lsn,
                    lsn=last_lsn,
                    size=count,
                )
            )
        if crash is not None:
            crash.reached("wal.fsync.after")

    def flush_to(self, lsn: int) -> None:
        """Make every record up to ``lsn`` durable (the WAL invariant)."""
        if lsn > self.flushed_lsn:
            self.fsync()

    def sync(self) -> None:
        """Force all pending records durable (shutdown, checkpoints)."""
        self.fsync()

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Scanning (recovery)
    # ------------------------------------------------------------------

    def _scan(self) -> Iterator[tuple[WalRecord, int]]:
        """Valid records of the durable prefix, with their end offsets.

        Stops at the first truncated or checksum-failing record — the
        torn tail of a crashed fsync.  Pending (volatile) records are
        invisible here by construction.
        """
        offset = 0
        size = self.store.size()
        while offset + _RECORD_HEAD.size + _RECORD_CRC.size <= size:
            head = self.store.read_at(offset, _RECORD_HEAD.size)
            if len(head) < _RECORD_HEAD.size:
                return
            lsn, kind, page_id, payload_len = _RECORD_HEAD.unpack(head)
            if lsn == 0:
                return
            end = offset + _RECORD_HEAD.size + payload_len + _RECORD_CRC.size
            if end > size:
                return
            body = self.store.read_at(
                offset, _RECORD_HEAD.size + payload_len
            )
            (stored_crc,) = _RECORD_CRC.unpack(
                self.store.read_at(end - _RECORD_CRC.size, _RECORD_CRC.size)
            )
            if zlib.crc32(body) != stored_crc:
                return
            payload = body[_RECORD_HEAD.size :]
            yield WalRecord(lsn=lsn, kind=kind, page_id=page_id,
                            payload=payload), end
            offset = end

    def records(self) -> Iterator[WalRecord]:
        """The durable, checksum-valid record prefix in LSN order."""
        for record, _ in self._scan():
            yield record


# Imported last to mirror the buffer module's convention: repro.obs pulls
# in buffer types at import time, so a top-of-file import would cycle.
from repro.obs.events import BufferEvent  # noqa: E402
