"""Byte-addressed durable media under the durable disk and the WAL.

A :class:`ByteStore` is the model of the physical medium: a flat byte
array that survives a simulated crash.  Everything above it (page slots,
log records) is volatile bookkeeping that a crash wipes; everything
written here stays.  Two implementations share the surface:

* :class:`MemoryByteStore` — a ``bytearray``; fast, and its
  :meth:`~ByteStore.image` makes bit-identical whole-media comparisons
  (the crash-recovery property) a one-liner;
* :class:`FileByteStore` — a real file with seek/write/fsync, so a WAL or
  durable disk can genuinely outlive the process.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Protocol


class ByteStore(Protocol):
    """The durable-medium surface: positioned reads/writes plus sync."""

    def read_at(self, offset: int, length: int) -> bytes: ...

    def write_at(self, offset: int, data: bytes) -> None: ...

    def size(self) -> int: ...

    def sync(self) -> None: ...

    def image(self) -> bytes: ...


class MemoryByteStore:
    """A growable in-memory medium (the default for experiments)."""

    def __init__(self, initial: bytes = b"") -> None:
        self._buffer = bytearray(initial)

    def read_at(self, offset: int, length: int) -> bytes:
        return bytes(self._buffer[offset : offset + length])

    def write_at(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if end > len(self._buffer):
            self._buffer.extend(b"\x00" * (end - len(self._buffer)))
        self._buffer[offset:end] = data

    def size(self) -> int:
        return len(self._buffer)

    def sync(self) -> None:
        """In-memory media are always 'on disk' — nothing to do."""

    def image(self) -> bytes:
        """The full medium as bytes (bit-identity comparisons)."""
        return bytes(self._buffer)


class FileByteStore:
    """A file-backed medium; ``sync`` is a real flush + ``os.fsync``."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        mode = "r+b" if self.path.exists() else "w+b"
        self._file = open(self.path, mode)  # noqa: SIM115 - long-lived handle

    def read_at(self, offset: int, length: int) -> bytes:
        self._file.seek(offset)
        data = self._file.read(length)
        return data + b"\x00" * (length - len(data))

    def write_at(self, offset: int, data: bytes) -> None:
        current = self.size()
        if offset > current:
            self._file.seek(0, io.SEEK_END)
            self._file.write(b"\x00" * (offset - current))
        self._file.seek(offset)
        self._file.write(data)

    def size(self) -> int:
        self._file.seek(0, io.SEEK_END)
        return self._file.tell()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def image(self) -> bytes:
        self._file.seek(0)
        return self._file.read()

    def close(self) -> None:
        self._file.flush()
        self._file.close()

    def __enter__(self) -> "FileByteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
