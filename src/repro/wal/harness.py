"""Crash-injection harness: the property that makes the WAL trustworthy.

The harness drives a random *durable update stream* — page writes, fresh
allocations, deallocations and commits — through a buffer manager wired
to a :class:`~repro.wal.manager.DurabilityManager`, with one crash point
armed.  When the simulated process dies, only the byte media survive
(data disk + durable log prefix); the harness then "reboots": it mounts
the media fresh, runs :func:`~repro.wal.recovery.recover`, and checks the
**crash property**:

    after a crash at any injection point, the recovered disk image is
    bit-identical to replaying the durable (= committed) log prefix onto
    the pre-run base image.

Streams are deterministic under their seed, so hypothesis can sweep
(seed × crash point × countdown) and every failure is replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.geometry.rect import Rect
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.serialization import max_entries_for
from repro.wal.crash import CRASH_POINTS, CrashError, CrashInjector
from repro.wal.durable import DurableDisk
from repro.wal.log import WriteAheadLog
from repro.wal.manager import DurabilityManager
from repro.wal.recovery import RecoveryReport, recover, replay_durable_prefix

#: One step of a durable update stream.
Step = tuple  # ("write", pid) | ("new", pid) | ("free", pid) | ("commit",)


def random_page(page_id: PageId, rng: random.Random, page_size: int) -> Page:
    """A page with 1-6 random entries (integer payloads, serialisable)."""
    page = Page(page_id=page_id, page_type=PageType.DATA, level=0)
    count = rng.randint(1, min(6, max_entries_for(page_size)))
    for _ in range(count):
        x = rng.random()
        y = rng.random()
        page.entries.append(
            PageEntry(
                mbr=Rect(x, y, x + rng.random() * 0.05, y + rng.random() * 0.05),
                payload=rng.randrange(1 << 30),
            )
        )
    return page


def mutate_page(page: Page, rng: random.Random, page_size: int) -> None:
    """Rewrite a page's entries in place (the content of an update)."""
    fresh = random_page(page.page_id, rng, page_size)
    page.entries[:] = fresh.entries


def random_steps(
    seed: int,
    count: int,
    base_pages: int,
    *,
    write_fraction: float = 0.55,
    new_fraction: float = 0.15,
    free_fraction: float = 0.10,
) -> list[Step]:
    """A self-consistent stream: writes and frees always target live pages.

    The remainder of the probability mass (default 20 %) are commits.
    Freed ids are reused LIFO like :class:`~repro.storage.pagefile.PageFile`.
    """
    rng = random.Random(seed)
    live = list(range(base_pages))
    freelist: list[PageId] = []
    next_id = base_pages
    steps: list[Step] = []
    for _ in range(count):
        roll = rng.random()
        if roll < write_fraction and live:
            steps.append(("write", rng.choice(live)))
        elif roll < write_fraction + new_fraction:
            page_id = freelist.pop() if freelist else next_id
            if page_id == next_id:
                next_id += 1
            steps.append(("new", page_id))
            live.append(page_id)
        elif roll < write_fraction + new_fraction + free_fraction and live:
            page_id = live.pop(rng.randrange(len(live)))
            freelist.append(page_id)
            steps.append(("free", page_id))
        else:
            steps.append(("commit",))
    return steps


def make_base_image(
    pages: int = 32, seed: int = 0, page_size: int = 512
) -> bytes:
    """Media with ``pages`` random pages stored — the pre-run state."""
    disk = DurableDisk(page_size=page_size)
    rng = random.Random(seed)
    for page_id in range(pages):
        disk.store(random_page(page_id, rng, page_size))
    return disk.image()


def apply_steps(
    buffer: BufferManager,
    durability: DurabilityManager,
    steps: Sequence[Step],
    rng: random.Random,
    page_size: int,
) -> int:
    """Apply a durable update stream; returns the number of steps applied.

    Shared by the crash harness (which wraps it in a crash handler) and
    the WAL benchmark (which times it).
    """
    applied = 0
    for step in steps:
        kind = step[0]
        if kind == "write":
            page = buffer.fetch(step[1])
            mutate_page(page, rng, page_size)
            buffer.mark_dirty(step[1])
        elif kind == "new":
            buffer.install(random_page(step[1], rng, page_size))
        elif kind == "free":
            durability.free_page(buffer, step[1])
        elif kind == "commit":
            durability.commit()
        else:  # pragma: no cover - stream generator bug
            raise ValueError(f"unknown step {step!r}")
        applied += 1
    return applied


@dataclass(slots=True)
class RunOutcome:
    """What survived one (possibly crashed) run."""

    crashed: bool
    crash_point: str | None
    steps_applied: int
    disk_image: bytes
    wal_image: bytes
    page_size: int


@dataclass(slots=True)
class PropertyResult:
    """One crash-property check: recovery vs durable-prefix replay."""

    outcome: RunOutcome
    report: RecoveryReport
    recovered_image: bytes
    expected_image: bytes

    @property
    def holds(self) -> bool:
        return self.recovered_image == self.expected_image


def run_stream(
    base_image: bytes,
    steps: Sequence[Step],
    *,
    seed: int = 0,
    page_size: int = 512,
    capacity: int = 8,
    group_window: int = 4,
    flush_interval: int = 7,
    flush_batch: int = 2,
    checkpoint_interval: int = 40,
    crash_point: str | None = None,
    crash_after: int = 0,
) -> RunOutcome:
    """Apply a durable update stream, optionally dying at a crash point.

    Returns only what a reboot would find: the two byte images.
    """
    injector = CrashInjector()
    if crash_point is not None:
        injector.arm(crash_point, after=crash_after)
    disk = DurableDisk.from_image(base_image, page_size=page_size, crash=injector)
    durability = DurabilityManager(
        disk,
        group_window=group_window,
        flush_interval=flush_interval,
        flush_batch=flush_batch,
        checkpoint_interval=checkpoint_interval,
    )
    buffer = BufferManager(disk, capacity, LRU(), durability=durability)
    rng = random.Random(seed ^ 0x5EED)
    applied = 0
    crashed = False
    try:
        # One step at a time so `applied` stays exact when a crash fires.
        for step in steps:
            apply_steps(buffer, durability, (step,), rng, page_size)
            applied += 1
    except CrashError:
        crashed = True
    return RunOutcome(
        crashed=crashed,
        crash_point=crash_point,
        steps_applied=applied,
        disk_image=disk.image(),
        wal_image=durability.wal.store.image(),
        page_size=page_size,
    )


def check_crash_property(base_image: bytes, outcome: RunOutcome) -> PropertyResult:
    """Reboot from the outcome's media, recover, and compare images.

    The WAL and disk are *remounted* from their byte images — volatile
    state (pending records, LSN tables, buffer frames) is deliberately
    lost, exactly as a crash loses it.
    """
    from repro.wal.bytestore import MemoryByteStore

    wal = WriteAheadLog(store=MemoryByteStore(outcome.wal_image))
    disk = DurableDisk.from_image(outcome.disk_image, page_size=outcome.page_size)
    report = recover(wal, disk)
    return PropertyResult(
        outcome=outcome,
        report=report,
        recovered_image=disk.image(),
        expected_image=replay_durable_prefix(
            wal, base_image, page_size=outcome.page_size
        ),
    )


@dataclass(slots=True)
class MatrixResult:
    """Crash-property results over a set of injection points."""

    results: dict[str, PropertyResult] = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        return all(result.holds for result in self.results.values())

    def failing_points(self) -> list[str]:
        return sorted(
            point for point, result in self.results.items() if not result.holds
        )


def crash_matrix(
    seed: int = 0,
    steps_count: int = 120,
    base_pages: int = 32,
    points: Sequence[str] = CRASH_POINTS,
    crash_after: int = 2,
    **run_kwargs,
) -> MatrixResult:
    """Run one stream against every crash point and check the property.

    ``crash_after`` skips the first arrivals at the point so the crash
    lands mid-stream, where the most state is in flight.  Checkpoint
    points are armed with no countdown — checkpoints are rare events, and
    a countdown would outlive the stream without ever crashing.
    """
    base_image = make_base_image(
        pages=base_pages, seed=seed, page_size=run_kwargs.get("page_size", 512)
    )
    steps = random_steps(seed, steps_count, base_pages)
    matrix = MatrixResult()
    for point in points:
        outcome = run_stream(
            base_image,
            steps,
            seed=seed,
            crash_point=point,
            crash_after=0 if point.startswith("checkpoint") else crash_after,
            **run_kwargs,
        )
        matrix.results[point] = check_crash_property(base_image, outcome)
    return matrix
