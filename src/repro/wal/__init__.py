"""Durable write path: WAL, group commit, write-back and crash recovery.

The package adds a durability layer *beside* the replacement-policy core
(the paper's subject), never inside it: buffer managers gain a single
optional ``durability`` seam, and with it unplugged the sequential cores
are bit-identical to the undurable build (golden traces unchanged).

Layering, bottom up:

- :mod:`repro.wal.bytestore` — byte media with explicit ``sync``.
- :mod:`repro.wal.crash` — named crash points and the injector.
- :mod:`repro.wal.durable` — checksummed page slots over a byte store.
- :mod:`repro.wal.log` — the append/fsync log with group commit.
- :mod:`repro.wal.manager` — the :class:`DurabilityManager` seam: page
  LSNs, the WAL invariant, background flusher and checkpointer.
- :mod:`repro.wal.recovery` — redo recovery and the replay oracle.
- :mod:`repro.wal.harness` — crash-injection property harness.
"""

from repro.wal.bytestore import ByteStore, FileByteStore, MemoryByteStore
from repro.wal.crash import CRASH_POINTS, CrashError, CrashInjector
from repro.wal.durable import DurableDisk, TornPageError
from repro.wal.log import (
    CHECKPOINT,
    COMMIT,
    FREE,
    PAGE_IMAGE,
    WalRecord,
    WalStats,
    WriteAheadLog,
)
from repro.wal.manager import DurabilityManager, WalInvariantError
from repro.wal.recovery import RecoveryReport, recover, replay_durable_prefix

__all__ = [
    "ByteStore",
    "FileByteStore",
    "MemoryByteStore",
    "CRASH_POINTS",
    "CrashError",
    "CrashInjector",
    "DurableDisk",
    "TornPageError",
    "PAGE_IMAGE",
    "FREE",
    "COMMIT",
    "CHECKPOINT",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
    "DurabilityManager",
    "WalInvariantError",
    "RecoveryReport",
    "recover",
    "replay_durable_prefix",
]
