"""ARIES-style redo recovery: replay the durable log onto the data disk.

The write path logs **full page images**, so recovery is a single redo
pass: scan the durable, checksum-valid log prefix, find the last complete
CHECKPOINT record, and re-apply every later PAGE_IMAGE / FREE record in
LSN order.  Full-image redo is idempotent — recovering twice, or
re-applying records whose effect already reached the disk, converges to
the same image — and repairs torn page slots (their covering record is
durable by the WAL invariant).

There is no undo pass: the system has no multi-operation transactions —
a logged update is committed once its record is durable, so the durable
log prefix *is* the committed prefix and recovery reconstructs exactly
the committed state.  The crash-injection harness
(:mod:`repro.wal.harness`) checks this property bit-for-bit at every
crash point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.storage.retry import RetryPolicy, call_with_retry
from repro.wal.durable import DurableDisk
from repro.wal.log import CHECKPOINT, COMMIT, FREE, PAGE_IMAGE, WriteAheadLog

if TYPE_CHECKING:
    from typing import Callable

    from repro.obs.events import EventSink


@dataclass(slots=True)
class RecoveryReport:
    """What one recovery pass did."""

    records_scanned: int = 0
    redo_from_lsn: int = 0
    last_lsn: int = 0
    pages_redone: int = 0
    frees_redone: int = 0
    commits_seen: int = 0
    checkpoints_seen: int = 0

    @property
    def records_redone(self) -> int:
        return self.pages_redone + self.frees_redone

    def snapshot(self) -> dict[str, int]:
        return {
            "records_scanned": self.records_scanned,
            "redo_from_lsn": self.redo_from_lsn,
            "last_lsn": self.last_lsn,
            "pages_redone": self.pages_redone,
            "frees_redone": self.frees_redone,
            "commits_seen": self.commits_seen,
            "checkpoints_seen": self.checkpoints_seen,
        }


def recover(
    wal: WriteAheadLog,
    disk: DurableDisk,
    *,
    observer: "EventSink | None" = None,
    retry: RetryPolicy | None = None,
    sleeper: "Callable[[float], None] | None" = None,
) -> RecoveryReport:
    """Redo the durable log onto ``disk``; returns a :class:`RecoveryReport`.

    Scans stop at the log's torn tail automatically (record checksums).
    Slot restores run under bounded retry, so a transient disk failure
    during redo does not abort recovery.
    """
    records = list(wal.records())
    report = RecoveryReport(records_scanned=len(records))
    redo_from = 0
    for record in records:
        if record.kind == CHECKPOINT:
            redo_from = record.lsn
            report.checkpoints_seen += 1
        elif record.kind == COMMIT:
            report.commits_seen += 1
    report.redo_from_lsn = redo_from
    for record in records:
        if record.lsn <= redo_from:
            continue
        if record.kind == PAGE_IMAGE:
            call_with_retry(
                lambda record=record: disk.restore(record.page_id, record.payload),
                retry,
                sleeper,
            )
            report.pages_redone += 1
        elif record.kind == FREE:
            disk.delete(record.page_id)
            report.frees_redone += 1
        report.last_lsn = record.lsn
    if records:
        report.last_lsn = max(report.last_lsn, records[-1].lsn)
    if observer is not None:
        observer.emit(
            BufferEvent(
                kind="recover",
                clock=report.last_lsn,
                lsn=report.last_lsn,
                size=report.records_redone,
            )
        )
    return report


def replay_durable_prefix(
    wal: WriteAheadLog, base_image: bytes, page_size: int = 4096
) -> bytes:
    """The *specification* image: base media plus every durable record.

    Mounts a copy of ``base_image`` and applies the full durable log in
    LSN order, ignoring checkpoints.  The crash property states that
    ``recover()`` on the crashed media yields exactly this image — the
    committed prefix replayed from scratch.
    """
    disk = DurableDisk.from_image(base_image, page_size=page_size)
    for record in wal.records():
        if record.kind == PAGE_IMAGE:
            disk.restore(record.page_id, record.payload)
        elif record.kind == FREE:
            disk.delete(record.page_id)
    return disk.image()


# Imported last — see repro.wal.manager for the cycle rationale.
from repro.obs.events import BufferEvent  # noqa: E402
