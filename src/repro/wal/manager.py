"""The durability seam between buffer managers and the write-ahead log.

A :class:`DurabilityManager` owns the WAL, the page-LSN table and the
background write-back machinery.  Buffer managers talk to it through four
narrow hooks — ``on_page_update`` (a page was dirtied or installed),
``before_writeback`` (the WAL invariant), ``tick`` (background cadence)
and ``free_page`` (durable deallocation) — and pass ``durability=None``
to opt out entirely: with the seam unplugged every hook site reduces to
one attribute check, so the sequential cores stay golden-trace-identical.

The WAL invariant
=================

No page reaches the data disk before the log records describing its
content are durable: ``before_writeback`` forces
``flush_to(page_lsn)`` and then *verifies* ``page_lsn <= flushed_lsn``,
raising :class:`WalInvariantError` if the log failed to keep the promise.
The invariant is what makes redo-only recovery sufficient — every byte on
the data disk is explained by a durable log record.

Background write-back
=====================

``flush_interval > 0`` turns on the background flusher: every that many
buffer requests, up to ``flush_batch`` *cold* dirty frames are written
back without being evicted.  Cold is defined by the **active replacement
policy** via :meth:`~repro.buffer.policies.base.ReplacementPolicy.flush_priority`
— the frames the policy would evict soonest are cleaned first, so a later
eviction finds them clean (no forced write in the latency path) and the
flusher never distorts the eviction order itself (it touches no
policy state, only the dirty flag).

``checkpoint_interval > 0`` additionally takes periodic checkpoints:
flush *all* dirty frames, then log a CHECKPOINT record — recovery may
skip every earlier record.  Automatic checkpoints require a single
sequential buffer (a checkpoint must cover every frame pool); the
concurrent service exposes an explicit all-shard
:meth:`~repro.buffer.concurrent.ConcurrentBufferManager.checkpoint`
instead.

Both the flusher and recovery write through a bounded-retry wrapper
(:class:`~repro.storage.retry.RetryingDisk`), so transient disk failures
do not abort background cleaning or redo.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.storage.page import Page, PageId
from repro.storage.retry import RetryingDisk, RetryPolicy
from repro.wal.durable import DurableDisk
from repro.wal.log import WriteAheadLog

if TYPE_CHECKING:
    from typing import Callable

    from repro.buffer.manager import BufferManager
    from repro.obs.events import EventSink


class WalInvariantError(RuntimeError):
    """A page write-back was attempted before its log records were durable."""


class DurabilityManager:
    """Durable write path: WAL + page LSNs + background flusher/checkpointer.

    One instance serves one :class:`~repro.wal.durable.DurableDisk` and
    may be shared by several buffer shards (all methods take an internal
    re-entrant lock; the lock order is always shard lock → durability
    lock, so shard-holding callers never deadlock).
    """

    def __init__(
        self,
        disk: DurableDisk,
        wal: WriteAheadLog | None = None,
        *,
        group_window: int = 1,
        flush_interval: int = 0,
        flush_batch: int = 8,
        checkpoint_interval: int = 0,
        observer: "EventSink | None" = None,
        retry: RetryPolicy | None = None,
        sleeper: "Callable[[float], None] | None" = None,
    ) -> None:
        self.disk = disk
        self.wal = wal if wal is not None else WriteAheadLog(
            group_window=group_window, crash=disk.crash, observer=observer
        )
        if observer is not None and self.wal.observer is None:
            self.wal.observer = observer
        self.observer = observer
        self.flush_interval = flush_interval
        self.flush_batch = flush_batch
        self.checkpoint_interval = checkpoint_interval
        #: page -> LSN of the record describing its current content.
        self.page_lsn: dict[PageId, int] = {}
        self._writer = RetryingDisk(disk, retry or RetryPolicy(), sleeper)
        self._lock = threading.RLock()
        self._requests = 0

    # ------------------------------------------------------------------
    # Hooks called by the buffer managers
    # ------------------------------------------------------------------

    def on_page_update(self, page: Page) -> int:
        """A page was dirtied or installed: log its full image.

        Called *after* the mutation (``mark_dirty`` follows the edit), so
        the image is the page's post-update content.  Returns the LSN.
        """
        with self._lock:
            lsn = self.wal.append_page_image(page, self.disk.page_size)
            self.page_lsn[page.page_id] = lsn
            return lsn

    def before_writeback(self, page_id: PageId) -> None:
        """Enforce the WAL invariant ahead of a data-disk write."""
        with self._lock:
            lsn = self.page_lsn.get(page_id)
            if lsn is None:
                return
            self.wal.flush_to(lsn)
            if lsn > self.wal.flushed_lsn:
                raise WalInvariantError(
                    f"page {page_id} at LSN {lsn} would reach disk ahead "
                    f"of the log (flushed_lsn={self.wal.flushed_lsn})"
                )

    def commit(self) -> int:
        """Request a durability point (group commit decides the fsync)."""
        with self._lock:
            return self.wal.commit()

    def tick(self, buffer: "BufferManager") -> None:
        """Background cadence, driven by the buffer's request stream.

        Runs the flusher every ``flush_interval`` requests and a
        checkpoint every ``checkpoint_interval`` requests.  The caller
        already holds its shard lock (if any); frames of *other* shards
        are never touched here.
        """
        with self._lock:
            self._requests += 1
            requests = self._requests
        if self.flush_interval and requests % self.flush_interval == 0:
            self.flush_cold(buffer)
        if self.checkpoint_interval and requests % self.checkpoint_interval == 0:
            self.checkpoint(buffer)

    # ------------------------------------------------------------------
    # Background write-back
    # ------------------------------------------------------------------

    def flush_cold(self, buffer: "BufferManager", batch: int | None = None) -> int:
        """Clean up to ``batch`` cold dirty frames without evicting them.

        Candidates are the unpinned dirty frames, ordered by the active
        policy's :meth:`flush_priority` (lowest = closest to eviction), so
        write-back follows the eviction order instead of fighting it.
        Returns the number of frames cleaned.
        """
        if batch is None:
            batch = self.flush_batch
        policy = buffer.policy
        candidates = [
            frame
            for frame in buffer.frames.values()
            if frame.dirty and not frame.pinned
        ]
        candidates.sort(key=policy.flush_priority)
        cleaned = 0
        for frame in candidates[:batch]:
            buffer.writeback_frame(frame, disk=self._writer)
            cleaned += 1
        if cleaned:
            observer = self.observer
            if observer is not None:
                observer.emit(
                    BufferEvent(
                        kind="bg_flush",
                        clock=self.wal.flushed_lsn,
                        size=cleaned,
                    )
                )
        return cleaned

    def checkpoint(self, buffer: "BufferManager") -> int:
        """Flush *every* dirty frame, then log a durable CHECKPOINT.

        After the record, every page state logged before it is on the
        data disk, so recovery redo may start at the checkpoint.  Pinned
        frames are written back too — pinning protects residency, not
        cleanliness — because a skipped dirty frame would invalidate the
        redo-start guarantee.  Returns the checkpoint LSN.

        The three phases are exposed separately so the sharded concurrent
        service can flush each shard under its own lock between
        :meth:`begin_checkpoint` and :meth:`finish_checkpoint`.
        """
        self.begin_checkpoint()
        self.flush_buffer(buffer)
        return self.finish_checkpoint()

    def begin_checkpoint(self) -> None:
        """Phase 1: the ``checkpoint.before`` crash point."""
        crash = self.disk.crash
        if crash is not None:
            crash.reached("checkpoint.before")

    def flush_buffer(self, buffer: "BufferManager") -> None:
        """Phase 2: write back every dirty frame of one buffer (pool)."""
        for frame in list(buffer.frames.values()):
            if frame.dirty:
                buffer.writeback_frame(frame, disk=self._writer)

    def finish_checkpoint(self) -> int:
        """Phase 3: log the durable CHECKPOINT record; returns its LSN."""
        with self._lock:
            lsn = self.wal.append_checkpoint()
            self.wal.sync()
        crash = self.disk.crash
        if crash is not None:
            crash.reached("checkpoint.after")
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(kind="checkpoint", clock=lsn, lsn=lsn)
            )
        return lsn

    # ------------------------------------------------------------------
    # Durable deallocation
    # ------------------------------------------------------------------

    def free_page(self, buffer: "BufferManager | None", page_id: PageId) -> int:
        """Durably deallocate a page: discard, log FREE, flush, zero slot.

        The slot is zeroed only after the FREE record is durable — the
        deallocation analogue of the write-back invariant (otherwise a
        crash between delete and fsync would lose the only evidence the
        page died).  Returns the FREE record's LSN.
        """
        if buffer is not None:
            buffer.discard(page_id)
        with self._lock:
            lsn = self.wal.append_free(page_id)
            self.wal.flush_to(lsn)
            self.page_lsn.pop(page_id, None)
        self.disk.delete(page_id)
        return lsn

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Force every pending log record durable (clean shutdown)."""
        with self._lock:
            self.wal.sync()


# Imported last: repro.obs imports buffer modules at package-init time, so
# importing it at the top of a module the buffer layer references would
# cycle during interpreter start-up.
from repro.obs.events import BufferEvent  # noqa: E402
