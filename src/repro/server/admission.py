"""Admission control: bounded in-flight work, bounded queue, quotas.

A production page service must not queue unboundedly — under overload the
queue *is* the outage.  The :class:`AdmissionController` keeps two hard
limits and one fairness knob:

* ``max_inflight`` — requests executing against the buffer at once;
* ``max_queued`` — requests allowed to *wait* for an execution slot; a
  request arriving past this bound is **rejected immediately** with
  :class:`AdmissionRejected` (the server answers ``RETRY_AFTER``), so
  latency stays bounded and memory cannot grow with offered load;
* ``per_client_limit`` — one client's admitted-plus-queued requests; a
  greedy pipeliner is bounced before it can starve the other clients.

``queue_timeout`` bounds the wait: a request that cannot start in time
fails with :class:`AdmissionTimeout` instead of going stale in the queue.

The controller is a pure asyncio object — single event loop, no locks —
and emits ``req_queued`` / ``req_admitted`` / ``req_rejected`` /
``req_timeout`` buffer events (see :mod:`repro.obs.events`) so service
pressure lands in the same observability stream as the buffer decisions
it causes.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING

from repro.server.protocol import RetryReason

if TYPE_CHECKING:
    from repro.obs.events import EventSink


class AdmissionRejected(Exception):
    """The request was refused outright; retry after ``hint_ms``."""

    def __init__(self, reason: RetryReason, hint_ms: int, message: str) -> None:
        super().__init__(message)
        self.reason = reason
        self.hint_ms = hint_ms


class AdmissionTimeout(Exception):
    """The request could not start executing within the queue timeout."""


class _Waiter:
    __slots__ = ("future", "client_id")

    def __init__(self, future: "asyncio.Future[None]", client_id: int) -> None:
        self.future = future
        self.client_id = client_id


class AdmissionController:
    """Bounded admission with per-client quotas and queue timeouts."""

    def __init__(
        self,
        max_inflight: int = 16,
        max_queued: int = 64,
        per_client_limit: int | None = None,
        queue_timeout: float | None = None,
        retry_hint_ms: int = 50,
        observer: "EventSink | None" = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queued < 0:
            raise ValueError("max_queued must be non-negative")
        if per_client_limit is not None and per_client_limit < 1:
            raise ValueError("per_client_limit must be at least 1")
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        self.per_client_limit = per_client_limit
        self.queue_timeout = queue_timeout
        self.retry_hint_ms = retry_hint_ms
        self.observer = observer
        self._inflight = 0
        self._queue: deque[_Waiter] = deque()
        self._per_client: dict[int, int] = {}
        #: Monotone admission sequence — the ``clock`` of ``req_*`` events.
        self._seq = 0
        # Counters for STATS / tests.
        self.admitted = 0
        self.queued_total = 0
        self.rejected_queue_full = 0
        self.rejected_quota = 0
        self.timeouts = 0
        self.peak_inflight = 0
        self.peak_queued = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def snapshot(self) -> dict:
        """Counters for the STATS response."""
        return {
            "max_inflight": self.max_inflight,
            "max_queued": self.max_queued,
            "per_client_limit": self.per_client_limit,
            "inflight": self._inflight,
            "queued": len(self._queue),
            "admitted": self.admitted,
            "queued_total": self.queued_total,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "timeouts": self.timeouts,
            "peak_inflight": self.peak_inflight,
            "peak_queued": self.peak_queued,
        }

    def _emit(self, kind: str, client_id: int, depth: int) -> None:
        observer = self.observer
        if observer is not None:
            self._seq += 1
            observer.emit(
                BufferEvent(kind=kind, clock=self._seq, query=client_id, size=depth)
            )

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------

    async def acquire(self, client_id: int) -> None:
        """Admit one request, waiting in the bounded queue if needed.

        Raises :class:`AdmissionRejected` when the queue or the client's
        quota is full (nothing was queued — the caller answers
        RETRY_AFTER immediately) and :class:`AdmissionTimeout` when the
        wait exceeded ``queue_timeout``.  On success, the caller *must*
        eventually call :meth:`release` exactly once.
        """
        quota = self.per_client_limit
        held = self._per_client.get(client_id, 0)
        if quota is not None and held >= quota:
            self.rejected_quota += 1
            self._emit("req_rejected", client_id, self._inflight + len(self._queue))
            raise AdmissionRejected(
                RetryReason.CLIENT_QUOTA,
                self.retry_hint_ms,
                f"client {client_id} already has {held} request(s) in service",
            )
        if self._inflight < self.max_inflight:
            self._admit(client_id)
            return
        if len(self._queue) >= self.max_queued:
            self.rejected_queue_full += 1
            self._emit("req_rejected", client_id, self._inflight + len(self._queue))
            raise AdmissionRejected(
                RetryReason.QUEUE_FULL,
                self.retry_hint_ms,
                f"admission queue is full ({self.max_queued} waiting)",
            )
        # Queue behind the in-flight limit.  The client's quota slot is
        # held while queued, so a pipelining client cannot fill the queue
        # past its own limit either.
        loop = asyncio.get_running_loop()
        waiter = _Waiter(loop.create_future(), client_id)
        self._queue.append(waiter)
        self._per_client[client_id] = held + 1
        self.queued_total += 1
        self.peak_queued = max(self.peak_queued, len(self._queue))
        self._emit("req_queued", client_id, len(self._queue))
        try:
            if self.queue_timeout is None:
                await waiter.future
            else:
                await asyncio.wait_for(waiter.future, self.queue_timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError) as exc:
            granted = (
                waiter.future.done()
                and not waiter.future.cancelled()
                and waiter.future.exception() is None
            )
            if granted:
                # The slot was granted in the same tick the timeout fired;
                # treat it as admitted so release() accounting stays exact.
                return
            try:
                self._queue.remove(waiter)
            except ValueError:
                pass
            self._drop_client_slot(client_id)
            if isinstance(exc, asyncio.CancelledError):
                raise
            self.timeouts += 1
            self._emit("req_timeout", client_id, len(self._queue))
            raise AdmissionTimeout(
                f"request waited longer than {self.queue_timeout}s for a slot"
            ) from None

    def _admit(self, client_id: int) -> None:
        self._inflight += 1
        self._per_client[client_id] = self._per_client.get(client_id, 0) + 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        self._emit("req_admitted", client_id, self._inflight)

    def _grant(self, waiter: _Waiter) -> None:
        """Promote a queued waiter to in-flight (its quota slot carries over)."""
        self._inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        self._emit("req_admitted", waiter.client_id, self._inflight)
        waiter.future.set_result(None)

    def _drop_client_slot(self, client_id: int) -> None:
        held = self._per_client.get(client_id, 0) - 1
        if held > 0:
            self._per_client[client_id] = held
        else:
            self._per_client.pop(client_id, None)

    def release(self, client_id: int) -> None:
        """One admitted request finished; hand its slot to the next waiter."""
        self._inflight -= 1
        self._drop_client_slot(client_id)
        while self._queue and self._inflight < self.max_inflight:
            waiter = self._queue.popleft()
            if waiter.future.done():
                continue  # timed out or cancelled while queued
            self._grant(waiter)

    def reject_all_queued(self, reason: RetryReason = RetryReason.SHUTTING_DOWN) -> int:
        """Fail every queued waiter (drain path); returns how many."""
        failed = 0
        while self._queue:
            waiter = self._queue.popleft()
            if waiter.future.done():
                continue
            self._drop_client_slot(waiter.client_id)
            waiter.future.set_exception(
                AdmissionRejected(
                    reason, self.retry_hint_ms, "server is shutting down"
                )
            )
            failed += 1
        return failed


# Imported last: repro.obs imports the buffer layer at package-init time;
# the tail import sidesteps the cycle exactly as repro.buffer.manager does.
from repro.obs.events import BufferEvent  # noqa: E402
